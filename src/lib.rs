//! # dagwave
//!
//! Facade crate re-exporting the whole dagwave workspace — a Rust
//! reproduction of Bermond & Cosnard, *"Minimum number of wavelengths
//! equals load in a DAG without internal cycle"* (IPDPS 2007).
//!
//! Layer map (each module is a workspace crate):
//!
//! * [`graph`] — directed multigraph substrate (topological orders,
//!   reachability, underlying cycles, UPP counting).
//! * [`paths`] — dipath families, arc loads, conflict graphs.
//! * [`color`] — coloring toolbox (greedy, DSATUR, Kempe, exact).
//! * [`core`] — the paper's theorems and the pluggable solving surface
//!   ([`SolveSession`], [`SolverBuilder`], [`BackendKind`]).
//! * [`gen`] — figure/witness/random instance generators.
//! * [`route`] — the end-to-end routing-and-wavelength-assignment pipeline.
//! * [`serve`] — the TCP service layer: versioned binary wire protocol,
//!   single-writer coalescing actor per tenant, thread-per-connection
//!   server over the incremental [`Workspace`].
//!
//! ```
//! use dagwave::{graph::Digraph, paths::{Dipath, DipathFamily}, SolveSession};
//!
//! let mut g = Digraph::new();
//! let (a, b, c) = (g.add_vertex(), g.add_vertex(), g.add_vertex());
//! let ab = g.add_arc(a, b);
//! let bc = g.add_arc(b, c);
//! let mut family = DipathFamily::new();
//! family.push(Dipath::from_arcs(&g, vec![ab, bc]).unwrap());
//! let solution = SolveSession::auto().solve(&g, &family).unwrap();
//! assert_eq!(solution.num_colors, solution.load);
//! ```
//!
//! Beyond `Auto`, a session can pin one backend or race a portfolio of
//! them on the rayon pool, keeping the fewest-colors result:
//!
//! ```
//! use dagwave::{BackendKind, Policy, SolverBuilder};
//! # use dagwave::{graph::Digraph, paths::{Dipath, DipathFamily}};
//! # let mut g = Digraph::new();
//! # let (a, b, c) = (g.add_vertex(), g.add_vertex(), g.add_vertex());
//! # let ab = g.add_arc(a, b);
//! # let bc = g.add_arc(b, c);
//! # let mut family = DipathFamily::new();
//! # family.push(Dipath::from_arcs(&g, vec![ab, bc]).unwrap());
//! let portfolio = SolverBuilder::new()
//!     .portfolio(vec![BackendKind::Dsatur, BackendKind::KempeGreedy])
//!     .build();
//! let solution = portfolio.solve(&g, &family).unwrap();
//! assert!(solution.attempts.iter().all(|a| a.valid));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dagwave_color as color;
pub use dagwave_core as core;
pub use dagwave_gen as gen;
pub use dagwave_graph as graph;
pub use dagwave_paths as paths;
pub use dagwave_route as route;
pub use dagwave_serve as serve;

#[allow(deprecated)]
pub use dagwave_core::WavelengthSolver;
pub use dagwave_core::{
    BackendAttempt, BackendKind, ColorTable, DecomposePolicy, Decomposition, Epoch, Instance,
    Mutation, Policy, Resolve, ShardOutcome, Solution, SolutionDelta, SolveRequest, SolveSession,
    SolverBuilder, Strategy, Workspace,
};
