//! Theorem 6 walk-through: an UPP-DAG with one internal cycle.
//!
//! Runs the split/merge algorithm on Havet's instance (Figure 9), printing
//! the class decomposition `C_p`, the resulting wavelength count, and the
//! `⌈4π/3⌉` bound, then scales the replication factor to show the tight
//! ratio of Theorem 7.
//!
//! Run with: `cargo run --example upp_ring`

use dagwave_core::{bounds, internal, theorem6, SolveSession};
use dagwave_gen::havet;

fn main() {
    let g = havet::havet_graph();
    println!(
        "Havet digraph: {} vertices, {} arcs, UPP: {}, internal cycles: {}",
        g.vertex_count(),
        g.arc_count(),
        dagwave_graph::pathcount::is_upp(&g),
        internal::internal_cycle_count(&g),
    );

    // Base instance: 8 dipaths, conflict graph = C8 + antipodal chords.
    let base = havet::havet_base_family(&g);
    let res = theorem6::color_single_cycle_upp(&g, &base).expect("preconditions hold");
    println!("\nbase family (h = 1):");
    println!("  π = {}, bound ⌈4π/3⌉ = {}", res.load, res.bound);
    println!(
        "  class profile |C_p| = {:?} (π = Σ p·|C_p|), extra colors = {}",
        res.class_profile, res.extra_colors
    );
    println!(
        "  wavelengths used = {} (within bound: {})",
        res.assignment.num_colors(),
        res.within_bound
    );
    assert!(res.assignment.is_valid(&g, &base));

    // Theorem 7: replicate h times; the optimum is ⌈8h/3⌉ = ⌈4π/3⌉.
    println!("\nTheorem 7 series (replicated family):");
    println!(
        "{:>3} {:>5} {:>9} {:>7} {:>9}",
        "h", "π", "w_solved", "⌈8h/3⌉", "ratio w/π"
    );
    for h in 1..=5 {
        let family = base.replicate(h);
        let sol = SolveSession::auto().solve(&g, &family).unwrap();
        assert!(sol.assignment.is_valid(&g, &family));
        let expected = bounds::havet_wavelengths(h);
        println!(
            "{h:>3} {:>5} {:>9} {expected:>7} {:>9.4}",
            sol.load,
            sol.num_colors,
            sol.num_colors as f64 / sol.load as f64
        );
        assert_eq!(sol.num_colors, expected, "w = ⌈8h/3⌉ exactly");
    }
    println!("\nthe ratio tends to 4/3 — the Theorem 6 bound is tight (Theorem 7)");
}
