//! The service layer end to end, in one process: boot a loopback
//! `dagwave-serve` server over a federated instance, then drive it with
//! the binary-protocol client — admit duplicate lightpaths, retire them,
//! send a combined batch, and watch the actor's coalescing counters.
//!
//! Run with: `cargo run --release --example serve_demo`
//!
//! For a standalone server process, use the binary instead:
//! `cargo run --release -p dagwave-serve -- --scenario federated:4`

use dagwave::serve::{Client, Server, ServerConfig, WireOp};
use dagwave::{DecomposePolicy, SolverBuilder, Workspace};
use dagwave_gen::compose::federated;

fn main() {
    // Every tenant gets its own incremental Workspace over the same
    // four-component federated topology (disjoint components shard the
    // conflict graph, so mutations recolor only what they touch).
    let factory = Box::new(|tenant: u64| {
        let inst = federated(4);
        println!("booting workspace for tenant {tenant}");
        Workspace::new(
            SolverBuilder::new()
                .decompose(DecomposePolicy::Always)
                .build(),
            inst.graph,
            inst.family,
        )
    });
    let handle = Server::bind("127.0.0.1:0", factory, ServerConfig::default())
        .expect("bind loopback")
        .spawn();
    let addr = handle.addr();
    println!("serving on {addr}");

    let mut client = Client::connect(addr).expect("connect");
    let tenant = 7;

    // First query lazily boots the tenant's workspace and solves it.
    let boot = client.query(tenant).expect("boot query");
    println!(
        "boot: {} lightpaths, {} wavelengths (load {}, optimal: {}, {} shards)",
        boot.colors.len(),
        boot.num_colors,
        boot.load,
        boot.optimal,
        boot.shard_count,
    );

    // Admit a single-arc lightpath over arc 0 — it conflicts with every
    // lightpath already using that arc, so arc 0's load rises and the
    // assignment must give it a wavelength of its own.
    let arcs = vec![0u32];
    let id = client.admit(tenant, arcs.clone()).expect("admit");
    let loaded = client.query(tenant).expect("query after admit");
    println!(
        "admitted duplicate as path {id}: now {} wavelengths",
        loaded.num_colors
    );

    // A combined batch: retire the duplicate and admit two more, applied
    // atomically by the tenant actor in one Workspace::apply.
    let applied = client
        .batch(
            tenant,
            vec![
                WireOp::Remove(id),
                WireOp::Add(arcs.clone()),
                WireOp::Add(arcs),
            ],
        )
        .expect("batch");
    println!("batch applied, new path ids: {applied:?}");
    let after = client.query(tenant).expect("query after batch");
    for id in applied {
        client.retire(tenant, id).expect("retire");
    }
    let settled = client.query(tenant).expect("query after retire");
    println!(
        "after batch: {} wavelengths; after retiring: {} (back to boot: {})",
        after.num_colors,
        settled.num_colors,
        settled.num_colors == boot.num_colors,
    );

    let stats = client.stats(tenant).expect("stats");
    println!(
        "actor stats: {} live paths, {} batches -> {} applies ({} queries, {} recomputes, {} shards reused)",
        stats.live_paths, stats.batches, stats.applies, stats.queries, stats.recomputes, stats.shards_reused,
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server exits cleanly");
    println!("server stopped");
}
