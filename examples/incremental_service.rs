//! A long-lived RWA service loop: lightpaths are admitted and retired one
//! at a time, and the wavelength assignment is incrementally re-solved —
//! only the conflict components each change touches are recolored, the
//! rest are served from the workspace's shard cache.
//!
//! Run with: `cargo run --release --example incremental_service`

use dagwave::route::{Request, RoutingStrategy, RwaPipeline};
use dagwave::{DecomposePolicy, SolverBuilder};
use dagwave_graph::builder::from_edges;
use dagwave_graph::VertexId;

fn main() {
    // Two disjoint distribution trees in one network — two independent
    // regions whose lightpaths never conflict across.
    let g = from_edges(
        10,
        &[
            (0, 1),
            (0, 2),
            (1, 3),
            (1, 4),
            (5, 6),
            (5, 7),
            (6, 8),
            (6, 9),
        ],
    );
    let v = VertexId::from_index;

    let pipeline = RwaPipeline::with_session(
        RoutingStrategy::Shortest,
        SolverBuilder::new()
            .decompose(DecomposePolicy::Always)
            .build(),
    );

    // Boot the service with one multicast per region.
    let initial = vec![
        Request::new(v(0), v(3)),
        Request::new(v(0), v(4)),
        Request::new(v(5), v(8)),
        Request::new(v(5), v(9)),
    ];
    let mut service = pipeline.workspace(&g, &initial).expect("instance is a DAG");
    let boot = service.solution().expect("boot solve succeeds");
    println!(
        "boot: {} lightpaths, {} wavelengths, {} shards",
        service.inner().family().len(),
        boot.num_colors,
        boot.decomposition.as_ref().map_or(1, |d| d.shard_count()),
    );

    // Traffic arrives in region two only: region one's shards stay cached.
    let mut admitted = Vec::new();
    for dst in [8usize, 9, 8] {
        let id = service
            .admit(Request::new(v(5), v(dst)))
            .expect("request routes");
        let sol = service.solution().expect("re-solve succeeds");
        let r = sol.resolve.expect("incremental solves carry provenance");
        println!(
            "admit 5→{dst} as {id}: w={}, shards reused={}, resolved={}",
            sol.num_colors, r.shards_reused, r.shards_resolved,
        );
        admitted.push(id);
    }

    // The burst drains again.
    for id in admitted {
        service.retire(id).expect("lightpath is live");
        let sol = service.solution().expect("re-solve succeeds");
        let r = sol.resolve.expect("incremental solves carry provenance");
        println!(
            "retire {id}: w={}, shards reused={}, resolved={}",
            sol.num_colors, r.shards_reused, r.shards_resolved,
        );
    }

    let steady = service.solution().expect("steady state");
    assert_eq!(steady.num_colors, boot.num_colors, "burst fully drained");
    println!("steady state matches boot: w={}", steady.num_colors);
}
