//! Parallel-computing scenario: coloring producer→consumer chains of a
//! program precedence DAG — the paper's second motivation ("scheduling
//! complex operations on pipelined operators").
//!
//! Each dipath is a data stream flowing through a chain of operators; two
//! streams sharing a channel (arc) need different time slots (colors). On
//! a fork/join-free precedence structure (an out-forest of operator
//! chains), Theorem 1 says the slot count equals the busiest channel's
//! load.
//!
//! Run with: `cargo run --example precedence_pipeline`

use dagwave_core::{theorem1, SolveSession};
use dagwave_graph::{Digraph, VertexId};
use dagwave_paths::{load, Dipath, DipathFamily};

fn main() {
    // Operator DAG: a pipeline spine with per-stage side taps.
    //   src → parse → enrich → aggregate → sink
    // plus taps: parse → audit, enrich → metrics, aggregate → archive.
    let mut g = Digraph::new();
    let names = [
        "src",
        "parse",
        "enrich",
        "aggregate",
        "sink",
        "audit",
        "metrics",
        "archive",
    ];
    let vs = g.add_vertices(names.len());
    let arc = |g: &mut Digraph, a: usize, b: usize| g.add_arc(vs[a], vs[b]);
    arc(&mut g, 0, 1); // src → parse
    arc(&mut g, 1, 2); // parse → enrich
    arc(&mut g, 2, 3); // enrich → aggregate
    arc(&mut g, 3, 4); // aggregate → sink
    arc(&mut g, 1, 5); // parse → audit
    arc(&mut g, 2, 6); // enrich → metrics
    arc(&mut g, 3, 7); // aggregate → archive

    let path = |route: &[usize]| {
        let r: Vec<VertexId> = route.iter().map(|&i| vs[i]).collect();
        Dipath::from_vertices(&g, &r).expect("stream route")
    };
    // Seven data streams through the pipeline.
    let family = DipathFamily::from_paths(vec![
        path(&[0, 1, 2, 3, 4]), // full ETL stream
        path(&[0, 1, 2, 3, 4]), // a second tenant's full stream
        path(&[0, 1, 5]),       // audit tap
        path(&[1, 2, 6]),       // metrics tap
        path(&[2, 3, 7]),       // archive tap
        path(&[1, 2, 3]),       // mid-pipeline reprocess
        path(&[2, 3, 4]),       // late-join stream
    ]);

    let pi = load::max_load(&g, &family);
    println!(
        "precedence DAG with {} operators, {} streams",
        names.len(),
        family.len()
    );
    println!("busiest channel load π = {pi}");

    // Theorem 1 directly (the DAG is internal-cycle-free: every side tap is
    // a sink, so no oriented cycle is internal).
    let t1 = theorem1::color_optimal(&g, &family).expect("DAG without internal cycle");
    assert!(t1.assignment.is_valid(&g, &family));
    println!(
        "time slots needed = {} (equal to π, via {} Kempe recolorings)",
        t1.assignment.num_colors(),
        t1.kempe_swaps
    );
    for (id, p) in family.iter() {
        let ops: Vec<&str> = p.vertices(&g).iter().map(|v| names[v.index()]).collect();
        println!(
            "  stream {id}: slot {} — {}",
            t1.assignment.color(id),
            ops.join(" → ")
        );
    }

    // The facade agrees.
    let sol = SolveSession::auto().solve(&g, &family).unwrap();
    assert_eq!(sol.num_colors, pi);
    println!("slot schedule verified: conflict-free and tight");
}
