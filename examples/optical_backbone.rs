//! WDM backbone scenario: route a traffic matrix over a layered optical
//! core, then assign wavelengths — the paper's motivating application.
//!
//! Builds a layered internal-cycle-free backbone (edge routers → two
//! aggregation tiers → core), routes random requests load-aware, and shows
//! that the wavelength count equals the routing load (Theorem 1), comparing
//! against shortest-path routing to show why the routing stage matters.
//!
//! Run with: `cargo run --example optical_backbone`

use dagwave_core::SolveSession;
use dagwave_gen::random;
use dagwave_route::request::Request;
use dagwave_route::routing::RoutingStrategy;
use dagwave_route::rwa::RwaPipeline;
use rand::prelude::IndexedRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2007);

    // An internal-cycle-free backbone: a random out-tree core with extra
    // internal-cycle-safe shortcut links (rejection-checked).
    let g = random::random_internal_cycle_free(&mut rng, 60, 25);
    assert!(dagwave_core::internal::is_internal_cycle_free(&g));
    println!(
        "backbone: {} nodes, {} fibers, internal-cycle-free: yes",
        g.vertex_count(),
        g.arc_count()
    );

    // A random traffic matrix: 80 connectable (source, target) pairs.
    let closure = dagwave_graph::reach::transitive_closure(&g);
    let pairs: Vec<Request> = g
        .vertices()
        .flat_map(|u| {
            closure[u.index()]
                .iter()
                .map(dagwave_graph::VertexId::from_index)
                .filter(move |&v| v != u)
                .map(move |v| Request::new(u, v))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut requests = Vec::new();
    for _ in 0..80 {
        requests.push(*pairs.choose(&mut rng).expect("connectable pair"));
    }

    for strategy in [RoutingStrategy::Shortest, RoutingStrategy::LoadAware] {
        let pipeline = RwaPipeline {
            routing: strategy,
            solver: SolveSession::auto(),
        };
        let report = pipeline.run(&g, &requests).expect("all requests routable");
        assert!(report.solution.assignment.is_valid(&g, &report.family));
        assert_eq!(
            report.solution.num_colors, report.solution.load,
            "Theorem 1: wavelengths equal load on this backbone"
        );
        println!(
            "{:?} routing: load π = {:>2} → wavelengths w = {:>2} ({}, optimal = {})",
            strategy,
            report.solution.load,
            report.solution.num_colors,
            report.solution.strategy,
            report.solution.optimal,
        );
    }
    println!("note: w tracks π exactly, so minimizing routing load is the whole game");
}
