//! Quickstart: build a DAG, route a few dipaths, and assign wavelengths.
//!
//! Run with: `cargo run --example quickstart`

use dagwave_core::SolveSession;
use dagwave_graph::{Digraph, VertexId};
use dagwave_paths::{Dipath, DipathFamily};

fn main() {
    // A small optical network shaped like a rooted tree: one hub (0)
    // feeding two metro heads (1, 2), each with two customers.
    let mut g = Digraph::new();
    let vs = g.add_vertices(7);
    for &(a, b) in &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)] {
        g.add_arc(vs[a], vs[b]);
    }

    // Four connection requests, realized as dipaths.
    let route = |route: &[usize]| {
        let r: Vec<VertexId> = route.iter().map(|&i| vs[i]).collect();
        Dipath::from_vertices(&g, &r).expect("route exists")
    };
    let family = DipathFamily::from_paths(vec![
        route(&[0, 1, 3]),
        route(&[0, 1, 4]),
        route(&[0, 2, 5]),
        route(&[1, 4]),
    ]);

    // Solve. Trees have no internal cycle, so Theorem 1 guarantees the
    // number of wavelengths equals the load — no search needed.
    let solution = SolveSession::auto()
        .solve(&g, &family)
        .expect("instance is a DAG");

    println!(
        "instance: {} vertices, {} arcs, {} dipaths",
        g.vertex_count(),
        g.arc_count(),
        family.len()
    );
    println!("class:    {}", solution.class);
    println!("strategy: {}", solution.strategy);
    println!("load π   = {}", solution.load);
    println!(
        "colors w = {} (optimal: {})",
        solution.num_colors, solution.optimal
    );
    for (id, p) in family.iter() {
        let verts: Vec<String> = p.vertices(&g).iter().map(|v| v.to_string()).collect();
        println!(
            "  dipath {id}: {:<16} → wavelength λ{}",
            verts.join("→"),
            solution.assignment.color(id)
        );
    }
    assert!(solution.assignment.is_valid(&g, &family));
    assert_eq!(solution.num_colors, solution.load, "Theorem 1: w = π");
    println!("verified: assignment is conflict-free and uses exactly π wavelengths");
}
