// Planted violation: `.unwrap()` in non-test facade code (no-panic).
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

// Planted violation: allow comment that suppresses nothing (unused-allow).
// lint: allow(no-panic): stale justification left behind after a refactor
pub fn second() {}
