// Planted violation: raw synchronization primitives outside `shims/`
// (no-raw-sync), both a `Mutex` type and a `std::thread::spawn` call.
use std::sync::Mutex;

pub fn share(v: Vec<u32>) -> Mutex<Vec<u32>> {
    std::thread::spawn(|| {});
    Mutex::new(v)
}
