// Planted violation: pub error enum without `#[non_exhaustive]`
// (non-exhaustive-errors), plus a `panic!` in library code (no-panic).
#[derive(Debug)]
pub enum WitnessError {
    Malformed,
}

pub fn check(ok: bool) {
    if !ok {
        panic!("witness rejected");
    }
}
