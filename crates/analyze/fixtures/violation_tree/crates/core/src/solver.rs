// Planted violation: unnamed budget literal in dispatch code
// (named-budgets), plus a wall-clock read in a deterministic path
// (no-wallclock).
use std::time::Instant;

pub fn stream_window(threads: usize) -> usize {
    threads.max(1) * 4
}

pub fn timed_solve() -> u64 {
    let start = Instant::now();
    start.elapsed().as_nanos() as u64
}
