//! The project lint rules.
//!
//! Each rule is a pure function over the scanned token stream of one file;
//! scoping (which files a rule governs) lives in [`rule_applies`] so the
//! catalog in `README.md` and the code agree in one place. Findings are
//! matched against `// lint: allow(<rule>): <reason>` records afterwards —
//! rules themselves never consult the escape hatch.

use crate::lexer::{Scanned, TokKind, Token};

/// One diagnostic produced by a rule (before allow-filtering).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule name, e.g. `no-panic`.
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable message.
    pub message: String,
}

/// All rule names, in catalog order.
pub const RULES: [&str; 6] = [
    NO_PANIC,
    NO_RAW_SYNC,
    NON_EXHAUSTIVE_ERRORS,
    NAMED_BUDGETS,
    NO_WALLCLOCK,
    UNUSED_ALLOW,
];

/// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in non-test library code.
pub const NO_PANIC: &str = "no-panic";
/// Raw `std::thread` / `Mutex` / `Condvar` / atomics outside `shims/`.
pub const NO_RAW_SYNC: &str = "no-raw-sync";
/// `pub enum *Error` without `#[non_exhaustive]`.
pub const NON_EXHAUSTIVE_ERRORS: &str = "non-exhaustive-errors";
/// Unnamed numeric budget literals in solver/backend dispatch.
pub const NAMED_BUDGETS: &str = "named-budgets";
/// `Instant::now` / `SystemTime` in deterministic solver paths.
pub const NO_WALLCLOCK: &str = "no-wallclock";
/// An allow comment that suppressed nothing (or lacks a reason).
pub const UNUSED_ALLOW: &str = "unused-allow";

/// Does `rule` govern the file at workspace-relative `path`?
///
/// Scoping policy (mirrored in the README catalog):
/// * `shims/**` is never scanned at all (the shims *implement* the
///   synchronization layer) — enforced by the walker, restated here.
/// * `crates/bench` is a measurement harness: it legitimately reads the
///   wall clock and may unwrap in throwaway report code, so only the
///   error-surface rule applies there.
/// * `named-budgets` is intentionally narrow: solver/backend dispatch in
///   `crates/core`, where an unnamed `* 4` is a tuning decision that must
///   carry a name.
pub fn rule_applies(rule: &str, path: &str) -> bool {
    if path.starts_with("shims/") {
        return false;
    }
    let bench = path.starts_with("crates/bench/");
    match rule {
        NO_PANIC | NO_RAW_SYNC | NO_WALLCLOCK => !bench,
        NON_EXHAUSTIVE_ERRORS => true,
        NAMED_BUDGETS => {
            path == "crates/core/src/solver.rs" || path == "crates/core/src/backend.rs"
        }
        _ => false,
    }
}

/// Run every applicable rule over one scanned file, then apply the
/// allow-comment escape hatch. Unconsumed or reason-less allows become
/// [`UNUSED_ALLOW`] findings so the escape hatch cannot rot silently.
pub fn lint_file(path: &str, scanned: &Scanned) -> Vec<Finding> {
    let toks = &scanned.tokens;
    let mut raw: Vec<Finding> = Vec::new();
    if rule_applies(NO_PANIC, path) {
        no_panic(path, toks, &mut raw);
    }
    if rule_applies(NO_RAW_SYNC, path) {
        no_raw_sync(path, toks, &mut raw);
    }
    if rule_applies(NON_EXHAUSTIVE_ERRORS, path) {
        non_exhaustive_errors(path, toks, &mut raw);
    }
    if rule_applies(NAMED_BUDGETS, path) {
        named_budgets(path, toks, &mut raw);
    }
    if rule_applies(NO_WALLCLOCK, path) {
        no_wallclock(path, toks, &mut raw);
    }

    // An allow on line L covers findings for its rule on line L (trailing
    // comment) and line L+1 (comment on its own line above the code).
    let mut used = vec![false; scanned.allows.len()];
    let mut out: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for (ai, a) in scanned.allows.iter().enumerate() {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                used[ai] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(f);
        }
    }
    for (ai, a) in scanned.allows.iter().enumerate() {
        if !used[ai] {
            out.push(Finding {
                rule: UNUSED_ALLOW,
                file: path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "`lint: allow({})` suppresses nothing on this or the next line; delete it",
                    a.rule
                ),
            });
        } else if a.reason.is_empty() {
            out.push(Finding {
                rule: UNUSED_ALLOW,
                file: path.to_string(),
                line: a.line,
                col: 1,
                message: format!(
                    "`lint: allow({})` needs a `: <reason>` justification",
                    a.rule
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

fn finding(rule: &'static str, path: &str, t: &Token, message: String) -> Finding {
    Finding {
        rule,
        file: path.to_string(),
        line: t.line,
        col: t.col,
        message,
    }
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// `unwrap()` / `expect(` / `panic!` / `unreachable!` / `todo!` outside
/// tests. Method-position is required for `unwrap`/`expect` (a preceding
/// `.`) so that e.g. a local `fn expect_header` does not trip it.
fn no_panic(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" | "unwrap_unchecked" => {
                let dotted = i > 0 && is_punct(&toks[i - 1], ".");
                let called = matches!(toks.get(i + 1), Some(n) if is_punct(n, "("));
                if dotted && called {
                    out.push(finding(
                        NO_PANIC,
                        path,
                        t,
                        format!(
                            "`.{}()` in library code; return a typed error or justify with \
                             `// lint: allow(no-panic): <reason>`",
                            t.text
                        ),
                    ));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let bang = matches!(toks.get(i + 1), Some(n) if is_punct(n, "!"));
                // `core::panic::Location`-style paths have `::` before.
                let pathy = i > 0 && is_punct(&toks[i - 1], ":");
                if bang && !pathy {
                    out.push(finding(
                        NO_PANIC,
                        path,
                        t,
                        format!(
                            "`{}!` in library code; return a typed error instead",
                            t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Raw synchronization primitives belong in `shims/` only; library crates
/// go through the rayon shim's pool. `OnceLock`/`Arc` are allowed — they
/// are initialization/sharing tools, not scheduling tools.
fn no_raw_sync(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    const BANNED: [&str; 12] = [
        "Mutex",
        "RwLock",
        "Condvar",
        "Barrier",
        "AtomicBool",
        "AtomicUsize",
        "AtomicIsize",
        "AtomicU32",
        "AtomicU64",
        "AtomicI32",
        "AtomicI64",
        "AtomicPtr",
    ];
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if BANNED.contains(&t.text.as_str()) {
            out.push(finding(
                NO_RAW_SYNC,
                path,
                t,
                format!(
                    "raw `{}` outside `shims/`; route concurrency through the pool shim",
                    t.text
                ),
            ));
        }
        // `std :: thread` or a bare `thread :: spawn`.
        if t.text == "thread" {
            let followed = matches!(toks.get(i + 1), Some(n) if is_punct(n, ":"))
                && matches!(toks.get(i + 3), Some(n) if n.text == "spawn" || n.text == "sleep" || n.text == "Builder");
            if followed {
                out.push(finding(
                    NO_RAW_SYNC,
                    path,
                    t,
                    "raw `std::thread` outside `shims/`; spawn through the pool shim".to_string(),
                ));
            }
        }
    }
}

/// Every `pub enum <Name>Error` must carry `#[non_exhaustive]` so adding a
/// variant is not a breaking change for downstream matchers.
fn non_exhaustive_errors(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test || t.kind != TokKind::Ident || t.text != "enum" {
            continue;
        }
        let public = i > 0 && toks[i - 1].kind == TokKind::Ident && toks[i - 1].text == "pub";
        if !public {
            continue;
        }
        let name = match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Ident => n,
            _ => continue,
        };
        if !name.text.ends_with("Error") {
            continue;
        }
        if !has_preceding_attr(toks, i - 1, "non_exhaustive") {
            out.push(finding(
                NON_EXHAUSTIVE_ERRORS,
                path,
                name,
                format!(
                    "pub error enum `{}` is missing `#[non_exhaustive]`",
                    name.text
                ),
            ));
        }
    }
}

/// Walk backwards over the attribute stack preceding token `before`
/// (exclusive) looking for `needle` as any ident inside any attribute.
fn has_preceding_attr(toks: &[Token], mut before: usize, needle: &str) -> bool {
    loop {
        // Expect ... `#` `[` idents `]` ending right at `before`.
        if before == 0 || !is_punct(&toks[before - 1], "]") {
            return false;
        }
        let close = before - 1;
        let mut depth = 1usize;
        let mut j = close;
        let mut found = false;
        while j > 0 {
            j -= 1;
            let u = &toks[j];
            if is_punct(u, "]") {
                depth += 1;
            } else if is_punct(u, "[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if u.kind == TokKind::Ident && u.text == needle {
                found = true;
            }
        }
        if j == 0 || !is_punct(&toks[j - 1], "#") {
            return false;
        }
        if found {
            return true;
        }
        before = j - 1;
    }
}

/// In solver/backend dispatch, every tuning constant must have a name.
/// Exemptions keep the rule honest instead of noisy:
/// * `0`, `1`, `2` — structural values (identity, halving, tuple indexes);
/// * a literal on a `const` declaration line (that *is* the name);
/// * an array length (literal directly after `;`);
/// * a literal directly after `:` (struct-field init forwarding a value,
///   e.g. `min_paths: 512` where the policy field is itself the name) or
///   after `=` in an attribute-ish position is *not* exempt — budgets in
///   field position still need a named const.
fn named_budgets(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    // Lines that declare a const: the literal there is the definition.
    let mut const_lines: Vec<u32> = Vec::new();
    for t in toks {
        if t.kind == TokKind::Ident && t.text == "const" {
            const_lines.push(t.line);
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Int {
            continue;
        }
        let digits: String = t.chars_before_suffix().filter(|c| *c != '_').collect();
        let value: u128 = match digits.parse() {
            Ok(v) => v,
            Err(_) => continue, // hex/binary literals are bit patterns, not budgets
        };
        if value <= 2 {
            continue;
        }
        if const_lines.contains(&t.line) {
            continue;
        }
        if i > 0 && is_punct(&toks[i - 1], ";") {
            continue; // array length `[T; N]`
        }
        out.push(finding(
            NAMED_BUDGETS,
            path,
            t,
            format!(
                "unnamed budget literal `{}` in dispatch code; bind it to a named const",
                t.text
            ),
        ));
    }
}

impl Token {
    /// The leading numeric characters of an int literal, before any type
    /// suffix (`40usize` → `40`). Base-prefixed literals (`0x…`) yield a
    /// non-numeric tail and fail the caller's parse, which is intended.
    fn chars_before_suffix(&self) -> impl Iterator<Item = char> + '_ {
        let text = &self.text;
        let end = if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
            0
        } else {
            text.find(|c: char| c != '_' && !c.is_ascii_digit())
                .unwrap_or(text.len())
        };
        text[..end].chars()
    }
}

/// Deterministic solver paths must not read the wall clock: timing belongs
/// to `crates/bench` and CI, not to anything that influences a solve.
fn no_wallclock(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for t in toks {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            out.push(finding(
                NO_WALLCLOCK,
                path,
                t,
                format!(
                    "`{}` in a deterministic code path; wall-clock reads belong in crates/bench",
                    t.text
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scan;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_file(path, &scan(src))
    }

    const LIB: &str = "crates/core/src/solver.rs";

    #[test]
    fn unwrap_in_library_code_fires() {
        let f = lint(LIB, "fn f(x: Option<u32>) -> u32 { x.unwrap() }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NO_PANIC);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_in_test_mod_is_ignored() {
        let f = lint(LIB, "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trailing_allow_suppresses_and_is_consumed() {
        let f = lint(
            LIB,
            "fn f() { x.unwrap(); // lint: allow(no-panic): x was validated by caller\n }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_on_previous_line_suppresses() {
        let f = lint(
            LIB,
            "// lint: allow(no-panic): x was validated by caller\nfn f() { x.unwrap(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unused_allow_is_itself_a_finding() {
        let f = lint(LIB, "// lint: allow(no-panic): nothing here\nfn f() {}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, UNUSED_ALLOW);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let f = lint(LIB, "fn f() { x.unwrap() } // lint: allow(no-panic)");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, UNUSED_ALLOW);
        assert!(f[0].message.contains("reason"));
    }

    #[test]
    fn panic_macro_fires_but_identifier_use_does_not() {
        let f = lint(LIB, "fn f() { panic!(\"boom\") }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NO_PANIC);
        let f = lint(LIB, "use std::panic::catch_unwind;");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_sync_fires_outside_shims_only() {
        let src = "use std::sync::Mutex;\nfn f() { std::thread::spawn(|| {}); }";
        let f = lint("crates/paths/src/editable.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == NO_RAW_SYNC));
        assert!(lint("shims/rayon/src/lib.rs", src).is_empty());
    }

    #[test]
    fn once_lock_is_not_raw_sync() {
        let f = lint(LIB, "use std::sync::{Arc, OnceLock};");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn error_enum_without_non_exhaustive_fires() {
        let f = lint(
            "crates/gen/src/theorem2.rs",
            "#[derive(Debug)]\npub enum WitnessError { Bad }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, NON_EXHAUSTIVE_ERRORS);
    }

    #[test]
    fn error_enum_with_non_exhaustive_passes() {
        let f = lint(
            "crates/gen/src/theorem2.rs",
            "#[derive(Debug)]\n#[non_exhaustive]\npub enum WitnessError { Bad }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn private_and_non_error_enums_are_ignored() {
        let f = lint(LIB, "enum SolverError { A }\npub enum Mode { A }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn named_budgets_fires_on_bare_multiplier() {
        let src = "fn w() -> usize { rayon::current_num_threads().max(1) * 4 }";
        let f = lint("crates/core/src/solver.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, NAMED_BUDGETS);
        // Same code outside the dispatch files is out of scope.
        assert!(lint("crates/paths/src/editable.rs", src).is_empty());
    }

    #[test]
    fn named_budgets_exemptions_hold() {
        let src = "const WINDOW: usize = 4;\n\
                   fn f() -> [u8; 9] { [0; 9] }\n\
                   fn g(x: usize) -> usize { x.max(1) + 0 }";
        let f = lint("crates/core/src/backend.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wallclock_fires_in_lib_but_not_bench() {
        let src = "use std::time::Instant;\nfn t() { let _ = Instant::now(); }";
        let f = lint("crates/core/src/solver.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == NO_WALLCLOCK));
        assert!(lint("crates/bench/src/bin/report.rs", src).is_empty());
    }
}
