//! A hand-rolled token-level scanner for Rust source.
//!
//! This is deliberately *not* a full Rust lexer: the lint rules only need a
//! faithful token stream with source positions, which means getting the
//! hard parts right — comments (line, nested block, doc), string literals
//! (plain, raw, byte, C), char literals vs. lifetimes, and numeric
//! literals — so that rule patterns never fire inside a comment or a
//! string. Everything else is emitted as single-character punctuation
//! tokens, which is all the sequence-matching rules require.
//!
//! Two side channels ride along with the token stream:
//!
//! * `// lint: allow(<rule>): <reason>` comments are collected as
//!   [`Allow`] records (the escape hatch the rules consult);
//! * a post-pass marks every token inside a `#[cfg(test)]` / `#[test]`
//!   item as test code, so rules that only govern library code can skip
//!   them structurally instead of by heuristic.

/// Token classification, as coarse as the rules allow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (suffix and underscores kept in the text).
    Int,
    /// Float literal.
    Float,
    /// String literal of any flavor (text not retained).
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// One punctuation character.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for [`TokKind::Str`]/[`TokKind::Char`] a placeholder).
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// `true` when the token sits inside a `#[cfg(test)]` or `#[test]`
    /// item (set by the test-region post-pass).
    pub in_test: bool,
}

/// One `// lint: allow(<rule>): <reason>` escape-hatch comment.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Line the comment sits on (1-based). The allow covers findings on
    /// this line and the next (so it can trail the offending expression or
    /// sit on its own line directly above it).
    pub line: u32,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The justification after the closing `:`; must be non-empty.
    pub reason: String,
}

/// The scan result: tokens plus the allow-comment side channel.
#[derive(Debug, Default)]
pub struct Scanned {
    /// Token stream in source order, test regions marked.
    pub tokens: Vec<Token>,
    /// Allow comments in source order.
    pub allows: Vec<Allow>,
}

/// Scan `src` into tokens and allow records, then mark test regions.
pub fn scan(src: &str) -> Scanned {
    let mut lx = Lexer::new(src);
    lx.run();
    let mut out = Scanned {
        tokens: lx.tokens,
        allows: lx.allows,
    };
    mark_test_regions(&mut out.tokens);
    out
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    allows: Vec<Allow>,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            allows: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
            in_test: false,
        });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line, col),
                'r' | 'b' | 'c' if self.raw_or_byte_prefix() => self.raw_or_byte_literal(line, col),
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line, col);
                }
            }
        }
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if let Some(allow) = parse_allow(&text, line) {
            self.allows.push(allow);
        }
    }

    fn block_comment(&mut self) {
        // Consume `/*`; block comments nest in Rust.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Str, String::from("\"…\""), line, col);
    }

    /// Does the cursor sit on a raw/byte/C string prefix (`r"`, `r#"`,
    /// `b"`, `br#"`, `c"`, …)? If not, the leading letter is an ordinary
    /// identifier start.
    fn raw_or_byte_prefix(&self) -> bool {
        let mut j = 0usize;
        // Up to two prefix letters (e.g. `br`), then `#`* then `"`, or a
        // byte-char `b'…'`.
        while j < 2 {
            match self.peek(j) {
                Some('r' | 'b' | 'c') => j += 1,
                _ => break,
            }
        }
        if j == 0 {
            return false;
        }
        if self.peek(j) == Some('\'') {
            // b'x' byte literal.
            return self.peek(0) == Some('b') && j == 1;
        }
        let mut k = j;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        // `r#ident` (raw identifier) has hashes but no quote: not a string.
        self.peek(k) == Some('"') && (k > j || self.peek(j) == Some('"'))
    }

    fn raw_or_byte_literal(&mut self, line: u32, col: u32) {
        // Consume prefix letters.
        while matches!(self.peek(0), Some('r' | 'b' | 'c')) {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            // b'x' — treat like a char literal.
            self.char_body();
            self.push(TokKind::Char, String::from("b'…'"), line, col);
            return;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        if hashes == 0 {
            // Raw string without hashes still has no escapes.
            while let Some(c) = self.bump() {
                if c == '"' {
                    break;
                }
            }
        } else {
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    let mut seen = 0usize;
                    while seen < hashes {
                        if self.peek(0) == Some('#') {
                            self.bump();
                            seen += 1;
                        } else {
                            continue 'outer;
                        }
                    }
                    break;
                }
            }
        }
        self.push(TokKind::Str, String::from("r\"…\""), line, col);
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // `'a` followed by a non-quote is a lifetime; `'a'` is a char.
        let one = self.peek(1);
        let two = self.peek(2);
        let is_lifetime =
            matches!(one, Some(c) if c.is_alphabetic() || c == '_') && two != Some('\'');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, text, line, col);
        } else {
            self.char_body();
            self.push(TokKind::Char, String::from("'…'"), line, col);
        }
    }

    fn char_body(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut is_float = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `1.5` is a float; `0..n` is a range; `4.max(x)` is a
                // method call. Only consume the dot when a digit follows.
                if matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                    is_float = true;
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        let kind = if is_float {
            TokKind::Float
        } else {
            TokKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line, col);
    }
}

/// Parse a `lint: allow(<rule>): <reason>` body out of a line comment.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim();
    let rest = rest.strip_prefix("allow")?.trim();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim()
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    Some(Allow { line, rule, reason })
}

/// Mark every token belonging to a `#[cfg(test)]` / `#[test]` item (and
/// `#![cfg(test)]` files wholesale) as test code.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokKind::Punct && tokens[i].text == "#" {
            let inner = matches!(tokens.get(i + 1), Some(t) if t.text == "!");
            let open = i + 1 + usize::from(inner);
            if matches!(tokens.get(open), Some(t) if t.text == "[") {
                let (close, is_test) = scan_attribute(tokens, open);
                if is_test && inner {
                    // `#![cfg(test)]`: the whole file is test code.
                    for t in tokens.iter_mut() {
                        t.in_test = true;
                    }
                    return;
                }
                if is_test {
                    let end = item_end(tokens, close + 1);
                    for t in &mut tokens[i..end] {
                        t.in_test = true;
                    }
                    i = end;
                    continue;
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// Scan the attribute starting at the `[` token; returns the index of its
/// matching `]` and whether the attribute gates test code (`#[test]`, or a
/// `cfg(...)` whose arguments mention `test`).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut first_ident: Option<&str> = None;
    let mut mentions_test = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            (TokKind::Ident, text) => {
                if first_ident.is_none() {
                    first_ident = Some(text);
                }
                if text == "test" {
                    mentions_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let is_test = match first_ident {
        Some("test") => true,
        Some("cfg") => mentions_test,
        _ => false,
    };
    (j, is_test)
}

/// Find the end (exclusive token index) of the item starting after an
/// attribute: skip any further attributes, then run to the matching `}` of
/// the item's first brace block, or to the first `;` for braceless items.
fn item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes (`#[test] #[ignore] fn …`).
    while i < tokens.len() && tokens[i].kind == TokKind::Punct && tokens[i].text == "#" {
        if matches!(tokens.get(i + 1), Some(t) if t.text == "[") {
            let (close, _) = scan_attribute(tokens, i + 1);
            i = close + 1;
        } else {
            break;
        }
    }
    let mut j = i;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ";" => return j + 1,
                "{" => {
                    let mut depth = 0usize;
                    while j < tokens.len() {
                        let u = &tokens[j];
                        if u.kind == TokKind::Punct {
                            match u.text.as_str() {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        return j + 1;
                                    }
                                }
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    return tokens.len();
                }
                _ => {}
            }
        }
        j += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        scan(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_produce_no_rule_tokens() {
        let src = r##"
            // a.unwrap() in a comment
            /* panic!() in /* nested */ block */
            let s = "x.unwrap()";
            let r = r#"panic!()"#;
            let c = 'u';
        "##;
        let toks = texts(src);
        assert!(!toks.iter().any(|t| t == "unwrap"));
        assert!(!toks.iter().any(|t| t == "panic"));
        assert!(toks.iter().any(|t| t == "let"));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let toks = texts("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(toks.iter().any(|t| t == "'a"));
        assert!(toks.iter().any(|t| t == "trim"));
    }

    #[test]
    fn numbers_split_from_ranges_and_method_calls() {
        let s = scan("let a = 0..10; let b = 1.5; let c = 40usize.max(2);");
        let ints: Vec<&str> = s
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Int)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ints, vec!["0", "10", "40usize", "2"]);
        assert!(s
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Float && t.text == "1.5"));
    }

    #[test]
    fn allow_comments_are_collected() {
        let s = scan("let x = y.unwrap(); // lint: allow(no-panic): y is checked above\n");
        assert_eq!(s.allows.len(), 1);
        assert_eq!(s.allows[0].rule, "no-panic");
        assert!(s.allows[0].reason.contains("checked"));
        assert_eq!(s.allows[0].line, 1);
    }

    #[test]
    fn allow_without_reason_is_recorded_empty() {
        let s = scan("// lint: allow(no-panic)\n");
        assert_eq!(s.allows.len(), 1);
        assert!(s.allows[0].reason.is_empty());
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}";
        let s = scan(src);
        let unwrap = s.tokens.iter().find(|t| t.text == "unwrap").unwrap();
        assert!(unwrap.in_test);
        let lib = s.tokens.iter().find(|t| t.text == "lib").unwrap();
        assert!(!lib.in_test);
        let tail = s.tokens.iter().find(|t| t.text == "tail").unwrap();
        assert!(!tail.in_test);
    }

    #[test]
    fn test_fn_with_stacked_attributes_is_marked() {
        let src = "#[test]\n#[ignore]\nfn stress() { helper(); }\nfn lib() {}";
        let s = scan(src);
        let helper = s.tokens.iter().find(|t| t.text == "helper").unwrap();
        assert!(helper.in_test);
        let lib = s.tokens.iter().find(|t| t.text == "lib").unwrap();
        assert!(!lib.in_test);
    }

    #[test]
    fn non_test_cfg_is_not_marked() {
        let src = "#[cfg(feature = \"parallel\")]\nmod pool { fn inner() {} }";
        let s = scan(src);
        let inner = s.tokens.iter().find(|t| t.text == "inner").unwrap();
        assert!(!inner.in_test);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let s = scan("ab\n  cd");
        assert_eq!((s.tokens[0].line, s.tokens[0].col), (1, 1));
        assert_eq!((s.tokens[1].line, s.tokens[1].col), (2, 3));
    }
}
