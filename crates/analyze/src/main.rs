//! The `dagwave-analyze` binary: lint the workspace, print rustc-style
//! diagnostics, exit nonzero when anything fires.
//!
//! Usage: `dagwave-analyze [--root <dir>]`. Without `--root` the workspace
//! is located by walking up from the current directory to the first
//! `Cargo.toml` with a `[workspace]` table, so `cargo run -p
//! dagwave-analyze` works from anywhere inside the repo.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("dagwave-analyze: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: dagwave-analyze [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dagwave-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("dagwave-analyze: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match dagwave_analyze::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "dagwave-analyze: no workspace Cargo.toml above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match dagwave_analyze::run(&root) {
        Ok(findings) => {
            print!("{}", dagwave_analyze::render(&findings));
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dagwave-analyze: io error: {e}");
            ExitCode::from(2)
        }
    }
}
