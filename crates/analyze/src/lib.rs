//! dagwave-analyze: the workspace's project lint engine.
//!
//! A dependency-free, token-level scanner (see [`lexer`]) feeding a small
//! set of project-specific rules (see [`rules`]) that defend conventions
//! rustc and clippy cannot know about: panic-free library crates, all
//! concurrency routed through the `shims/rayon` pool, `#[non_exhaustive]`
//! error surfaces, named tuning budgets in solver dispatch, and no
//! wall-clock reads in deterministic paths.
//!
//! Two entry points share the engine:
//! * the `dagwave-analyze` binary (CI's `analyze` job, and humans);
//! * the `workspace_is_lint_clean` integration test, so plain
//!   `cargo test` — the tier-1 gate — enforces the rules too.

pub mod lexer;
pub mod rules;

pub use rules::Finding;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint one in-memory file. `rel_path` must be workspace-relative with
/// forward slashes — rule scoping matches on it textually.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    rules::lint_file(rel_path, &lexer::scan(src))
}

/// Walk the workspace rooted at `root` and lint every governed file.
///
/// Scanned: `src/**/*.rs` (the facade crate) and `crates/*/src/**/*.rs`.
/// Skipped: `shims/` (implements the primitives the rules ban), `target/`,
/// and any `fixtures/` directory (lint-violation corpora must not fail the
/// clean run). Findings come back sorted by path, then line, then column,
/// so output and exit codes are deterministic.
pub fn run(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("src"), &mut files)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for e in entries {
            collect_rs(&e.join("src"), &mut files)?;
        }
    }
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    for file in &files {
        let rel = match file.strip_prefix(root) {
            Ok(r) => r,
            Err(_) => continue,
        };
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(file)?;
        findings.extend(lint_source(&rel_str, &src));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}

/// Recursively collect `.rs` files under `dir`, skipping `fixtures/` and
/// `target/` subtrees. Missing directories are fine (not every crate-like
/// path exists).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(name.as_deref(), Some("fixtures") | Some("target")) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings in rustc style:
///
/// ```text
/// error[no-panic]: `.unwrap()` in library code; …
///   --> crates/core/src/solver.rs:441:17
/// ```
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "error[{}]: {}\n  --> {}:{}:{}\n",
            f.rule, f.message, f.file, f.line, f.col
        ));
    }
    if findings.is_empty() {
        out.push_str("dagwave-analyze: no findings\n");
    } else {
        out.push_str(&format!(
            "dagwave-analyze: {} finding{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` containing a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
