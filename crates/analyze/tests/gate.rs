//! The tier-1 lint gate: plain `cargo test` fails if the workspace picks
//! up a lint finding, and fails if the engine ever stops detecting the
//! planted violations in the fixture tree (a dead lint is worse than no
//! lint — it reads as a guarantee).

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has two ancestors")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let findings = dagwave_analyze::run(&root).expect("workspace tree is readable");
    assert!(
        findings.is_empty(),
        "lint findings in the workspace:\n{}",
        dagwave_analyze::render(&findings)
    );
}

#[test]
fn violation_fixture_trips_every_rule() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violation_tree");
    let findings = dagwave_analyze::run(&fixture).expect("fixture tree is readable");
    let fired: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    for rule in dagwave_analyze::rules::RULES {
        assert!(
            fired.contains(&rule),
            "rule `{rule}` did not fire on the violation fixture; fired: {fired:?}"
        );
    }
    // Diagnostics carry real positions, not placeholders.
    assert!(findings.iter().all(|f| f.line >= 1 && f.col >= 1));
    // Rendering is rustc-shaped.
    let text = dagwave_analyze::render(&findings);
    assert!(text.contains("error[no-panic]:"));
    assert!(text.contains("--> crates/core/src/solver.rs:"));
}

#[test]
fn fixture_findings_are_deterministically_ordered() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/violation_tree");
    let a = dagwave_analyze::run(&fixture).expect("fixture tree is readable");
    let b = dagwave_analyze::run(&fixture).expect("fixture tree is readable");
    assert_eq!(a, b);
    let mut sorted = a.clone();
    sorted.sort_by(|x, y| {
        (x.file.as_str(), x.line, x.col, x.rule).cmp(&(y.file.as_str(), y.line, y.col, y.rule))
    });
    assert_eq!(a, sorted);
}
