//! Forbidden-subgraph detectors.
//!
//! Corollary 5: the conflict graph of a dipath family in an UPP-DAG contains
//! no `K_{2,3}`. The paper also notes `K_5` minus two independent edges is
//! forbidden. These detectors power property tests that validate the theory
//! against randomly generated UPP instances.

use crate::ugraph::UGraph;

/// Search for a `K_{2,3}` subgraph (not necessarily induced): two vertices
/// with three common neighbors. Returns `([a, b], [x, y, z])` if found.
pub fn find_k23(g: &UGraph) -> Option<([usize; 2], [usize; 3])> {
    let n = g.vertex_count();
    // For every pair (a, b), intersect neighbor lists (both sorted).
    for a in 0..n {
        for b in (a + 1)..n {
            let mut common = [0usize; 3];
            let mut count = 0;
            let (mut i, mut j) = (0, 0);
            let (na, nb) = (g.neighbors(a), g.neighbors(b));
            while i < na.len() && j < nb.len() {
                match na[i].cmp(&nb[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        let v = na[i] as usize;
                        if v != a && v != b {
                            common[count] = v;
                            count += 1;
                            if count == 3 {
                                return Some(([a, b], common));
                            }
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    None
}

/// `true` if the graph contains a `K_{2,3}` subgraph (sides not required
/// to be independent — a weaker condition than Corollary 5 forbids).
pub fn contains_k23(g: &UGraph) -> bool {
    find_k23(g).is_some()
}

/// Search for an *induced* `K_{2,3}`: two non-adjacent vertices with three
/// pairwise non-adjacent common neighbors. This is the exact configuration
/// Corollary 5 excludes from UPP conflict graphs (its proof needs the
/// `P_i`s pairwise disjoint and the `Q_j`s disjoint).
pub fn find_induced_k23(g: &UGraph) -> Option<([usize; 2], [usize; 3])> {
    let n = g.vertex_count();
    for a in 0..n {
        for b in (a + 1)..n {
            if g.has_edge(a, b) {
                continue;
            }
            // Common neighbors of the non-adjacent pair.
            let common: Vec<usize> = g
                .neighbors(a)
                .iter()
                .filter(|&&v| g.has_edge(b, v as usize))
                .map(|&v| v as usize)
                .collect();
            if common.len() < 3 {
                continue;
            }
            // Any independent triple among the common neighbors?
            for (i, &x) in common.iter().enumerate() {
                for (j, &y) in common.iter().enumerate().skip(i + 1) {
                    if g.has_edge(x, y) {
                        continue;
                    }
                    for &z in common.iter().skip(j + 1) {
                        if !g.has_edge(x, z) && !g.has_edge(y, z) {
                            return Some(([a, b], [x, y, z]));
                        }
                    }
                }
            }
        }
    }
    None
}

/// `true` if the graph contains an induced `K_{2,3}` (see
/// [`find_induced_k23`]).
pub fn contains_induced_k23(g: &UGraph) -> bool {
    find_induced_k23(g).is_some()
}

/// Search for `K_5` minus two independent edges ("the bowtie complement"):
/// five vertices where all 10 pairs are adjacent except two disjoint pairs.
/// The paper proves UPP conflict graphs exclude it.
pub fn contains_k5_minus_two_independent_edges(g: &UGraph) -> bool {
    let n = g.vertex_count();
    if n < 5 {
        return false;
    }
    // Pick the two missing (independent) edges {a,b} and {c,d} among
    // non-adjacent pairs, plus a fifth vertex adjacent to all four.
    let non_edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .filter(|&(a, b)| !g.has_edge(a, b))
        .collect();
    for (i, &(a, b)) in non_edges.iter().enumerate() {
        for &(c, d) in &non_edges[i + 1..] {
            if a == c || a == d || b == c || b == d {
                continue; // must be independent
            }
            // The four cross pairs must be edges.
            if !(g.has_edge(a, c) && g.has_edge(a, d) && g.has_edge(b, c) && g.has_edge(b, d)) {
                continue;
            }
            // Fifth vertex adjacent to all of a, b, c, d.
            for e in 0..n {
                if e == a || e == b || e == c || e == d {
                    continue;
                }
                if g.has_edge(e, a) && g.has_edge(e, b) && g.has_edge(e, c) && g.has_edge(e, d) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_bipartite, complete_graph, cycle_graph, UGraph};

    #[test]
    fn k23_itself_detected() {
        let g = complete_bipartite(2, 3);
        let ([a, b], [x, y, z]) = find_k23(&g).unwrap();
        for &u in &[x, y, z] {
            assert!(g.has_edge(a, u) && g.has_edge(b, u));
        }
        assert!(contains_k23(&g));
    }

    #[test]
    fn k23_inside_larger_graph() {
        let mut g = cycle_graph(8);
        // Vertices 0 and 2 get common neighbors 1 (cycle), 5, 6.
        g.add_edge(0, 5);
        g.add_edge(2, 5);
        g.add_edge(0, 6);
        g.add_edge(2, 6);
        assert!(contains_k23(&g));
    }

    #[test]
    fn cycle_has_no_k23() {
        assert!(!contains_k23(&cycle_graph(10)));
        assert!(!contains_k23(&UGraph::new(4)));
    }

    #[test]
    fn k4_has_no_k23_but_k5_does() {
        // K4: any two vertices have exactly 2 common neighbors.
        assert!(!contains_k23(&complete_graph(4)));
        // K5: any two vertices have 3 common neighbors — contains K_{2,3}
        // as a (non-induced) subgraph, but no induced one (everything is
        // adjacent), so it does NOT violate Corollary 5.
        assert!(contains_k23(&complete_graph(5)));
        assert!(!contains_induced_k23(&complete_graph(5)));
    }

    #[test]
    fn induced_k23_detection() {
        let g = complete_bipartite(2, 3);
        let ([a, b], [x, y, z]) = find_induced_k23(&g).unwrap();
        assert!(!g.has_edge(a, b));
        assert!(!g.has_edge(x, y) && !g.has_edge(x, z) && !g.has_edge(y, z));
        // Adding the chord between the two "left" vertices kills the
        // induced pattern (no other non-adjacent pair has 3 common
        // neighbors).
        let mut h = complete_bipartite(2, 3);
        h.add_edge(0, 1);
        assert!(contains_k23(&h), "subgraph copy remains");
        assert!(!contains_induced_k23(&h), "induced copy is gone");
    }

    #[test]
    fn k5_minus_two_independent_edges() {
        // Build K5 and remove {0,1} and {2,3}.
        let mut g = UGraph::new(5);
        for a in 0..5 {
            for b in (a + 1)..5 {
                if (a, b) != (0, 1) && (a, b) != (2, 3) {
                    g.add_edge(a, b);
                }
            }
        }
        assert!(contains_k5_minus_two_independent_edges(&g));
        // Removing adjacent-looking edges instead: {0,1} and {1,2} share
        // vertex 1, pattern must NOT match on K5 minus those two.
        let mut h = UGraph::new(5);
        for a in 0..5 {
            for b in (a + 1)..5 {
                if (a, b) != (0, 1) && (a, b) != (1, 2) {
                    h.add_edge(a, b);
                }
            }
        }
        assert!(!contains_k5_minus_two_independent_edges(&h));
    }

    #[test]
    fn small_graphs_lack_k5_pattern() {
        assert!(!contains_k5_minus_two_independent_edges(&cycle_graph(8)));
        assert!(!contains_k5_minus_two_independent_edges(&complete_graph(4)));
    }

    #[test]
    fn c8_with_antipodal_chords_is_clean() {
        // Figure 9's conflict graph satisfies both exclusions, as Corollary 5
        // demands of a genuine UPP conflict graph.
        let mut g = cycle_graph(8);
        for i in 0..4 {
            g.add_edge(i, i + 4);
        }
        assert!(!contains_k23(&g));
        assert!(!contains_induced_k23(&g));
        assert!(!contains_k5_minus_two_independent_edges(&g));
    }
}
