//! DSATUR (degree of saturation) coloring heuristic.
//!
//! Brélaz's rule: repeatedly color the uncolored vertex whose neighborhood
//! already shows the most distinct colors (ties by degree). Exact on
//! bipartite graphs and strong on conflict graphs of structured families —
//! it is the "good heuristic" baseline against which the paper's optimal
//! algorithm is measured.

use crate::ugraph::UGraph;
use crate::Coloring;
use dagwave_graph::BitSet;

/// DSATUR coloring.
pub fn dsatur_coloring(g: &UGraph) -> Coloring {
    let n = g.vertex_count();
    let mut colors: Coloring = vec![usize::MAX; n];
    if n == 0 {
        return colors;
    }
    // Saturation sets: which colors appear in each vertex's neighborhood.
    let palette = g.max_degree() + 2;
    let mut sat: Vec<BitSet> = (0..n).map(|_| BitSet::new(palette)).collect();
    let mut sat_deg = vec![0usize; n];
    let mut colored = 0usize;

    while colored < n {
        // Select uncolored vertex with max saturation, ties by degree.
        let v = (0..n)
            .filter(|&v| colors[v] == usize::MAX)
            .max_by_key(|&v| (sat_deg[v], g.degree(v)))
            .expect("uncolored vertex exists"); // lint: allow(no-panic): the loop condition guarantees an uncolored vertex remains
        let c = sat[v].first_absent().expect("palette large enough"); // lint: allow(no-panic): the palette is sized to max degree + 1, so a color is free
        colors[v] = c;
        colored += 1;
        for &w in g.neighbors(v) {
            let w = w as usize;
            if colors[w] == usize::MAX && sat[w].insert(c) {
                sat_deg[w] += 1;
            }
        }
    }
    colors
}

/// Number of colors used by DSATUR.
pub fn dsatur_color_count(g: &UGraph) -> usize {
    dsatur_coloring(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_bipartite, complete_graph, cycle_graph, UGraph};
    use crate::verify::is_proper;

    #[test]
    fn proper_on_assorted_graphs() {
        for g in [
            cycle_graph(9),
            complete_graph(6),
            complete_bipartite(3, 4),
            UGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]),
        ] {
            let c = dsatur_coloring(&g);
            assert!(is_proper(&g, &c));
        }
    }

    #[test]
    fn exact_on_bipartite() {
        // DSATUR is provably exact on bipartite graphs.
        let g = complete_bipartite(4, 5);
        assert_eq!(dsatur_color_count(&g), 2);
        let even = cycle_graph(10);
        assert_eq!(dsatur_color_count(&even), 2);
    }

    #[test]
    fn odd_cycle_needs_three() {
        assert_eq!(dsatur_color_count(&cycle_graph(5)), 3);
    }

    #[test]
    fn clique_needs_n() {
        assert_eq!(dsatur_color_count(&complete_graph(7)), 7);
    }

    #[test]
    fn empty_graph() {
        assert_eq!(dsatur_color_count(&UGraph::new(0)), 0);
        assert_eq!(dsatur_color_count(&UGraph::new(5)), 1);
    }

    #[test]
    fn havet_conflict_graph_shape() {
        // C8 plus antipodal chords (Figure 9's conflict graph): chromatic
        // number 3 — DSATUR should reach it.
        let mut g = cycle_graph(8);
        for i in 0..4 {
            g.add_edge(i, i + 4);
        }
        let used = dsatur_color_count(&g);
        assert!(is_proper(&g, &dsatur_coloring(&g)));
        assert_eq!(used, 3);
    }
}
