//! Maximum clique via Bron–Kerbosch with pivoting.
//!
//! Used to verify Property 3 (for UPP-DAGs the clique number of the conflict
//! graph equals the load `π`) and to seed the exact chromatic solver's lower
//! bound.

use crate::ugraph::UGraph;
use dagwave_graph::BitSet;

/// A maximum clique of `g` (vertex set, any one if several).
pub fn max_clique(g: &UGraph) -> Vec<usize> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let neigh: Vec<BitSet> = (0..n)
        .map(|v| {
            let mut b = BitSet::new(n);
            for &w in g.neighbors(v) {
                b.insert(w as usize);
            }
            b
        })
        .collect();
    let mut best: Vec<usize> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let mut p = BitSet::new(n);
    for v in 0..n {
        p.insert(v);
    }
    let x = BitSet::new(n);
    bron_kerbosch(&neigh, &mut r, p, x, &mut best);
    best
}

/// The clique number `ω(g)`.
pub fn clique_number(g: &UGraph) -> usize {
    max_clique(g).len()
}

fn bron_kerbosch(
    neigh: &[BitSet],
    r: &mut Vec<usize>,
    p: BitSet,
    x: BitSet,
    best: &mut Vec<usize>,
) {
    if p.is_empty() && x.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    // Bound: even taking all of P cannot beat the incumbent.
    if r.len() + p.count() <= best.len() {
        return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| {
            let mut t = p.clone();
            t.intersect_with(&neigh[u]);
            t.count()
        })
        .expect("P ∪ X non-empty"); // lint: allow(no-panic): the caller only recurses with P ∪ X non-empty, so a candidate exists
                                    // Branch on P \ N(pivot).
    let mut candidates = p.clone();
    candidates.difference_with(&neigh[pivot]);
    let mut p = p;
    let mut x = x;
    for v in candidates.iter().collect::<Vec<_>>() {
        let mut p2 = p.clone();
        p2.intersect_with(&neigh[v]);
        let mut x2 = x.clone();
        x2.intersect_with(&neigh[v]);
        r.push(v);
        bron_kerbosch(neigh, r, p2, x2, best);
        r.pop();
        p.remove(v);
        x.insert(v);
    }
}

/// Check that a vertex set is a clique.
pub fn is_clique(g: &UGraph, verts: &[usize]) -> bool {
    for (i, &a) in verts.iter().enumerate() {
        for &b in &verts[i + 1..] {
            if !g.has_edge(a, b) {
                return false;
            }
        }
    }
    true
}

/// A fast greedy clique (not maximum): grows from the highest-degree vertex.
/// Used as the cheap lower bound inside the exact chromatic solver.
pub fn greedy_clique(g: &UGraph) -> Vec<usize> {
    let n = g.vertex_count();
    if n == 0 {
        return Vec::new();
    }
    let order = g.largest_first_order();
    let mut clique = vec![order[0]];
    for &v in &order[1..] {
        if clique.iter().all(|&u| g.has_edge(u, v)) {
            clique.push(v);
        }
    }
    clique
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_bipartite, complete_graph, cycle_graph, UGraph};

    #[test]
    fn clique_of_complete_graph() {
        let g = complete_graph(6);
        let c = max_clique(&g);
        assert_eq!(c.len(), 6);
        assert!(is_clique(&g, &c));
    }

    #[test]
    fn clique_of_cycle_is_edge() {
        let g = cycle_graph(6);
        assert_eq!(clique_number(&g), 2);
        let g3 = cycle_graph(3);
        assert_eq!(clique_number(&g3), 3, "triangle is K3");
    }

    #[test]
    fn clique_of_bipartite_is_edge() {
        assert_eq!(clique_number(&complete_bipartite(3, 4)), 2);
    }

    #[test]
    fn planted_clique_found() {
        // K5 planted in a sparse graph.
        let mut g = UGraph::new(12);
        for a in 0..5 {
            for b in (a + 1)..5 {
                g.add_edge(a, b);
            }
        }
        for i in 5..11 {
            g.add_edge(i, i + 1);
        }
        g.add_edge(0, 7);
        let c = max_clique(&g);
        assert_eq!(c.len(), 5);
        assert!(is_clique(&g, &c));
        let mut sorted = c.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn empty_and_edgeless() {
        assert!(max_clique(&UGraph::new(0)).is_empty());
        assert_eq!(clique_number(&UGraph::new(5)), 1, "single vertex clique");
    }

    #[test]
    fn greedy_clique_is_clique() {
        let g = complete_bipartite(3, 3);
        let c = greedy_clique(&g);
        assert!(is_clique(&g, &c));
        assert!(!c.is_empty());
        assert!(c.len() <= clique_number(&g));
    }

    #[test]
    fn is_clique_rejects_nonclique() {
        let g = cycle_graph(4);
        assert!(!is_clique(&g, &[0, 1, 2]));
        assert!(is_clique(&g, &[0, 1]));
        assert!(is_clique(&g, &[2]));
        assert!(is_clique(&g, &[]));
    }
}
