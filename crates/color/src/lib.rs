//! # dagwave-color
//!
//! Undirected graph coloring and clique toolkit — the baseline machinery the
//! paper's results are compared against.
//!
//! `w(G, P)` is the chromatic number of the conflict graph; computing it is
//! NP-hard in general (the paper cites the coloring reduction explicitly).
//! This crate provides:
//!
//! * [`UGraph`] — a simple undirected graph (the conflict graph's shape).
//! * [`greedy`] — greedy coloring with several vertex orders (natural,
//!   largest-first, smallest-last/degeneracy).
//! * [`dsatur`] — the DSATUR heuristic.
//! * [`exact`] — exact chromatic number by DSATUR-style branch and bound
//!   with clique lower bounds (used to *verify* `w` on paper instances).
//! * [`clique`] — Bron–Kerbosch maximum clique (verifies Property 3).
//! * [`kempe`] — Kempe-chain component swaps (shared with the Theorem-1
//!   solver) and [`kempe::kempe_reduce`], the palette-reduction refinement
//!   behind the `KempeGreedy` solver backend.
//! * [`forbidden`] — `K_{2,3}` detection (Corollary 5 checks).
//! * [`independent`] — greedy maximal independent sets (Theorem 7's
//!   lower-bound argument `w ≥ n/α`).
//! * [`verify`] — proper-coloring validation.
//!
//! ## Quick example
//!
//! The 5-cycle: clique number 2, chromatic number 3 — the gap the paper's
//! `w = π` theorem closes for internal-cycle-free instances.
//!
//! ```
//! use dagwave_color::{clique, dsatur, exact, verify, UGraph};
//!
//! let c5 = UGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
//! assert_eq!(clique::clique_number(&c5), 2);
//! assert_eq!(exact::chromatic_number(&c5).chromatic(), Some(3));
//! let coloring = dsatur::dsatur_coloring(&c5);
//! assert!(verify::is_proper(&c5, &coloring));
//! assert_eq!(dagwave_color::color_count(&coloring), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod clique;
pub mod dsatur;
pub mod exact;
pub mod forbidden;
pub mod greedy;
pub mod independent;
pub mod kempe;
pub mod multicolor;
pub mod ugraph;
pub mod verify;

pub use ugraph::UGraph;

/// A vertex coloring: `colors[v]` is the color of vertex `v`.
pub type Coloring = Vec<usize>;

/// Number of distinct colors used by a coloring.
pub fn color_count(coloring: &Coloring) -> usize {
    let mut seen = std::collections::HashSet::new();
    for &c in coloring {
        seen.insert(c);
    }
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn color_count_distinct() {
        assert_eq!(color_count(&vec![0, 1, 0, 2]), 3);
        assert_eq!(color_count(&vec![]), 0);
        assert_eq!(color_count(&vec![5, 5, 5]), 1);
    }
}
