//! Bipartiteness and odd-cycle extraction.
//!
//! The Theorem-2 witness families have conflict graphs that are odd cycles;
//! `w = 3 > 2 = π` follows precisely from non-bipartiteness. This module
//! provides the 2-coloring test with an explicit odd-cycle certificate,
//! used by the generators' validation and the integration tests.

use crate::ugraph::UGraph;

/// Outcome of a bipartiteness test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bipartiteness {
    /// A valid 2-coloring (side per vertex).
    Bipartite(Vec<u8>),
    /// An odd cycle as a closed vertex sequence (first = last).
    OddCycle(Vec<usize>),
}

impl Bipartiteness {
    /// `true` for the bipartite variant.
    pub fn is_bipartite(&self) -> bool {
        matches!(self, Bipartiteness::Bipartite(_))
    }
}

/// BFS 2-coloring with odd-cycle certificate.
pub fn check_bipartite(g: &UGraph) -> Bipartiteness {
    let n = g.vertex_count();
    let mut side = vec![u8::MAX; n];
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if side[start] != u8::MAX {
            continue;
        }
        side[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                let w = w as usize;
                if side[w] == u8::MAX {
                    side[w] = 1 - side[v];
                    parent[w] = v;
                    queue.push_back(w);
                } else if side[w] == side[v] {
                    return Bipartiteness::OddCycle(extract_odd_cycle(&parent, v, w));
                }
            }
        }
    }
    Bipartiteness::Bipartite(side)
}

/// Close the odd cycle through the BFS tree paths of the offending edge.
fn extract_odd_cycle(parent: &[usize], v: usize, w: usize) -> Vec<usize> {
    // Ancestor chains to the root; the cycle closes at the lowest common
    // ancestor.
    let chain = |mut x: usize| {
        let mut c = vec![x];
        while parent[x] != usize::MAX {
            x = parent[x];
            c.push(x);
        }
        c
    };
    let cv = chain(v);
    let cw = chain(w);
    // Find LCA: deepest common vertex (chains end at the same root).
    let inter: std::collections::HashSet<usize> = cw.iter().copied().collect();
    let lca = *cv
        .iter()
        .find(|x| inter.contains(x))
        .expect("same BFS tree"); // lint: allow(no-panic): both endpoints lie in one BFS tree, so the layer intersection is non-empty
    let mut cycle: Vec<usize> = cv.iter().take_while(|&&x| x != lca).copied().collect();
    cycle.push(lca);
    let wside: Vec<usize> = cw.iter().take_while(|&&x| x != lca).copied().collect();
    cycle.extend(wside.iter().rev());
    cycle.push(v);
    debug_assert_eq!(cycle.first(), cycle.last());
    debug_assert_eq!(
        cycle.len() % 2,
        0,
        "odd cycle: even vertex-list length with repeat"
    );
    cycle
}

/// `true` iff the graph is bipartite (χ ≤ 2).
pub fn is_bipartite(g: &UGraph) -> bool {
    check_bipartite(g).is_bipartite()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_bipartite, complete_graph, cycle_graph, UGraph};

    #[test]
    fn even_cycles_are_bipartite() {
        for n in [4usize, 6, 10] {
            match check_bipartite(&cycle_graph(n)) {
                Bipartiteness::Bipartite(side) => {
                    let g = cycle_graph(n);
                    for (a, b) in g.edge_list() {
                        assert_ne!(side[a], side[b]);
                    }
                }
                other => panic!("C{n} should be bipartite, got {other:?}"),
            }
        }
    }

    #[test]
    fn odd_cycles_yield_certificates() {
        for n in [3usize, 5, 9] {
            let g = cycle_graph(n);
            match check_bipartite(&g) {
                Bipartiteness::OddCycle(cycle) => {
                    assert_eq!(cycle.first(), cycle.last());
                    let len = cycle.len() - 1;
                    assert_eq!(len % 2, 1, "odd length");
                    for w in cycle.windows(2) {
                        assert!(g.has_edge(w[0], w[1]), "cycle edge {w:?}");
                    }
                }
                other => panic!("C{n} is odd, got {other:?}"),
            }
        }
    }

    #[test]
    fn bipartite_families() {
        assert!(is_bipartite(&complete_bipartite(3, 4)));
        assert!(is_bipartite(&UGraph::new(5)));
        assert!(!is_bipartite(&complete_graph(3)));
    }

    #[test]
    fn disconnected_components() {
        // An even cycle plus a separate triangle: not bipartite.
        let mut g = UGraph::new(7);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        g.add_edge(4, 5);
        g.add_edge(5, 6);
        g.add_edge(6, 4);
        match check_bipartite(&g) {
            Bipartiteness::OddCycle(c) => {
                assert!(c.iter().all(|&v| v >= 4), "certificate in the triangle");
            }
            other => panic!("expected odd cycle, got {other:?}"),
        }
    }

    #[test]
    fn wagner_graph_is_not_bipartite() {
        // Figure 9's conflict graph (C8 + antipodal chords).
        let mut g = cycle_graph(8);
        for i in 0..4 {
            g.add_edge(i, i + 4);
        }
        assert!(!is_bipartite(&g));
    }
}
