//! A simple undirected graph.
//!
//! The shape of conflict graphs: no loops, no parallel edges. Stored as
//! sorted adjacency lists over dense `usize` vertex ids.

/// Simple undirected graph over vertices `0..n`.
#[derive(Clone, Debug, Default)]
pub struct UGraph {
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl UGraph {
    /// Empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        UGraph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Build from an edge list (duplicates and loops are ignored).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = UGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Build directly from pre-sorted deduplicated adjacency (used to adapt
    /// `dagwave_paths::ConflictGraph` without copying through an edge list).
    pub fn from_sorted_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let edges = adj.iter().map(|n| n.len()).sum::<usize>() / 2;
        debug_assert!(adj.iter().all(|ns| ns.windows(2).all(|w| w[0] < w[1])));
        UGraph { adj, edges }
    }

    /// Add edge `{a, b}`; returns `false` for loops and duplicates.
    pub fn add_edge(&mut self, a: usize, b: usize) -> bool {
        if a == b || a >= self.adj.len() || b >= self.adj.len() {
            return false;
        }
        match self.adj[a].binary_search(&(b as u32)) {
            Ok(_) => false,
            Err(pos_a) => {
                self.adj[a].insert(pos_a, b as u32);
                let pos_b = self.adj[b]
                    .binary_search(&(a as u32))
                    .expect_err("asymmetric adjacency");
                self.adj[b].insert(pos_b, a as u32);
                self.edges += 1;
                true
            }
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|ns| ns.len()).max().unwrap_or(0)
    }

    /// Adjacency test.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].binary_search(&(b as u32)).is_ok()
    }

    /// Edge list with `a < b`.
    pub fn edge_list(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.edges);
        for (a, ns) in self.adj.iter().enumerate() {
            for &b in ns {
                let b = b as usize;
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Vertices sorted by decreasing degree (Welsh–Powell order).
    pub fn largest_first_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.vertex_count()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.degree(v)));
        order
    }

    /// Smallest-last (degeneracy) order: repeatedly remove a minimum-degree
    /// vertex; returns the removal sequence reversed. Greedy coloring along
    /// this order uses at most `degeneracy + 1` colors.
    pub fn smallest_last_order(&self) -> Vec<usize> {
        let n = self.vertex_count();
        let mut deg: Vec<usize> = (0..n).map(|v| self.degree(v)).collect();
        let mut removed = vec![false; n];
        let max_deg = self.max_degree();
        // Bucket queue over degrees.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_deg + 1];
        for v in 0..n {
            buckets[deg[v]].push(v);
        }
        let mut order = Vec::with_capacity(n);
        let mut cursor = 0usize;
        for _ in 0..n {
            // Find the non-empty bucket with the smallest degree. Degrees only
            // decrease, so the cursor may need to step back by at most 1 per
            // removal; rescan from 0 for simplicity guarded by cursor hint.
            cursor = cursor.saturating_sub(1);
            let v = loop {
                if let Some(&cand) = buckets[cursor].last() {
                    if removed[cand] || deg[cand] != cursor {
                        buckets[cursor].pop();
                        continue;
                    }
                    buckets[cursor].pop();
                    break cand;
                }
                cursor += 1;
            };
            removed[v] = true;
            order.push(v);
            for &w in self.neighbors(v) {
                let w = w as usize;
                if !removed[w] {
                    deg[w] -= 1;
                    buckets[deg[w]].push(w);
                }
            }
        }
        order.reverse();
        order
    }

    /// The degeneracy (max over the smallest-last process of the degree at
    /// removal time).
    pub fn degeneracy(&self) -> usize {
        let order = self.smallest_last_order();
        // Recompute: degeneracy = max back-degree along the order.
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        (0..self.vertex_count())
            .map(|v| {
                self.neighbors(v)
                    .iter()
                    .filter(|&&w| pos[w as usize] < pos[v])
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Complement graph (for independent-set ↔ clique dualities in tests).
    pub fn complement(&self) -> UGraph {
        let n = self.vertex_count();
        let mut g = UGraph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if !self.has_edge(a, b) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }
}

/// Build the cycle graph `C_n`.
pub fn cycle_graph(n: usize) -> UGraph {
    let mut g = UGraph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    g
}

/// Build the complete graph `K_n`.
pub fn complete_graph(n: usize) -> UGraph {
    let mut g = UGraph::new(n);
    for a in 0..n {
        for b in (a + 1)..n {
            g.add_edge(a, b);
        }
    }
    g
}

/// Build the complete bipartite graph `K_{m,n}` (left part first).
pub fn complete_bipartite(m: usize, n: usize) -> UGraph {
    let mut g = UGraph::new(m + n);
    for a in 0..m {
        for b in 0..n {
            g.add_edge(a, m + b);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_dedup_and_loops() {
        let mut g = UGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate rejected");
        assert!(!g.add_edge(2, 2), "loop rejected");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = UGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn standard_graphs() {
        let c5 = cycle_graph(5);
        assert_eq!(c5.edge_count(), 5);
        assert!(c5.has_edge(4, 0));
        let k4 = complete_graph(4);
        assert_eq!(k4.edge_count(), 6);
        let k23 = complete_bipartite(2, 3);
        assert_eq!(k23.edge_count(), 6);
        assert!(k23.has_edge(0, 2) && !k23.has_edge(0, 1));
    }

    #[test]
    fn largest_first_is_sorted_by_degree() {
        let g = UGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let order = g.largest_first_order();
        assert_eq!(order[0], 0);
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
    }

    #[test]
    fn smallest_last_covers_all_vertices() {
        let g = cycle_graph(7);
        let order = g.smallest_last_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn degeneracy_of_standard_graphs() {
        assert_eq!(cycle_graph(5).degeneracy(), 2);
        assert_eq!(complete_graph(4).degeneracy(), 3);
        let tree = UGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(tree.degeneracy(), 1);
        assert_eq!(UGraph::new(3).degeneracy(), 0);
    }

    #[test]
    fn complement_involution() {
        let g = UGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let cc = g.complement().complement();
        assert_eq!(cc.edge_list(), g.edge_list());
        assert_eq!(g.complement().edge_count(), 4);
    }

    #[test]
    fn edge_list_canonical() {
        let g = UGraph::from_edges(4, &[(3, 1), (2, 0)]);
        assert_eq!(g.edge_list(), vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn from_sorted_adjacency_roundtrip() {
        let g = cycle_graph(4);
        let adj: Vec<Vec<u32>> = (0..4).map(|v| g.neighbors(v).to_vec()).collect();
        let g2 = UGraph::from_sorted_adjacency(adj);
        assert_eq!(g2.edge_count(), 4);
        assert!(g2.has_edge(0, 3));
    }
}
