//! Independent sets.
//!
//! Theorem 7's lower-bound argument: the conflict graph on `8h` dipaths has
//! independence number 3h at most 3 per replication round, so any proper
//! coloring needs ≥ `8h/3` colors (`w ≥ n/α`). This module provides a greedy
//! maximal independent set and an exact maximum independent set (via
//! Bron–Kerbosch on the complement) for paper-scale graphs.

use crate::clique::max_clique;
use crate::ugraph::UGraph;

/// Greedy maximal independent set (min-degree-first heuristic).
pub fn greedy_mis(g: &UGraph) -> Vec<usize> {
    let n = g.vertex_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| g.degree(v));
    let mut blocked = vec![false; n];
    let mut mis = Vec::new();
    for v in order {
        if blocked[v] {
            continue;
        }
        mis.push(v);
        blocked[v] = true;
        for &w in g.neighbors(v) {
            blocked[w as usize] = true;
        }
    }
    mis
}

/// Exact maximum independent set — a maximum clique of the complement.
/// Exponential; use on paper-scale graphs only.
pub fn max_independent_set(g: &UGraph) -> Vec<usize> {
    max_clique(&g.complement())
}

/// The independence number `α(g)` (exact).
pub fn independence_number(g: &UGraph) -> usize {
    max_independent_set(g).len()
}

/// Check that a vertex set is independent.
pub fn is_independent(g: &UGraph, verts: &[usize]) -> bool {
    for (i, &a) in verts.iter().enumerate() {
        for &b in &verts[i + 1..] {
            if g.has_edge(a, b) {
                return false;
            }
        }
    }
    true
}

/// The `⌈n / α⌉` chromatic lower bound.
pub fn chromatic_lower_bound_via_alpha(g: &UGraph) -> usize {
    let n = g.vertex_count();
    if n == 0 {
        return 0;
    }
    let alpha = independence_number(g);
    n.div_ceil(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_graph, cycle_graph, UGraph};

    #[test]
    fn greedy_mis_is_independent_and_maximal() {
        let g = cycle_graph(7);
        let mis = greedy_mis(&g);
        assert!(is_independent(&g, &mis));
        // Maximality: every vertex outside has a neighbor inside.
        for v in 0..7 {
            if !mis.contains(&v) {
                assert!(g.neighbors(v).iter().any(|&w| mis.contains(&(w as usize))));
            }
        }
    }

    #[test]
    fn alpha_of_standard_graphs() {
        assert_eq!(independence_number(&cycle_graph(5)), 2);
        assert_eq!(independence_number(&cycle_graph(8)), 4);
        assert_eq!(independence_number(&complete_graph(6)), 1);
        assert_eq!(independence_number(&UGraph::new(4)), 4);
    }

    #[test]
    fn havet_alpha_is_three() {
        // Figure 9 conflict graph: α = 3 ⇒ w ≥ ⌈8/3⌉ = 3.
        let mut g = cycle_graph(8);
        for i in 0..4 {
            g.add_edge(i, i + 4);
        }
        assert_eq!(independence_number(&g), 3);
        assert_eq!(chromatic_lower_bound_via_alpha(&g), 3);
    }

    #[test]
    fn lower_bound_edge_cases() {
        assert_eq!(chromatic_lower_bound_via_alpha(&UGraph::new(0)), 0);
        assert_eq!(chromatic_lower_bound_via_alpha(&complete_graph(4)), 4);
        assert_eq!(chromatic_lower_bound_via_alpha(&cycle_graph(6)), 2);
    }

    #[test]
    fn is_independent_detects_edges() {
        let g = cycle_graph(4);
        assert!(is_independent(&g, &[0, 2]));
        assert!(!is_independent(&g, &[0, 1]));
        assert!(is_independent(&g, &[]));
    }
}
