//! Exact chromatic number by branch and bound.
//!
//! A DSATUR-ordered backtracking solver: vertices are colored in saturation
//! order; a branch assigns either one of the colors already in use or one
//! fresh color; branches whose used-color count reaches the incumbent are
//! pruned. The initial lower bound comes from a greedy clique, the upper
//! bound from DSATUR. Exponential in the worst case — intended for the
//! verification of `w` on paper-scale conflict graphs (≲ 100 vertices),
//! with an explicit node budget for safety.

use crate::clique::greedy_clique;
use crate::dsatur::dsatur_coloring;
use crate::ugraph::UGraph;
use crate::verify::is_proper;
use crate::Coloring;

/// Outcome of an exact chromatic computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExactResult {
    /// Optimum found: chromatic number and an optimal coloring.
    Optimal {
        /// The chromatic number.
        chromatic: usize,
        /// A proper coloring using `chromatic` colors.
        coloring: Coloring,
    },
    /// Node budget exhausted; best bounds found so far.
    BudgetExceeded {
        /// Best lower bound proven.
        lower: usize,
        /// Best proper coloring found (upper bound witness).
        upper: usize,
        /// The coloring witnessing `upper`.
        coloring: Coloring,
    },
}

impl ExactResult {
    /// The chromatic number if proven optimal.
    pub fn chromatic(&self) -> Option<usize> {
        match self {
            ExactResult::Optimal { chromatic, .. } => Some(*chromatic),
            ExactResult::BudgetExceeded { .. } => None,
        }
    }

    /// Best coloring found (optimal or incumbent).
    pub fn coloring(&self) -> &Coloring {
        match self {
            ExactResult::Optimal { coloring, .. } => coloring,
            ExactResult::BudgetExceeded { coloring, .. } => coloring,
        }
    }
}

/// Default branch-node budget for [`chromatic_number`].
pub const DEFAULT_NODE_BUDGET: u64 = 20_000_000;

/// Exact chromatic number with the default node budget.
pub fn chromatic_number(g: &UGraph) -> ExactResult {
    chromatic_number_budgeted(g, DEFAULT_NODE_BUDGET)
}

/// Exact chromatic number with an explicit node budget.
pub fn chromatic_number_budgeted(g: &UGraph, budget: u64) -> ExactResult {
    let n = g.vertex_count();
    if n == 0 {
        return ExactResult::Optimal {
            chromatic: 0,
            coloring: Vec::new(),
        };
    }
    // Bounds.
    let clique = greedy_clique(g);
    let lower = clique.len().max(1);
    let incumbent = dsatur_coloring(g);
    let mut best_count = incumbent.iter().copied().max().unwrap_or(0) + 1;
    let mut best = incumbent;
    if best_count == lower {
        return ExactResult::Optimal {
            chromatic: best_count,
            coloring: best,
        };
    }

    // Pre-seed: color the clique first with distinct colors — symmetry
    // breaking that removes factorial branching on the densest part.
    let mut state = Search {
        g,
        colors: vec![usize::MAX; n],
        best_count: &mut best_count,
        best: &mut best,
        nodes: 0,
        budget,
        lower,
    };
    for (i, &v) in clique.iter().enumerate() {
        state.colors[v] = i;
    }
    let exhausted = !state.branch(clique.len());
    let best_count = *state.best_count;

    if exhausted {
        ExactResult::BudgetExceeded {
            lower,
            upper: best_count,
            coloring: best,
        }
    } else {
        debug_assert!(is_proper(g, &best));
        ExactResult::Optimal {
            chromatic: best_count,
            coloring: best,
        }
    }
}

struct Search<'a> {
    g: &'a UGraph,
    colors: Coloring,
    best_count: &'a mut usize,
    best: &'a mut Coloring,
    nodes: u64,
    budget: u64,
    lower: usize,
}

impl Search<'_> {
    /// Returns `false` when the node budget ran out.
    fn branch(&mut self, used: usize) -> bool {
        self.nodes += 1;
        if self.nodes > self.budget {
            return false;
        }
        if used >= *self.best_count {
            return true; // pruned
        }
        // Next vertex: uncolored with max saturation (DSATUR rule inline).
        let n = self.g.vertex_count();
        let mut pick: Option<(usize, usize, usize)> = None; // (sat, deg, v)
        for v in 0..n {
            if self.colors[v] != usize::MAX {
                continue;
            }
            let mut seen = dagwave_graph::BitSet::new(*self.best_count + 1);
            let mut sat = 0;
            for &w in self.g.neighbors(v) {
                let c = self.colors[w as usize];
                if c != usize::MAX && c < seen.capacity() && seen.insert(c) {
                    sat += 1;
                }
            }
            let key = (sat, self.g.degree(v), v);
            // lint: allow(no-panic): short-circuit: pick.is_none() is checked first
            if pick.is_none() || key > pick.unwrap() {
                pick = Some(key);
            }
        }
        let Some((_, _, v)) = pick else {
            // Complete coloring: update incumbent.
            if used < *self.best_count {
                *self.best_count = used;
                *self.best = self.colors.clone();
            }
            // Optimality certificate: matched the clique lower bound.
            return true;
        };

        // Feasible existing colors, then at most one fresh color.
        let mut forbidden = dagwave_graph::BitSet::new(used + 1);
        for &w in self.g.neighbors(v) {
            let c = self.colors[w as usize];
            if c != usize::MAX && c <= used {
                forbidden.insert(c.min(used));
            }
        }
        for c in 0..used {
            if forbidden.contains(c) {
                continue;
            }
            self.colors[v] = c;
            if !self.branch(used) {
                return false;
            }
            self.colors[v] = usize::MAX;
            if *self.best_count == self.lower {
                return true; // proven optimal, stop early
            }
        }
        if used + 1 < *self.best_count {
            self.colors[v] = used;
            if !self.branch(used + 1) {
                return false;
            }
            self.colors[v] = usize::MAX;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_bipartite, complete_graph, cycle_graph, UGraph};

    fn chi(g: &UGraph) -> usize {
        chromatic_number(g).chromatic().expect("budget sufficient")
    }

    #[test]
    fn standard_chromatic_numbers() {
        assert_eq!(chi(&complete_graph(5)), 5);
        assert_eq!(chi(&cycle_graph(6)), 2);
        assert_eq!(chi(&cycle_graph(7)), 3);
        assert_eq!(chi(&complete_bipartite(3, 4)), 2);
        assert_eq!(chi(&UGraph::new(4)), 1);
        assert_eq!(chi(&UGraph::new(0)), 0);
    }

    #[test]
    fn coloring_witness_is_proper_and_tight() {
        let g = cycle_graph(9);
        match chromatic_number(&g) {
            ExactResult::Optimal {
                chromatic,
                coloring,
            } => {
                assert_eq!(chromatic, 3);
                assert!(is_proper(&g, &coloring));
                let used = coloring.iter().copied().max().unwrap() + 1;
                assert_eq!(used, 3);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn petersen_graph_is_3_chromatic() {
        // Outer C5 0–4, inner pentagram 5–9, spokes i — i+5.
        let mut g = UGraph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, i + 5);
        }
        assert_eq!(chi(&g), 3);
    }

    #[test]
    fn havet_conflict_graph_is_3_chromatic() {
        // Figure 9: C8 plus antipodal chords.
        let mut g = cycle_graph(8);
        for i in 0..4 {
            g.add_edge(i, i + 4);
        }
        assert_eq!(chi(&g), 3);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn wheel_graphs() {
        // Odd wheel W5 (C5 + hub): chromatic 4; even wheel W6: 3.
        let mut w5 = cycle_graph(5);
        let mut adj: Vec<Vec<u32>> = (0..6).map(|_| Vec::new()).collect();
        for v in 0..5 {
            for &w in w5.neighbors(v) {
                adj[v].push(w);
            }
        }
        let mut g = UGraph::new(6);
        for v in 0..5 {
            for &w in &adj[v] {
                g.add_edge(v, w as usize);
            }
            g.add_edge(v, 5);
        }
        w5 = g;
        assert_eq!(chi(&w5), 4);
    }

    #[test]
    fn budget_exhaustion_reports_bounds() {
        let g = complete_graph(12);
        match chromatic_number_budgeted(&g, 1) {
            ExactResult::Optimal { chromatic, .. } => {
                // Greedy clique == DSATUR here, so it may close instantly.
                assert_eq!(chromatic, 12);
            }
            ExactResult::BudgetExceeded {
                lower,
                upper,
                coloring,
            } => {
                assert!(lower <= upper);
                assert!(is_proper(&g, &coloring));
            }
        }
    }

    #[test]
    fn random_graph_exact_vs_dsatur_bound() {
        // Exact never exceeds the DSATUR upper bound.
        let edges: Vec<(usize, usize)> = (0..14)
            .flat_map(|a| ((a + 1)..14).map(move |b| (a, b)))
            .filter(|&(a, b)| (a * 7 + b * 13) % 3 == 0)
            .collect();
        let g = UGraph::from_edges(14, &edges);
        let exact = chi(&g);
        let ds = crate::dsatur::dsatur_color_count(&g);
        let omega = crate::clique::clique_number(&g);
        assert!(exact <= ds);
        assert!(exact >= omega);
    }
}
