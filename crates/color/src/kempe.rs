//! Kempe-chain component swaps.
//!
//! The recoloring cascade in the Theorem 1 proof (Figure 4) is exactly a
//! Kempe chain: flipping colors α/β on the connected component of a vertex
//! in the subgraph induced by the two color classes. The paper's case
//! analysis (A/B/C) corresponds to: the component flip succeeds (A), the
//! cascade cannot revisit a vertex (B — impossible because the original
//! coloring was proper), or the component reaches the protected vertex (C —
//! only possible across an internal cycle).

use crate::ugraph::UGraph;
use crate::Coloring;

/// The connected component of `start` in the subgraph induced by vertices
/// colored `alpha` or `beta`.
pub fn kempe_component(
    g: &UGraph,
    colors: &Coloring,
    start: usize,
    alpha: usize,
    beta: usize,
) -> Vec<usize> {
    debug_assert!(colors[start] == alpha || colors[start] == beta);
    let n = g.vertex_count();
    let mut in_comp = vec![false; n];
    in_comp[start] = true;
    let mut stack = vec![start];
    let mut comp = vec![start];
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            let w = w as usize;
            if !in_comp[w] && (colors[w] == alpha || colors[w] == beta) {
                in_comp[w] = true;
                comp.push(w);
                stack.push(w);
            }
        }
    }
    comp
}

/// Swap colors `alpha ↔ beta` on the Kempe component of `start`. Preserves
/// properness. Returns the flipped component.
pub fn kempe_swap(
    g: &UGraph,
    colors: &mut Coloring,
    start: usize,
    alpha: usize,
    beta: usize,
) -> Vec<usize> {
    let comp = kempe_component(g, colors, start, alpha, beta);
    for &v in &comp {
        colors[v] = if colors[v] == alpha { beta } else { alpha };
    }
    comp
}

/// Like [`kempe_swap`] but refuses to touch `protected`: if the component
/// contains it, nothing is changed and `Err` carries the component. This is
/// the exact operation the Theorem-1 rebuild performs — case C of the proof
/// corresponds to the `Err`.
pub fn kempe_swap_protected(
    g: &UGraph,
    colors: &mut Coloring,
    start: usize,
    alpha: usize,
    beta: usize,
    protected: usize,
) -> Result<Vec<usize>, Vec<usize>> {
    let comp = kempe_component(g, colors, start, alpha, beta);
    if comp.contains(&protected) {
        return Err(comp);
    }
    for &v in &comp {
        colors[v] = if colors[v] == alpha { beta } else { alpha };
    }
    Ok(comp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{cycle_graph, UGraph};
    use crate::verify::is_proper;

    #[test]
    fn component_on_path() {
        // Path 0-1-2-3 colored a,b,a,c: component of 0 under (a,b) = {0,1,2}.
        let g = UGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let colors = vec![0, 1, 0, 2];
        let mut comp = kempe_component(&g, &colors, 0, 0, 1);
        comp.sort_unstable();
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn swap_preserves_properness() {
        let g = cycle_graph(6);
        let mut colors = vec![0, 1, 0, 1, 0, 1];
        let comp = kempe_swap(&g, &mut colors, 0, 0, 1);
        assert!(is_proper(&g, &colors));
        assert_eq!(comp.len(), 6, "even cycle is one α/β component");
        assert_eq!(colors, vec![1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn swap_local_component_only() {
        // Two disjoint edges colored (0,1): flipping one leaves the other.
        let g = UGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut colors = vec![0, 1, 0, 1];
        kempe_swap(&g, &mut colors, 0, 0, 1);
        assert_eq!(colors, vec![1, 0, 0, 1]);
        assert!(is_proper(&g, &colors));
    }

    #[test]
    fn protected_blocks_swap() {
        let g = cycle_graph(4);
        let mut colors = vec![0, 1, 0, 1];
        let before = colors.clone();
        let res = kempe_swap_protected(&g, &mut colors, 0, 0, 1, 2);
        assert!(res.is_err(), "vertex 2 is in the α/β component of 0");
        assert_eq!(colors, before, "failed swap leaves coloring untouched");
    }

    #[test]
    fn protected_outside_component_allows_swap() {
        let g = UGraph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let mut colors = vec![0, 1, 0, 1, 0];
        let res = kempe_swap_protected(&g, &mut colors, 0, 0, 1, 3);
        assert!(res.is_ok());
        assert_eq!(colors[0], 1);
        assert_eq!(colors[3], 1, "protected untouched");
        assert!(is_proper(&g, &colors));
    }

    #[test]
    fn third_color_is_invisible_to_chain() {
        // Star center colored 2; leaves colored 0/1: component of a leaf
        // under (0,1) never crosses the center.
        let g = UGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let colors = vec![2, 0, 1, 0];
        let comp = kempe_component(&g, &colors, 1, 0, 1);
        assert_eq!(comp, vec![1], "chain blocked by color-2 center");
    }
}
