//! Kempe-chain component swaps.
//!
//! The recoloring cascade in the Theorem 1 proof (Figure 4) is exactly a
//! Kempe chain: flipping colors α/β on the connected component of a vertex
//! in the subgraph induced by the two color classes. The paper's case
//! analysis (A/B/C) corresponds to: the component flip succeeds (A), the
//! cascade cannot revisit a vertex (B — impossible because the original
//! coloring was proper), or the component reaches the protected vertex (C —
//! only possible across an internal cycle).

use crate::ugraph::UGraph;
use crate::Coloring;

/// The connected component of `start` in the subgraph induced by vertices
/// colored `alpha` or `beta`.
pub fn kempe_component(
    g: &UGraph,
    colors: &Coloring,
    start: usize,
    alpha: usize,
    beta: usize,
) -> Vec<usize> {
    debug_assert!(colors[start] == alpha || colors[start] == beta);
    let n = g.vertex_count();
    let mut in_comp = vec![false; n];
    in_comp[start] = true;
    let mut stack = vec![start];
    let mut comp = vec![start];
    while let Some(v) = stack.pop() {
        for &w in g.neighbors(v) {
            let w = w as usize;
            if !in_comp[w] && (colors[w] == alpha || colors[w] == beta) {
                in_comp[w] = true;
                comp.push(w);
                stack.push(w);
            }
        }
    }
    comp
}

/// Swap colors `alpha ↔ beta` on the Kempe component of `start`. Preserves
/// properness. Returns the flipped component.
pub fn kempe_swap(
    g: &UGraph,
    colors: &mut Coloring,
    start: usize,
    alpha: usize,
    beta: usize,
) -> Vec<usize> {
    let comp = kempe_component(g, colors, start, alpha, beta);
    for &v in &comp {
        colors[v] = if colors[v] == alpha { beta } else { alpha };
    }
    comp
}

/// Like [`kempe_swap`] but refuses to touch `protected`: if the component
/// contains it, nothing is changed and `Err` carries the component. This is
/// the exact operation the Theorem-1 rebuild performs — case C of the proof
/// corresponds to the `Err`.
pub fn kempe_swap_protected(
    g: &UGraph,
    colors: &mut Coloring,
    start: usize,
    alpha: usize,
    beta: usize,
    protected: usize,
) -> Result<Vec<usize>, Vec<usize>> {
    let comp = kempe_component(g, colors, start, alpha, beta);
    if comp.contains(&protected) {
        return Err(comp);
    }
    for &v in &comp {
        colors[v] = if colors[v] == alpha { beta } else { alpha };
    }
    Ok(comp)
}

/// Deterministic Kempe-chain palette reduction.
///
/// Starting from any proper coloring, repeatedly attack the highest color
/// class: each of its vertices is moved to a smaller color either directly
/// (when some smaller color is absent from its neighborhood) or by a
/// [`kempe_swap`] that strictly shrinks the class. When the top class
/// empties, the palette has lost one color and the next class becomes the
/// target; when no move makes progress the coloring is returned as-is.
///
/// Every step preserves properness, the scan order is fixed (ascending
/// vertex id, ascending target color), and each accepted move strictly
/// shrinks the current top class, so the procedure is deterministic and
/// terminates. This is the refinement stage of the `KempeGreedy` solver
/// backend in `dagwave-core`.
pub fn kempe_reduce(g: &UGraph, mut colors: Coloring) -> Coloring {
    loop {
        let Some(k) = colors.iter().copied().max().filter(|&k| k > 0) else {
            return colors;
        };
        let mut progress = true;
        while progress && colors.contains(&k) {
            progress = false;
            for v in 0..g.vertex_count() {
                if colors[v] != k {
                    continue;
                }
                // Direct move: a smaller color missing from the neighborhood.
                let mut used = vec![false; k];
                for &w in g.neighbors(v) {
                    let c = colors[w as usize];
                    if c < k {
                        used[c] = true;
                    }
                }
                if let Some(beta) = used.iter().position(|&u| !u) {
                    colors[v] = beta;
                    progress = true;
                    continue;
                }
                // Kempe swap accepted only when it strictly shrinks class k
                // (more k-vertices than beta-vertices in the component).
                for beta in 0..k {
                    let comp = kempe_component(g, &colors, v, k, beta);
                    let k_count = comp.iter().filter(|&&u| colors[u] == k).count();
                    if comp.len() - k_count < k_count {
                        for &u in &comp {
                            colors[u] = if colors[u] == k { beta } else { k };
                        }
                        progress = true;
                        break;
                    }
                }
            }
        }
        if colors.contains(&k) {
            return colors; // top class resisted — no further reduction
        }
        // Class k emptied; the palette shrank by one. Attack the next class.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_graph, cycle_graph, UGraph};
    use crate::verify::is_proper;

    #[test]
    fn component_on_path() {
        // Path 0-1-2-3 colored a,b,a,c: component of 0 under (a,b) = {0,1,2}.
        let g = UGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let colors = vec![0, 1, 0, 2];
        let mut comp = kempe_component(&g, &colors, 0, 0, 1);
        comp.sort_unstable();
        assert_eq!(comp, vec![0, 1, 2]);
    }

    #[test]
    fn swap_preserves_properness() {
        let g = cycle_graph(6);
        let mut colors = vec![0, 1, 0, 1, 0, 1];
        let comp = kempe_swap(&g, &mut colors, 0, 0, 1);
        assert!(is_proper(&g, &colors));
        assert_eq!(comp.len(), 6, "even cycle is one α/β component");
        assert_eq!(colors, vec![1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn swap_local_component_only() {
        // Two disjoint edges colored (0,1): flipping one leaves the other.
        let g = UGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut colors = vec![0, 1, 0, 1];
        kempe_swap(&g, &mut colors, 0, 0, 1);
        assert_eq!(colors, vec![1, 0, 0, 1]);
        assert!(is_proper(&g, &colors));
    }

    #[test]
    fn protected_blocks_swap() {
        let g = cycle_graph(4);
        let mut colors = vec![0, 1, 0, 1];
        let before = colors.clone();
        let res = kempe_swap_protected(&g, &mut colors, 0, 0, 1, 2);
        assert!(res.is_err(), "vertex 2 is in the α/β component of 0");
        assert_eq!(colors, before, "failed swap leaves coloring untouched");
    }

    #[test]
    fn protected_outside_component_allows_swap() {
        let g = UGraph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]);
        let mut colors = vec![0, 1, 0, 1, 0];
        let res = kempe_swap_protected(&g, &mut colors, 0, 0, 1, 3);
        assert!(res.is_ok());
        assert_eq!(colors[0], 1);
        assert_eq!(colors[3], 1, "protected untouched");
        assert!(is_proper(&g, &colors));
    }

    #[test]
    fn reduce_uses_swaps_where_direct_moves_are_blocked() {
        // u and v (color 2) each see colors 0 and 1, so no direct move
        // applies; the (2,0)-component {u, w, v} has two 2-vertices and one
        // 0-vertex, so the swap shrinks class 2 and the coloring collapses
        // to the bipartite optimum.
        let g = UGraph::from_edges(5, &[(0, 2), (1, 2), (0, 3), (1, 4)]);
        let colors = vec![2, 2, 0, 1, 1]; // u=0, v=1, w=2, x=3, y=4
        assert!(is_proper(&g, &colors));
        let reduced = kempe_reduce(&g, colors);
        assert!(is_proper(&g, &reduced));
        assert_eq!(crate::color_count(&reduced), 2);
    }

    #[test]
    fn reduce_never_worsens_and_stays_proper() {
        for n in 3..9 {
            let g = cycle_graph(n);
            let before = crate::greedy::greedy_coloring(&g, crate::greedy::Order::Natural);
            let reduced = kempe_reduce(&g, before.clone());
            assert!(is_proper(&g, &reduced), "C{n}");
            assert!(crate::color_count(&reduced) <= crate::color_count(&before));
        }
    }

    #[test]
    fn reduce_leaves_clique_alone() {
        let g = complete_graph(5);
        let colors = vec![0, 1, 2, 3, 4];
        assert_eq!(kempe_reduce(&g, colors.clone()), colors);
    }

    #[test]
    fn reduce_handles_trivial_inputs() {
        let g = UGraph::new(0);
        assert!(kempe_reduce(&g, vec![]).is_empty());
        let g1 = UGraph::new(3);
        assert_eq!(kempe_reduce(&g1, vec![0, 0, 0]), vec![0, 0, 0]);
    }

    #[test]
    fn third_color_is_invisible_to_chain() {
        // Star center colored 2; leaves colored 0/1: component of a leaf
        // under (0,1) never crosses the center.
        let g = UGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let colors = vec![2, 0, 1, 0];
        let comp = kempe_component(&g, &colors, 1, 0, 1);
        assert_eq!(comp, vec![1], "chain blocked by color-2 center");
    }
}
