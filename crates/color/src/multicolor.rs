//! Weighted coloring (multicoloring) by independent-set covering.
//!
//! A family that replicates each dipath `h` times (Theorem 7) induces a
//! *blow-up* of the base conflict graph: each base vertex `v` must receive
//! `weight(v)` distinct colors and adjacent vertices' color sets must be
//! disjoint. Each color class is an independent set of the base graph, so
//! minimizing colors is covering the weight vector by independent sets —
//! the LP relaxation of which is the fractional chromatic number (`8/3` for
//! the Wagner graph, whence the paper's `⌈8h/3⌉`).
//!
//! The greedy solver below repeatedly assigns one fresh color to a
//! maximum-*remaining-weight* independent set. On vertex-transitive
//! paper-scale graphs it finds the rotational covering and matches the
//! optimum; tests verify `⌈8h/3⌉` on the Havet conflict graph exactly.

use crate::ugraph::UGraph;
use dagwave_graph::BitSet;

/// Result of a multicoloring: per-vertex color lists plus the total count.
#[derive(Clone, Debug)]
pub struct Multicoloring {
    /// `colors[v]` — the `weight(v)` colors assigned to base vertex `v`.
    pub colors: Vec<Vec<usize>>,
    /// Total number of distinct colors used.
    pub total: usize,
}

impl Multicoloring {
    /// Validate: correct multiplicities, disjoint sets across edges.
    pub fn is_valid(&self, g: &UGraph, weights: &[usize]) -> bool {
        if self.colors.len() != g.vertex_count() {
            return false;
        }
        for (v, cs) in self.colors.iter().enumerate() {
            if cs.len() != weights[v] {
                return false;
            }
            let set: std::collections::HashSet<_> = cs.iter().collect();
            if set.len() != cs.len() {
                return false;
            }
        }
        for (a, b) in g.edge_list() {
            let sb: std::collections::HashSet<_> = self.colors[b].iter().collect();
            if self.colors[a].iter().any(|c| sb.contains(c)) {
                return false;
            }
        }
        true
    }
}

/// Greedy multicoloring by maximum-weight independent sets.
///
/// Exponential in the base graph size (exact max-weight IS per round); use
/// on paper-scale base graphs (≲ 40 vertices).
pub fn greedy_multicoloring(g: &UGraph, weights: &[usize]) -> Multicoloring {
    let n = g.vertex_count();
    assert_eq!(weights.len(), n);
    let mut remaining = weights.to_vec();
    let mut colors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut next_color = 0usize;
    while remaining.iter().any(|&w| w > 0) {
        let set = max_weight_independent_set(g, &remaining);
        debug_assert!(!set.is_empty());
        for &v in &set {
            colors[v].push(next_color);
            remaining[v] -= 1;
        }
        next_color += 1;
    }
    Multicoloring {
        colors,
        total: next_color,
    }
}

/// Exact multicoloring by branch and bound over *maximal* independent sets.
///
/// Searches assignments "use maximal IS `S` as a color class" with a
/// cover-the-heaviest-vertex branching rule and an LP-style lower bound.
/// Complete for paper-scale base graphs (≲ 20 vertices, weights ≲ 16);
/// falls back to [`greedy_multicoloring`]'s answer as the incumbent.
pub fn exact_multicoloring(g: &UGraph, weights: &[usize]) -> Multicoloring {
    let n = g.vertex_count();
    assert_eq!(weights.len(), n);
    let greedy = greedy_multicoloring(g, weights);
    if greedy.total <= 1 {
        return greedy;
    }
    let maximal_sets = all_maximal_independent_sets(g);
    // Counts per set, reconstructed into classes at the end.
    let mut best_counts: Option<Vec<usize>> = None;
    let mut best_total = greedy.total;
    let mut counts = vec![0usize; maximal_sets.len()];
    let mut remaining = weights.to_vec();
    cover_branch(
        &maximal_sets,
        &mut remaining,
        &mut counts,
        0,
        &mut best_total,
        &mut best_counts,
    );
    let Some(best_counts) = best_counts else {
        return greedy; // greedy was already optimal
    };
    // Materialize colors.
    let mut colors: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut need = weights.to_vec();
    let mut next_color = 0usize;
    for (si, &c) in best_counts.iter().enumerate() {
        for _ in 0..c {
            let mut used = false;
            for &v in &maximal_sets[si] {
                if need[v] > 0 {
                    colors[v].push(next_color);
                    need[v] -= 1;
                    used = true;
                }
            }
            if used {
                next_color += 1;
            }
        }
    }
    debug_assert!(need.iter().all(|&w| w == 0));
    Multicoloring {
        colors,
        total: next_color,
    }
}

fn cover_branch(
    sets: &[Vec<usize>],
    remaining: &mut [usize],
    counts: &mut [usize],
    used: usize,
    best_total: &mut usize,
    best_counts: &mut Option<Vec<usize>>,
) {
    // Lower bounds: heaviest remaining vertex (each class covers it ≤ once)
    // and total remaining weight over the largest class size.
    let (vmax, wmax) = remaining
        .iter()
        .enumerate()
        .max_by_key(|&(_, &w)| w)
        .map(|(v, &w)| (v, w))
        .unwrap_or((0, 0));
    if wmax == 0 {
        if used < *best_total {
            *best_total = used;
            *best_counts = Some(counts.to_vec());
        }
        return;
    }
    let total: usize = remaining.iter().sum();
    let alpha = sets.iter().map(|s| s.len()).max().unwrap_or(1);
    let lb = wmax.max(total.div_ceil(alpha));
    if used + lb >= *best_total {
        return;
    }
    // Branch: which maximal set covers one unit of vmax next.
    for (si, set) in sets.iter().enumerate() {
        if !set.contains(&vmax) {
            continue;
        }
        counts[si] += 1;
        let mut touched = Vec::new();
        for &v in set {
            if remaining[v] > 0 {
                remaining[v] -= 1;
                touched.push(v);
            }
        }
        cover_branch(sets, remaining, counts, used + 1, best_total, best_counts);
        for v in touched {
            remaining[v] += 1;
        }
        counts[si] -= 1;
    }
}

/// All maximal independent sets (Bron–Kerbosch on the complement's cliques,
/// done directly on independence).
pub fn all_maximal_independent_sets(g: &UGraph) -> Vec<Vec<usize>> {
    let n = g.vertex_count();
    let non_neigh: Vec<BitSet> = (0..n)
        .map(|v| {
            let mut b = BitSet::new(n);
            for w in 0..n {
                if w != v && !g.has_edge(v, w) {
                    b.insert(w);
                }
            }
            b
        })
        .collect();
    let mut results = Vec::new();
    let mut r = Vec::new();
    let mut p = BitSet::new(n);
    for v in 0..n {
        p.insert(v);
    }
    let x = BitSet::new(n);
    bk_all(&non_neigh, &mut r, p, x, &mut results);
    results
}

fn bk_all(
    non_neigh: &[BitSet],
    r: &mut Vec<usize>,
    p: BitSet,
    x: BitSet,
    out: &mut Vec<Vec<usize>>,
) {
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return;
    }
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| {
            let mut t = p.clone();
            t.intersect_with(&non_neigh[u]);
            t.count()
        })
        .expect("P ∪ X non-empty"); // lint: allow(no-panic): the caller only recurses with P ∪ X non-empty, so a candidate exists
    let mut candidates = p.clone();
    candidates.difference_with(&non_neigh[pivot]);
    let mut p = p;
    let mut x = x;
    for v in candidates.iter().collect::<Vec<_>>() {
        let mut p2 = p.clone();
        p2.intersect_with(&non_neigh[v]);
        let mut x2 = x.clone();
        x2.intersect_with(&non_neigh[v]);
        r.push(v);
        bk_all(non_neigh, r, p2, x2, out);
        r.pop();
        p.remove(v);
        x.insert(v);
    }
}

/// Exact maximum-weight independent set (branch and bound over vertices in
/// decreasing weight order). Vertices with zero weight are excluded.
pub fn max_weight_independent_set(g: &UGraph, weights: &[usize]) -> Vec<usize> {
    let n = g.vertex_count();
    let mut order: Vec<usize> = (0..n).filter(|&v| weights[v] > 0).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(weights[v]));
    let neigh: Vec<BitSet> = (0..n)
        .map(|v| {
            let mut b = BitSet::new(n);
            for &w in g.neighbors(v) {
                b.insert(w as usize);
            }
            b
        })
        .collect();
    let mut best: Vec<usize> = Vec::new();
    let mut best_weight = 0usize;
    let mut current: Vec<usize> = Vec::new();
    branch(
        g,
        weights,
        &neigh,
        &order,
        0,
        0,
        &mut BitSet::new(n),
        &mut current,
        &mut best,
        &mut best_weight,
    );
    best
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn branch(
    g: &UGraph,
    weights: &[usize],
    neigh: &[BitSet],
    order: &[usize],
    idx: usize,
    cur_weight: usize,
    blocked: &mut BitSet,
    current: &mut Vec<usize>,
    best: &mut Vec<usize>,
    best_weight: &mut usize,
) {
    // Upper bound: current + everything not yet decided.
    let rest: usize = order[idx..]
        .iter()
        .filter(|&&v| !blocked.contains(v))
        .map(|&v| weights[v])
        .sum();
    if cur_weight + rest <= *best_weight {
        return;
    }
    let Some(&v) = order.get(idx) else {
        if cur_weight > *best_weight {
            *best_weight = cur_weight;
            *best = current.clone();
        }
        return;
    };
    if blocked.contains(v) {
        branch(
            g,
            weights,
            neigh,
            order,
            idx + 1,
            cur_weight,
            blocked,
            current,
            best,
            best_weight,
        );
        return;
    }
    // Include v.
    let newly: Vec<usize> = neigh[v].iter().filter(|&w| !blocked.contains(w)).collect();
    blocked.insert(v);
    for &w in &newly {
        blocked.insert(w);
    }
    current.push(v);
    branch(
        g,
        weights,
        neigh,
        order,
        idx + 1,
        cur_weight + weights[v],
        blocked,
        current,
        best,
        best_weight,
    );
    current.pop();
    for &w in &newly {
        blocked.remove(w);
    }
    // Exclude v (leave it blocked through this subtree, then restore).
    branch(
        g,
        weights,
        neigh,
        order,
        idx + 1,
        cur_weight,
        blocked,
        current,
        best,
        best_weight,
    );
    blocked.remove(v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_graph, cycle_graph, UGraph};

    fn wagner() -> UGraph {
        let mut g = cycle_graph(8);
        for i in 0..4 {
            g.add_edge(i, i + 4);
        }
        g
    }

    #[test]
    fn max_weight_is_on_small_graphs() {
        let g = cycle_graph(5);
        let is = max_weight_independent_set(&g, &[1, 1, 1, 1, 1]);
        assert_eq!(is.len(), 2, "α(C5) = 2");
        let weighted = max_weight_independent_set(&g, &[10, 1, 1, 1, 1]);
        assert!(weighted.contains(&0), "heavy vertex selected");
        let k = complete_graph(4);
        assert_eq!(max_weight_independent_set(&k, &[1, 5, 2, 3]), vec![1]);
    }

    #[test]
    fn zero_weights_excluded() {
        let g = cycle_graph(4);
        let is = max_weight_independent_set(&g, &[0, 3, 0, 3]);
        let mut sorted = is.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 3]);
    }

    #[test]
    fn multicoloring_uniform_clique() {
        // K3 with weight h: needs exactly 3h colors.
        let g = complete_graph(3);
        for h in 1..5 {
            let mc = exact_multicoloring(&g, &[h, h, h]);
            assert!(mc.is_valid(&g, &[h, h, h]));
            assert_eq!(mc.total, 3 * h);
        }
    }

    #[test]
    fn multicoloring_bipartite_is_weightmax() {
        // Path a-b: total = w(a) + w(b)? No — a path P2's optimum is
        // w(a)+w(b) only when adjacent; here total = max over edges of the
        // sum; for a single edge: w(a)+w(b).
        let g = UGraph::from_edges(2, &[(0, 1)]);
        let mc = exact_multicoloring(&g, &[3, 2]);
        assert!(mc.is_valid(&g, &[3, 2]));
        assert_eq!(mc.total, 5);
    }

    #[test]
    fn havet_blowup_matches_paper_formula() {
        // Wagner graph with uniform weight h: optimum ⌈8h/3⌉ (Theorem 7).
        let g = wagner();
        for h in 1..=6 {
            let w = vec![h; 8];
            let mc = exact_multicoloring(&g, &w);
            assert!(mc.is_valid(&g, &w), "h={h}");
            let expected = (8 * h).div_ceil(3);
            assert_eq!(
                mc.total, expected,
                "h={h}: {} vs ⌈8h/3⌉={expected}",
                mc.total
            );
        }
    }

    #[test]
    fn odd_cycle_blowup() {
        // C5 with weight h: fractional chromatic 5/2 ⇒ optimum ⌈5h/2⌉ —
        // the paper's pre-Theorem-7 remark about the C5 family.
        let g = cycle_graph(5);
        for h in 1..=6 {
            let w = vec![h; 5];
            let mc = exact_multicoloring(&g, &w);
            assert!(mc.is_valid(&g, &w));
            assert_eq!(mc.total, (5 * h).div_ceil(2), "h={h}");
        }
    }

    #[test]
    fn empty_and_trivial() {
        let g = UGraph::new(3);
        let mc = greedy_multicoloring(&g, &[0, 0, 0]);
        assert_eq!(mc.total, 0);
        let mc = greedy_multicoloring(&g, &[2, 1, 0]);
        assert!(mc.is_valid(&g, &[2, 1, 0]));
        assert_eq!(mc.total, 2, "independent vertices share colors");
    }
}
