//! Greedy coloring along a vertex order.
//!
//! The classic first-fit scheme: visit vertices in order, give each the
//! smallest color absent from its already-colored neighbors. Along a
//! smallest-last order this uses at most `degeneracy + 1` colors; it is the
//! cheap baseline that the Theorem-1 optimal algorithm is benchmarked
//! against.

use crate::ugraph::UGraph;
use crate::Coloring;
use dagwave_graph::BitSet;

/// Vertex orders understood by [`greedy_coloring`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Vertex id order.
    Natural,
    /// Decreasing degree (Welsh–Powell).
    LargestFirst,
    /// Smallest-last / degeneracy order.
    SmallestLast,
}

/// Greedy first-fit coloring along the chosen order.
pub fn greedy_coloring(g: &UGraph, order: Order) -> Coloring {
    let seq = match order {
        Order::Natural => (0..g.vertex_count()).collect(),
        Order::LargestFirst => g.largest_first_order(),
        Order::SmallestLast => g.smallest_last_order(),
    };
    greedy_along(g, &seq)
}

/// Greedy first-fit coloring along an explicit vertex sequence (must be a
/// permutation of `0..n`).
pub fn greedy_along(g: &UGraph, seq: &[usize]) -> Coloring {
    let n = g.vertex_count();
    debug_assert_eq!(seq.len(), n, "order must cover every vertex");
    let mut colors = vec![usize::MAX; n];
    // A vertex's color is at most its degree, so max_degree + 1 bounds the
    // palette; the bitset is reused across vertices (perf-book: workhorse
    // collections).
    let mut used = BitSet::new(g.max_degree() + 2);
    for &v in seq {
        used.clear();
        for &w in g.neighbors(v) {
            let c = colors[w as usize];
            if c != usize::MAX {
                used.insert(c);
            }
        }
        colors[v] = used.first_absent().expect("palette large enough"); // lint: allow(no-panic): the palette is sized to max degree + 1, so a color is free
    }
    colors
}

/// Number of colors used by the greedy run (`max + 1` since colors are
/// dense from 0).
pub fn greedy_color_count(g: &UGraph, order: Order) -> usize {
    let coloring = greedy_coloring(g, order);
    coloring.iter().copied().max().map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::{complete_graph, cycle_graph, UGraph};
    use crate::verify::is_proper;

    #[test]
    fn colors_are_proper_on_cycles() {
        for n in 3..10 {
            let g = cycle_graph(n);
            for order in [Order::Natural, Order::LargestFirst, Order::SmallestLast] {
                let c = greedy_coloring(&g, order);
                assert!(is_proper(&g, &c), "order {order:?} on C{n}");
            }
        }
    }

    #[test]
    fn clique_needs_n_colors() {
        let g = complete_graph(5);
        assert_eq!(greedy_color_count(&g, Order::Natural), 5);
        assert_eq!(greedy_color_count(&g, Order::SmallestLast), 5);
    }

    #[test]
    fn even_cycle_two_colors_odd_three() {
        assert_eq!(greedy_color_count(&cycle_graph(6), Order::SmallestLast), 2);
        assert_eq!(greedy_color_count(&cycle_graph(7), Order::SmallestLast), 3);
    }

    #[test]
    fn empty_graph_uses_one_color_per_component_free() {
        let g = UGraph::new(4);
        let c = greedy_coloring(&g, Order::Natural);
        assert_eq!(c, vec![0, 0, 0, 0]);
        assert_eq!(greedy_color_count(&g, Order::Natural), 1);
        let g0 = UGraph::new(0);
        assert_eq!(greedy_color_count(&g0, Order::Natural), 0);
    }

    #[test]
    fn degeneracy_bound_holds() {
        // Greedy along smallest-last uses ≤ degeneracy + 1 colors.
        let g = UGraph::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 3),
                (5, 6),
            ],
        );
        let d = g.degeneracy();
        let used = greedy_color_count(&g, Order::SmallestLast);
        assert!(used <= d + 1, "used {used} > degeneracy {d} + 1");
        assert!(is_proper(&g, &greedy_coloring(&g, Order::SmallestLast)));
    }

    #[test]
    fn explicit_order() {
        let g = cycle_graph(4);
        let c = greedy_along(&g, &[0, 2, 1, 3]);
        assert!(is_proper(&g, &c));
        assert_eq!(c[0], 0);
        assert_eq!(c[2], 0, "antipodal vertex reuses color 0");
    }

    #[test]
    fn crown_graph_natural_order_is_bad() {
        // The crown graph (K_{n,n} minus a perfect matching) with
        // interleaved ids makes natural-order greedy use n colors while the
        // graph is bipartite — the classic greedy pathology; largest-first
        // doesn't fix it but smallest-last stays proper.
        let n = 4;
        let mut g = UGraph::new(2 * n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    g.add_edge(2 * i, 2 * j + 1);
                }
            }
        }
        let natural = greedy_color_count(&g, Order::Natural);
        assert_eq!(natural, n, "pathological order forces n colors");
        assert!(is_proper(&g, &greedy_coloring(&g, Order::Natural)));
    }
}
