//! Proper-coloring validation.

use crate::ugraph::UGraph;
use crate::Coloring;

/// `true` if no edge joins two vertices of the same color and every vertex
/// is colored (`colors[v] != usize::MAX`).
pub fn is_proper(g: &UGraph, colors: &Coloring) -> bool {
    if colors.len() != g.vertex_count() {
        return false;
    }
    if colors.contains(&usize::MAX) {
        return false;
    }
    for (a, ns) in (0..g.vertex_count()).map(|v| (v, g.neighbors(v))) {
        for &b in ns {
            if colors[a] == colors[b as usize] {
                return false;
            }
        }
    }
    true
}

/// The first conflicting edge `(a, b)` under the coloring, if any.
pub fn first_violation(g: &UGraph, colors: &Coloring) -> Option<(usize, usize)> {
    for a in 0..g.vertex_count() {
        for &b in g.neighbors(a) {
            let b = b as usize;
            if a < b && colors.get(a) == colors.get(b) {
                return Some((a, b));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ugraph::cycle_graph;

    #[test]
    fn proper_and_improper() {
        let g = cycle_graph(4);
        assert!(is_proper(&g, &vec![0, 1, 0, 1]));
        assert!(!is_proper(&g, &vec![0, 0, 1, 1]));
        assert_eq!(first_violation(&g, &vec![0, 0, 1, 1]), Some((0, 1)));
        assert_eq!(first_violation(&g, &vec![0, 1, 0, 1]), None);
    }

    #[test]
    fn wrong_length_rejected() {
        let g = cycle_graph(3);
        assert!(!is_proper(&g, &vec![0, 1]));
    }

    #[test]
    fn uncolored_vertex_rejected() {
        let g = cycle_graph(3);
        assert!(!is_proper(&g, &vec![0, 1, usize::MAX]));
    }
}
