//! Shard-local sub-instances for decompose-solve-merge.
//!
//! Wavelength assignment on a disjoint conflict graph decomposes exactly:
//! two dipaths in different connected components share no arc, so coloring
//! each component independently with a shared palette is a proper coloring
//! of the whole family, and the merged span is the maximum over components.
//!
//! A [`SubInstance`] materializes one component as a standalone instance:
//! the member dipaths are remapped into a dense shard-local
//! [`DipathFamily`] (local ids `0..members.len()`), the host digraph is
//! restricted to the vertices and arcs the members actually traverse, and
//! the inverse id map is recorded so shard-local colors can be written back
//! to original [`PathId`]s. Restricting the graph matters beyond size: a
//! shard frequently lands in a friendlier class than the whole instance
//! (e.g. the component never touches the internal cycle that forced the
//! whole DAG into the general class), unlocking the stronger theorem-backed
//! solvers per shard.

use crate::dipath::Dipath;
use crate::family::{DipathFamily, PathId};
use dagwave_graph::{ArcId, Digraph, VertexId};

/// One shard of an instance: a dense local family over a restricted graph,
/// plus the map back to the original ids.
///
/// Built by [`SubInstance::extract`]; local ids follow the order of the
/// member list handed in (ascending original id when the members come from
/// [`crate::conflict::ConflictGraph::components`] /
/// [`crate::conflict::conflict_components`], which keeps the whole
/// decomposition deterministic).
#[derive(Clone, Debug)]
pub struct SubInstance {
    /// The host graph restricted to the vertices/arcs the members use.
    pub graph: Digraph,
    /// The members as a dense shard-local family (`PathId(0)..`).
    pub family: DipathFamily,
    /// `original[local.index()]` = the member's id in the source family.
    original: Vec<PathId>,
}

impl SubInstance {
    /// Extract the sub-instance induced by `members` of `family` over `g`.
    ///
    /// The restricted graph keeps exactly the vertices and arcs traversed
    /// by some member, renumbered densely in ascending original-id order
    /// (so extraction is deterministic). Parallel arcs survive: arcs are
    /// remapped individually by [`ArcId`], not by endpoint pair.
    ///
    /// # Panics
    ///
    /// Panics if a member id is out of bounds for `family`.
    pub fn extract(g: &Digraph, family: &DipathFamily, members: &[PathId]) -> SubInstance {
        // Arcs and vertices used by the shard, in ascending original order.
        let mut used_arcs: Vec<ArcId> = members
            .iter()
            .flat_map(|&id| family.path(id).arcs().iter().copied())
            .collect();
        used_arcs.sort_unstable();
        used_arcs.dedup();
        let mut used_vertices: Vec<VertexId> = used_arcs
            .iter()
            .flat_map(|&a| [g.tail(a), g.head(a)])
            .collect();
        used_vertices.sort_unstable();
        used_vertices.dedup();

        // Renumbering is binary search into the sorted used-lists, so the
        // scratch space and per-shard cost stay proportional to the shard
        // (never the host graph) — extraction of all shards of an instance
        // is near-linear overall, however many components it splits into.
        let new_vertex = |old: VertexId| {
            // lint: allow(no-panic): used_vertices holds every endpoint of the shard by construction
            VertexId(used_vertices.binary_search(&old).expect("used vertex") as u32)
        };
        let new_arc = |old: ArcId| ArcId(used_arcs.binary_search(&old).expect("used arc") as u32); // lint: allow(no-panic): used_arcs holds every arc of the shard by construction
        let mut graph = Digraph::with_vertices(used_vertices.len());
        for (new, &old) in used_arcs.iter().enumerate() {
            let added = graph.add_arc(new_vertex(g.tail(old)), new_vertex(g.head(old)));
            debug_assert_eq!(added.index(), new);
        }

        let family: DipathFamily = members
            .iter()
            .map(|&id| {
                let arcs = family.path(id).arcs().iter().map(|&a| new_arc(a)).collect();
                Dipath::from_arcs(&graph, arcs)
                    // lint: allow(no-panic): index remapping preserves contiguity and simplicity
                    .expect("remapped shard dipath stays contiguous and simple")
            })
            .collect();
        SubInstance {
            graph,
            family,
            original: members.to_vec(),
        }
    }

    /// Number of member dipaths.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// `true` when the shard holds no dipaths.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// The original id of shard-local path `local`.
    pub fn original_id(&self, local: PathId) -> PathId {
        self.original[local.index()]
    }

    /// The inverse map: original ids in shard-local order.
    pub fn original_ids(&self) -> &[PathId] {
        &self.original
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{conflict_components, ConflictGraph};
    use crate::load;
    use dagwave_graph::builder::from_edges;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    /// Two arc-disjoint chains: paths 0/1 on the first, path 2 on the second.
    fn two_component_instance() -> (Digraph, DipathFamily) {
        let g = from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]);
        let f = DipathFamily::from_paths(vec![
            Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
            Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap(),
            Dipath::from_vertices(&g, &[v(4), v(5), v(6)]).unwrap(),
        ]);
        (g, f)
    }

    #[test]
    fn extract_restricts_graph_and_remaps_ids() {
        let (g, f) = two_component_instance();
        let comps = conflict_components(&g, &f);
        assert_eq!(comps.len(), 2);

        let first = SubInstance::extract(&g, &f, &comps[0]);
        assert_eq!(first.len(), 2);
        assert!(!first.is_empty());
        assert_eq!(first.graph.vertex_count(), 4); // vertices 0..=3
        assert_eq!(first.graph.arc_count(), 3);
        assert_eq!(first.original_ids(), &[PathId(0), PathId(1)]);
        assert_eq!(first.original_id(PathId(1)), PathId(1));

        let second = SubInstance::extract(&g, &f, &comps[1]);
        assert_eq!(second.len(), 1);
        assert_eq!(second.graph.vertex_count(), 3); // vertices 4..=6
        assert_eq!(second.graph.arc_count(), 2);
        assert_eq!(second.original_id(PathId(0)), PathId(2));
    }

    #[test]
    fn extraction_preserves_loads_and_conflicts() {
        let (g, f) = two_component_instance();
        for members in conflict_components(&g, &f) {
            let sub = SubInstance::extract(&g, &f, &members);
            // Per-path arc counts survive the remap.
            for (local, p) in sub.family.iter() {
                assert_eq!(p.len(), f.path(sub.original_id(local)).len());
            }
            // Conflict structure inside the shard is untouched.
            let whole = ConflictGraph::build(&g, &f);
            let shard = ConflictGraph::build(&sub.graph, &sub.family);
            for (a, b) in shard.edges() {
                assert!(whole.are_adjacent(sub.original_id(a), sub.original_id(b)));
            }
            // Shard load equals the max load over the shard's own arcs.
            assert!(load::max_load(&sub.graph, &sub.family) <= load::max_load(&g, &f));
        }
    }

    #[test]
    fn parallel_arcs_survive_extraction() {
        // Two parallel arcs 0→1; each path takes a different copy.
        let mut g = Digraph::with_vertices(2);
        let a0 = g.add_arc(v(0), v(1));
        let a1 = g.add_arc(v(0), v(1));
        let f = DipathFamily::from_paths(vec![Dipath::single(a0), Dipath::single(a1)]);
        let sub = SubInstance::extract(&g, &f, &[PathId(0), PathId(1)]);
        assert_eq!(sub.graph.arc_count(), 2, "both parallel copies kept");
        assert_ne!(
            sub.family.path(PathId(0)).arcs(),
            sub.family.path(PathId(1)).arcs(),
            "paths still take distinct copies"
        );
    }

    #[test]
    fn empty_member_list_yields_empty_shard() {
        let (g, f) = two_component_instance();
        let sub = SubInstance::extract(&g, &f, &[]);
        assert!(sub.is_empty());
        assert_eq!(sub.graph.vertex_count(), 0);
        assert_eq!(sub.family.len(), 0);
    }
}
