//! Shard-local sub-instances for decompose-solve-merge.
//!
//! Wavelength assignment on a disjoint conflict graph decomposes exactly:
//! two dipaths in different connected components share no arc, so coloring
//! each component independently with a shared palette is a proper coloring
//! of the whole family, and the merged span is the maximum over components.
//!
//! A [`SubInstance`] materializes one component as a standalone instance:
//! the member dipaths are remapped into a dense shard-local
//! [`DipathFamily`] (local ids `0..members.len()`), the host digraph is
//! restricted to the vertices and arcs the members actually traverse, and
//! the inverse id map is recorded so shard-local colors can be written back
//! to original [`PathId`]s. Restricting the graph matters beyond size: a
//! shard frequently lands in a friendlier class than the whole instance
//! (e.g. the component never touches the internal cycle that forced the
//! whole DAG into the general class), unlocking the stronger theorem-backed
//! solvers per shard.
//!
//! Extraction renumbers through an [`ExtractScratch`]: flat host-indexed
//! arc/vertex tables (CSR-style, one `u32` per host arc/vertex) built once
//! and stamped per shard, so renumbering is an O(1) table read instead of a
//! per-shard binary search, and the member arc sequences are read straight
//! out of the (Arc-shared) family without an intermediate all-occurrences
//! buffer. A long-lived caller (the incremental `Workspace`) keeps one
//! scratch across re-solves, making repeated extraction allocation-free
//! and proportional to the shards actually extracted.

use crate::dipath::Dipath;
use crate::family::{DipathFamily, PathId};
use crate::intern::ArcListArena;
use dagwave_graph::{ArcId, Digraph, VertexId};

/// Reusable renumbering tables for [`SubInstance::extract_with`].
///
/// Holds one `u32` per host arc and per host vertex (grown lazily to the
/// host size on first use, then reused), plus a stamp that invalidates all
/// entries at once — clearing between shards costs O(1), not O(host).
/// The `used_*` buffers keep their capacity across shards, so a warm
/// scratch extracts without allocating anything but the output itself.
#[derive(Clone, Debug, Default)]
pub struct ExtractScratch {
    /// Host arc → shard-local arc id, valid only when the stamp matches.
    arc_new: Vec<u32>,
    arc_stamp: Vec<u32>,
    /// Host vertex → shard-local vertex id, valid only when the stamp matches.
    vert_new: Vec<u32>,
    vert_stamp: Vec<u32>,
    stamp: u32,
    used_arcs: Vec<ArcId>,
    used_vertices: Vec<VertexId>,
    /// Interner for the remapped member sequences: duplicated members
    /// (within one shard or across shards extracted through the same
    /// scratch) share one shard-local arc list instead of re-allocating
    /// it per extraction.
    arena: ArcListArena,
    remap_buf: Vec<ArcId>,
}

impl ExtractScratch {
    /// A fresh scratch; tables grow to the host size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size the tables for `g` and open a new stamp epoch.
    fn begin(&mut self, g: &Digraph) {
        if self.arc_stamp.len() < g.arc_count() {
            self.arc_stamp.resize(g.arc_count(), 0);
            self.arc_new.resize(g.arc_count(), 0);
        }
        if self.vert_stamp.len() < g.vertex_count() {
            self.vert_stamp.resize(g.vertex_count(), 0);
            self.vert_new.resize(g.vertex_count(), 0);
        }
        // One epoch per shard; on (astronomically rare) wraparound, reset
        // the tables so stale epochs can never alias the new one.
        if self.stamp == u32::MAX {
            self.arc_stamp.fill(0);
            self.vert_stamp.fill(0);
            self.stamp = 0;
        }
        self.stamp += 1;
        self.used_arcs.clear();
        self.used_vertices.clear();
    }
}

/// One shard of an instance: a dense local family over a restricted graph,
/// plus the map back to the original ids.
///
/// Built by [`SubInstance::extract`]; local ids follow the order of the
/// member list handed in (ascending original id when the members come from
/// [`crate::conflict::ConflictGraph::components`] /
/// [`crate::conflict::conflict_components`], which keeps the whole
/// decomposition deterministic).
#[derive(Clone, Debug)]
pub struct SubInstance {
    /// The host graph restricted to the vertices/arcs the members use.
    pub graph: Digraph,
    /// The members as a dense shard-local family (`PathId(0)..`).
    pub family: DipathFamily,
    /// `original[local.index()]` = the member's id in the source family.
    original: Vec<PathId>,
}

impl SubInstance {
    /// Extract the sub-instance induced by `members` of `family` over `g`.
    ///
    /// The restricted graph keeps exactly the vertices and arcs traversed
    /// by some member, renumbered densely in ascending original-id order
    /// (so extraction is deterministic). Parallel arcs survive: arcs are
    /// remapped individually by [`ArcId`], not by endpoint pair.
    ///
    /// # Panics
    ///
    /// Panics if a member id is out of bounds for `family`.
    pub fn extract(g: &Digraph, family: &DipathFamily, members: &[PathId]) -> SubInstance {
        Self::extract_with(g, family, members, &mut ExtractScratch::new())
    }

    /// [`SubInstance::extract`] with caller-owned renumbering tables: the
    /// scratch's flat host-indexed maps replace the per-shard binary-search
    /// renumbering, and the `used_*` buffers are reused across shards.
    /// Output is bit-identical to [`SubInstance::extract`] — the used arcs
    /// and vertices are still emitted in ascending original order, so local
    /// ids cannot depend on which scratch (or how warm a scratch) was used.
    pub fn extract_with(
        g: &Digraph,
        family: &DipathFamily,
        members: &[PathId],
        scratch: &mut ExtractScratch,
    ) -> SubInstance {
        scratch.begin(g);
        let stamp = scratch.stamp;
        // Gather the shard's arcs, stamp-deduplicated (each arc is listed
        // once no matter how loaded), then sort the *unique* list — the
        // only per-shard ordering work left.
        for &id in members {
            for &a in family.path(id).arcs() {
                if scratch.arc_stamp[a.index()] != stamp {
                    scratch.arc_stamp[a.index()] = stamp;
                    scratch.used_arcs.push(a);
                }
            }
        }
        scratch.used_arcs.sort_unstable();
        for (new, &a) in scratch.used_arcs.iter().enumerate() {
            scratch.arc_new[a.index()] = new as u32;
        }
        for &a in &scratch.used_arcs {
            for v in [g.tail(a), g.head(a)] {
                if scratch.vert_stamp[v.index()] != stamp {
                    scratch.vert_stamp[v.index()] = stamp;
                    scratch.used_vertices.push(v);
                }
            }
        }
        scratch.used_vertices.sort_unstable();
        for (new, &v) in scratch.used_vertices.iter().enumerate() {
            scratch.vert_new[v.index()] = new as u32;
        }

        let mut graph = Digraph::with_vertices(scratch.used_vertices.len());
        for (new, &old) in scratch.used_arcs.iter().enumerate() {
            let added = graph.add_arc(
                VertexId(scratch.vert_new[g.tail(old).index()]),
                VertexId(scratch.vert_new[g.head(old).index()]),
            );
            debug_assert_eq!(added.index(), new);
        }

        let family: DipathFamily = members
            .iter()
            .map(|&id| {
                scratch.remap_buf.clear();
                scratch.remap_buf.extend(
                    family
                        .path(id)
                        .arcs()
                        .iter()
                        .map(|&a| ArcId(scratch.arc_new[a.index()])),
                );
                // Resolve the remapped sequence through the scratch's arena:
                // a duplicated member costs a lookup, not an allocation.
                let arcs = scratch.arena.intern_slice(&scratch.remap_buf);
                // The remap is monotone on a validated dipath, so contiguity
                // and simplicity carry over; debug builds re-validate inside.
                Dipath::from_list_trusted(&graph, arcs)
            })
            .collect();
        SubInstance {
            graph,
            family,
            original: members.to_vec(),
        }
    }

    /// Number of member dipaths.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// `true` when the shard holds no dipaths.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }

    /// The original id of shard-local path `local`.
    pub fn original_id(&self, local: PathId) -> PathId {
        self.original[local.index()]
    }

    /// The inverse map: original ids in shard-local order.
    pub fn original_ids(&self) -> &[PathId] {
        &self.original
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{conflict_components, ConflictGraph};
    use crate::load;
    use dagwave_graph::builder::from_edges;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    /// Two arc-disjoint chains: paths 0/1 on the first, path 2 on the second.
    fn two_component_instance() -> (Digraph, DipathFamily) {
        let g = from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]);
        let f = DipathFamily::from_paths(vec![
            Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
            Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap(),
            Dipath::from_vertices(&g, &[v(4), v(5), v(6)]).unwrap(),
        ]);
        (g, f)
    }

    #[test]
    fn extract_restricts_graph_and_remaps_ids() {
        let (g, f) = two_component_instance();
        let comps = conflict_components(&g, &f);
        assert_eq!(comps.len(), 2);

        let first = SubInstance::extract(&g, &f, &comps[0]);
        assert_eq!(first.len(), 2);
        assert!(!first.is_empty());
        assert_eq!(first.graph.vertex_count(), 4); // vertices 0..=3
        assert_eq!(first.graph.arc_count(), 3);
        assert_eq!(first.original_ids(), &[PathId(0), PathId(1)]);
        assert_eq!(first.original_id(PathId(1)), PathId(1));

        let second = SubInstance::extract(&g, &f, &comps[1]);
        assert_eq!(second.len(), 1);
        assert_eq!(second.graph.vertex_count(), 3); // vertices 4..=6
        assert_eq!(second.graph.arc_count(), 2);
        assert_eq!(second.original_id(PathId(0)), PathId(2));
    }

    #[test]
    fn extraction_preserves_loads_and_conflicts() {
        let (g, f) = two_component_instance();
        for members in conflict_components(&g, &f) {
            let sub = SubInstance::extract(&g, &f, &members);
            // Per-path arc counts survive the remap.
            for (local, p) in sub.family.iter() {
                assert_eq!(p.len(), f.path(sub.original_id(local)).len());
            }
            // Conflict structure inside the shard is untouched.
            let whole = ConflictGraph::build(&g, &f);
            let shard = ConflictGraph::build(&sub.graph, &sub.family);
            for (a, b) in shard.edges() {
                assert!(whole.are_adjacent(sub.original_id(a), sub.original_id(b)));
            }
            // Shard load equals the max load over the shard's own arcs.
            assert!(load::max_load(&sub.graph, &sub.family) <= load::max_load(&g, &f));
        }
    }

    #[test]
    fn parallel_arcs_survive_extraction() {
        // Two parallel arcs 0→1; each path takes a different copy.
        let mut g = Digraph::with_vertices(2);
        let a0 = g.add_arc(v(0), v(1));
        let a1 = g.add_arc(v(0), v(1));
        let f = DipathFamily::from_paths(vec![Dipath::single(a0), Dipath::single(a1)]);
        let sub = SubInstance::extract(&g, &f, &[PathId(0), PathId(1)]);
        assert_eq!(sub.graph.arc_count(), 2, "both parallel copies kept");
        assert_ne!(
            sub.family.path(PathId(0)).arcs(),
            sub.family.path(PathId(1)).arcs(),
            "paths still take distinct copies"
        );
    }

    #[test]
    fn duplicated_members_share_one_arc_list() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let p = Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap();
        let f = DipathFamily::from_paths(vec![p.clone(), p]);
        let sub = SubInstance::extract(&g, &f, &[PathId(0), PathId(1)]);
        assert!(
            sub.family
                .shared(PathId(0))
                .arc_list()
                .ptr_eq(sub.family.shared(PathId(1)).arc_list()),
            "identical members resolve to one interned allocation"
        );
    }

    #[test]
    fn empty_member_list_yields_empty_shard() {
        let (g, f) = two_component_instance();
        let sub = SubInstance::extract(&g, &f, &[]);
        assert!(sub.is_empty());
        assert_eq!(sub.graph.vertex_count(), 0);
        assert_eq!(sub.family.len(), 0);
    }
}
