//! The conflict graph of a dipath family.
//!
//! Vertices are the dipaths of `P`; two vertices are joined when their
//! dipaths share an arc (paper, Section 2). `w(G, P)` is the chromatic
//! number of this graph, and for UPP-DAGs `π(G, P)` is exactly its clique
//! number (Property 3).
//!
//! Construction uses the arc-bucket algorithm: group dipaths by the arcs
//! they use, then every bucket contributes a clique. Cost is
//! `O(Σ_P Σ_{a∈P} load(a))` — output-sensitive and parallelizable per
//! dipath, which rayon handles.

use crate::dipath::Dipath;
use crate::family::{DipathFamily, PathId};
use dagwave_graph::{ArcId, Digraph, UnionFind};
use rayon::prelude::*;

/// A CSR arc→paths index: for every host arc, the ids of the family
/// members traversing it, ascending. Two flat allocations (offsets +
/// entries) instead of one `Vec` per arc, built in two counting passes —
/// the prebuilt index behind the conflict-graph bucket pass and the
/// shard-extraction surface.
#[derive(Clone, Debug, Default)]
pub struct ArcIndex {
    /// `offsets[a]..offsets[a + 1]` delimits arc `a`'s slice of `ids`.
    offsets: Vec<u32>,
    /// Concatenated member ids, ascending within each arc's slice.
    ids: Vec<u32>,
}

impl ArcIndex {
    /// Build the index of `family` over `g` (counting sort: one pass to
    /// size the rows, one to fill them — `O(arcs + Σ|P|)`).
    pub fn build(g: &Digraph, family: &DipathFamily) -> Self {
        let arcs = g.arc_count();
        let mut offsets = vec![0u32; arcs + 1];
        for (_, p) in family.iter() {
            for &a in p.arcs() {
                offsets[a.index() + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut ids = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        let mut cursor = offsets.clone();
        // Family iteration is ascending by id, so each row fills ascending.
        for (id, p) in family.iter() {
            for &a in p.arcs() {
                ids[cursor[a.index()] as usize] = id.0;
                cursor[a.index()] += 1;
            }
        }
        ArcIndex { offsets, ids }
    }

    /// Number of arcs the index covers.
    pub fn arc_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The ids of the members traversing arc `a`, ascending.
    pub fn paths_through(&self, a: ArcId) -> &[u32] {
        let lo = self.offsets[a.index()] as usize;
        let hi = self.offsets[a.index() + 1] as usize;
        &self.ids[lo..hi]
    }

    /// Total entries (`Σ|P|`).
    pub fn entry_count(&self) -> usize {
        self.ids.len()
    }
}

/// The conflict graph: a simple undirected graph over [`PathId`]s.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    /// Sorted, deduplicated neighbor lists.
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl ConflictGraph {
    /// Build the conflict graph of `family` over `g`.
    pub fn build(g: &Digraph, family: &DipathFamily) -> Self {
        // Bucket pass, served by the CSR index: which dipaths use each arc.
        let index = ArcIndex::build(g, family);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); family.len()];
        for a in 0..index.arc_count() {
            let bucket = index.paths_through(ArcId::from_index(a));
            for (k, &i) in bucket.iter().enumerate() {
                for &j in &bucket[k + 1..] {
                    adj[i as usize].push(j);
                    adj[j as usize].push(i);
                }
            }
        }
        let mut edges = 0;
        for ns in &mut adj {
            ns.sort_unstable();
            ns.dedup();
            edges += ns.len();
        }
        ConflictGraph {
            adj,
            edges: edges / 2,
        }
    }

    /// Rayon-parallel build; same output as [`ConflictGraph::build`].
    ///
    /// Shard-then-merge, in three pool passes with no shared mutable state:
    ///
    /// 1. **Shard pass** — the family's id range is cut into contiguous
    ///    shards, each accumulating a private arc→dipaths bucket table;
    /// 2. **Merge pass** — bucket `a` is the in-order concatenation of the
    ///    shards' buckets for `a` (shards cover increasing id ranges, so
    ///    entries stay sorted by id exactly as the sequential pass emits
    ///    them), parallel over arcs;
    /// 3. **Adjacency pass** — neighbor rows are computed per dipath from
    ///    the merged buckets, parallel over path ids.
    pub fn build_parallel(g: &Digraph, family: &DipathFamily) -> Self {
        let n = family.len();
        let arcs = g.arc_count();
        let Some(bounds) = crate::shard_bounds(n) else {
            return Self::build(g, family);
        };
        let shard_buckets: Vec<Vec<Vec<u32>>> = bounds
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); arcs];
                for idx in lo..hi {
                    let id = PathId::from_index(idx);
                    for &a in family.path(id).arcs() {
                        buckets[a.index()].push(id.0);
                    }
                }
                buckets
            })
            .collect();
        let buckets: Vec<Vec<u32>> = (0..arcs)
            .into_par_iter()
            .map(|a| {
                let mut bucket = Vec::new();
                for shard in &shard_buckets {
                    bucket.extend_from_slice(&shard[a]);
                }
                bucket
            })
            .collect();
        let adj: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|i| {
                let id = PathId::from_index(i);
                let mut neigh: Vec<u32> = family
                    .path(id)
                    .arcs()
                    .iter()
                    .flat_map(|&a| buckets[a.index()].iter().copied())
                    .filter(|&j| j != id.0)
                    .collect();
                neigh.sort_unstable();
                neigh.dedup();
                neigh
            })
            .collect();
        let edges = adj.iter().map(|ns| ns.len()).sum::<usize>() / 2;
        ConflictGraph { adj, edges }
    }

    /// Number of vertices (= dipaths).
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges (= conflicting pairs).
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Sorted neighbor ids of `p`.
    pub fn neighbors(&self, p: PathId) -> &[u32] {
        &self.adj[p.index()]
    }

    /// Degree of `p`.
    pub fn degree(&self, p: PathId) -> usize {
        self.adj[p.index()].len()
    }

    /// `true` if `p` and `q` conflict.
    pub fn are_adjacent(&self, p: PathId, q: PathId) -> bool {
        self.adj[p.index()].binary_search(&q.0).is_ok()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|ns| ns.len()).max().unwrap_or(0)
    }

    /// Iterate over the edges `(i, j)` with `i < j`, in canonical order
    /// (lexicographic by endpoints), without allocating an edge vector.
    pub fn edges(&self) -> impl Iterator<Item = (PathId, PathId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(i, ns)| {
            ns.iter()
                .copied()
                .filter(move |&j| (i as u32) < j)
                .map(move |j| (PathId::from_index(i), PathId(j)))
        })
    }

    /// Edge list `(i, j)` with `i < j` — the allocated form of
    /// [`ConflictGraph::edges`], kept for callers that need a materialized
    /// `Vec`.
    pub fn edge_list(&self) -> Vec<(PathId, PathId)> {
        self.edges().collect()
    }

    /// Connected components of the conflict graph, via union-find over the
    /// adjacency lists: the members of one component are exactly the dipaths
    /// that must share a coloring sub-problem (no edge crosses components,
    /// so disjoint components can be colored with a shared palette).
    ///
    /// Canonical order: members ascend within a component and components
    /// are ordered by their smallest member — the deterministic shard order
    /// the decompose-solve-merge pipeline relies on.
    pub fn components(&self) -> Vec<Vec<PathId>> {
        let mut uf = UnionFind::new(self.adj.len());
        for (a, b) in self.edges() {
            uf.union(a.index(), b.index());
        }
        path_components(uf)
    }
}

/// Map a union-find partition onto [`PathId`] member lists, preserving the
/// canonical order of [`UnionFind::components`].
fn path_components(mut uf: UnionFind) -> Vec<Vec<PathId>> {
    uf.components()
        .into_iter()
        .map(|members| members.into_iter().map(PathId::from_index).collect())
        .collect()
}

/// Connected components of the conflict graph of `family` over `g`,
/// **without building the conflict graph**: dipaths sharing an arc are
/// unioned directly through the arc buckets, so the cost is
/// `O(Σ|P| · α)` instead of the output-sensitive adjacency cost. This is
/// what makes the decompose stage affordable on instances whose conflict
/// graph would be enormous.
///
/// Output is identical to
/// [`ConflictGraph::components`]` of ConflictGraph::build(g, family)`:
/// members ascend within a component, components are ordered by smallest
/// member.
pub fn conflict_components(g: &Digraph, family: &DipathFamily) -> Vec<Vec<PathId>> {
    let mut uf = UnionFind::new(family.len());
    // last_user[a] = most recent dipath seen using arc a; union chains the
    // users of each arc together without materializing the buckets.
    let mut last_user: Vec<u32> = vec![u32::MAX; g.arc_count()];
    for (id, p) in family.iter() {
        for &a in p.arcs() {
            let prev = last_user[a.index()];
            if prev != u32::MAX {
                uf.union(prev as usize, id.index());
            }
            last_user[a.index()] = id.0;
        }
    }
    path_components(uf)
}

/// Connected components among only the given `(id, dipath)` members — the
/// delta half of the decompose stage.
///
/// After a mutation batch, components untouched by any added or removed
/// dipath cannot have changed (conflicts depend only on member arcs), so an
/// incremental engine re-derives components **only over the dirty member
/// pool**, scoped to the arc buckets those members actually use: arcs are
/// tracked in a hash map keyed by [`ArcId`] (never a host-graph-sized
/// table), and the union-find is sized by the pool, so the cost is
/// `O(Σ|P_dirty| · α)` however large the instance around it is.
///
/// Members may arrive in any order and with duplicates (deduplicated by
/// id). The output follows the same canonical order as
/// [`conflict_components`] — members ascend within a component, components
/// are ordered by their smallest member — and, when the pool is a union of
/// whole components of a larger family, it equals the corresponding subset
/// of `conflict_components` on that family.
pub fn conflict_components_among<'a, I>(members: I) -> Vec<Vec<PathId>>
where
    I: IntoIterator<Item = (PathId, &'a Dipath)>,
{
    let mut members: Vec<(PathId, &Dipath)> = members.into_iter().collect();
    members.sort_unstable_by_key(|&(id, _)| id);
    members.dedup_by_key(|&mut (id, _)| id);
    let mut uf = UnionFind::new(members.len());
    // last_user[a] = most recent pool member seen using arc a, as in
    // `conflict_components` — but sparse, touching only dirty buckets.
    let mut last_user: std::collections::HashMap<ArcId, usize> = std::collections::HashMap::new();
    for (k, &(_, p)) in members.iter().enumerate() {
        for &a in p.arcs() {
            if let Some(&prev) = last_user.get(&a) {
                uf.union(prev, k);
            }
            last_user.insert(a, k);
        }
    }
    // The universe *is* the pool (members were renumbered densely above),
    // so the unrestricted canonical grouping applies directly.
    uf.components()
        .into_iter()
        .map(|c| c.into_iter().map(|k| members[k].0).collect())
        .collect()
}

/// The shared-arc structure of two conflicting dipaths.
///
/// For UPP-DAGs the intersection of two conflicting dipaths is a single
/// sub-dipath (Property 3's first step); in general it can be several
/// intervals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Intersection {
    /// Maximal runs of consecutive shared arcs, as `(start, end)` positions
    /// (inclusive, exclusive) in the *first* dipath's arc sequence.
    pub intervals: Vec<(usize, usize)>,
}

impl Intersection {
    /// Compute the intersection structure of `p` with `q`.
    pub fn of(p: &Dipath, q: &Dipath) -> Self {
        let shared: std::collections::HashSet<ArcId> = q.arcs().iter().copied().collect();
        let mut intervals = Vec::new();
        let mut run_start: Option<usize> = None;
        for (i, a) in p.arcs().iter().enumerate() {
            if shared.contains(a) {
                if run_start.is_none() {
                    run_start = Some(i);
                }
            } else if let Some(s) = run_start.take() {
                intervals.push((s, i));
            }
        }
        if let Some(s) = run_start {
            intervals.push((s, p.len()));
        }
        Intersection { intervals }
    }

    /// `true` if the dipaths share no arc.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// `true` if the shared arcs form one contiguous run — guaranteed for
    /// UPP-DAGs by Property 3.
    pub fn is_single_interval(&self) -> bool {
        self.intervals.len() == 1
    }

    /// Total number of shared arcs.
    pub fn shared_arc_count(&self) -> usize {
        self.intervals.iter().map(|&(s, e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dipath::Dipath;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn chain_family() -> (Digraph, DipathFamily) {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut f = DipathFamily::new();
        f.push(Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap()); // p0
        f.push(Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap()); // p1
        f.push(Dipath::from_vertices(&g, &[v(3), v(4)]).unwrap()); // p2
        (g, f)
    }

    #[test]
    fn build_matches_pairwise_conflicts() {
        let (g, f) = chain_family();
        let cg = ConflictGraph::build(&g, &f);
        assert_eq!(cg.vertex_count(), 3);
        // Ground truth from pairwise dipath conflicts.
        let mut expected = 0;
        for (i, p) in f.iter() {
            for (j, q) in f.iter() {
                if i < j && p.conflicts_with(q) {
                    expected += 1;
                    assert!(cg.are_adjacent(i, j));
                }
            }
        }
        assert_eq!(cg.edge_count(), expected);
    }

    #[test]
    fn adjacency_details() {
        let (g, f) = chain_family();
        let cg = ConflictGraph::build(&g, &f);
        assert!(cg.are_adjacent(PathId(0), PathId(1)));
        assert!(!cg.are_adjacent(PathId(0), PathId(2)));
        assert!(
            !cg.are_adjacent(PathId(1), PathId(2)),
            "vertex-meet is no conflict"
        );
        assert_eq!(cg.degree(PathId(0)), 1);
        assert_eq!(cg.neighbors(PathId(1)), &[0]);
        assert_eq!(cg.max_degree(), 1);
    }

    #[test]
    fn parallel_build_matches() {
        let (g, f) = chain_family();
        let big = f.replicate(20);
        let a = ConflictGraph::build(&g, &big);
        let b = ConflictGraph::build_parallel(&g, &big);
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for i in 0..a.vertex_count() {
            assert_eq!(
                a.neighbors(PathId::from_index(i)),
                b.neighbors(PathId::from_index(i))
            );
        }
    }

    #[test]
    fn replicated_identical_dipaths_form_cliques() {
        let (g, f) = chain_family();
        let big = f.replicate(3);
        let cg = ConflictGraph::build(&g, &big);
        // The three copies of p0 (ids 0, 3, 6) are pairwise in conflict.
        for &i in &[0u32, 3, 6] {
            for &j in &[0u32, 3, 6] {
                if i != j {
                    assert!(cg.are_adjacent(PathId(i), PathId(j)));
                }
            }
        }
    }

    #[test]
    fn edge_list_is_canonical() {
        let (g, f) = chain_family();
        let cg = ConflictGraph::build(&g, &f);
        let edges = cg.edge_list();
        assert_eq!(edges.len(), cg.edge_count());
        for (a, b) in &edges {
            assert!(a < b);
            assert!(cg.are_adjacent(*a, *b));
        }
        // The non-allocating iterator yields exactly the allocated list.
        assert_eq!(cg.edges().collect::<Vec<_>>(), edges);
        assert_eq!(cg.edges().count(), cg.edge_count());
    }

    #[test]
    fn empty_family() {
        let g = from_edges(2, &[(0, 1)]);
        let cg = ConflictGraph::build(&g, &DipathFamily::new());
        assert_eq!(cg.vertex_count(), 0);
        assert_eq!(cg.edge_count(), 0);
        assert_eq!(cg.max_degree(), 0);
        assert!(cg.edges().next().is_none());
        assert!(cg.components().is_empty());
        assert!(conflict_components(&g, &DipathFamily::new()).is_empty());
    }

    #[test]
    fn components_of_chain_family() {
        // p0–p1 conflict (share 1→2); p2 is isolated.
        let (g, f) = chain_family();
        let cg = ConflictGraph::build(&g, &f);
        let comps = cg.components();
        assert_eq!(comps, vec![vec![PathId(0), PathId(1)], vec![PathId(2)]]);
        assert_eq!(comps, conflict_components(&g, &f));
    }

    #[test]
    fn components_single_path() {
        let g = from_edges(2, &[(0, 1)]);
        let f = DipathFamily::from_paths(vec![Dipath::from_vertices(&g, &[v(0), v(1)]).unwrap()]);
        let cg = ConflictGraph::build(&g, &f);
        assert_eq!(cg.components(), vec![vec![PathId(0)]]);
        assert_eq!(conflict_components(&g, &f), vec![vec![PathId(0)]]);
    }

    #[test]
    fn components_all_isolated_paths() {
        // Three arc-disjoint dipaths: every path is its own component.
        let g = from_edges(6, &[(0, 1), (2, 3), (4, 5)]);
        let f = DipathFamily::from_paths(vec![
            Dipath::from_vertices(&g, &[v(0), v(1)]).unwrap(),
            Dipath::from_vertices(&g, &[v(2), v(3)]).unwrap(),
            Dipath::from_vertices(&g, &[v(4), v(5)]).unwrap(),
        ]);
        let cg = ConflictGraph::build(&g, &f);
        let comps = cg.components();
        assert_eq!(
            comps,
            vec![vec![PathId(0)], vec![PathId(1)], vec![PathId(2)]]
        );
        assert_eq!(comps, conflict_components(&g, &f));
    }

    #[test]
    fn fast_components_match_graph_components_on_replicated_family() {
        let (g, f) = chain_family();
        let big = f.replicate(7);
        let cg = ConflictGraph::build(&g, &big);
        assert_eq!(cg.components(), conflict_components(&g, &big));
        // Replication keeps every copy in the original's component: copies
        // of p0/p1 share arcs with their originals, copies of p2 with p2.
        assert_eq!(cg.components().len(), 2);
    }

    #[test]
    fn components_among_matches_full_on_whole_components() {
        let (g, f) = chain_family();
        let full = conflict_components(&g, &f);
        // The whole family as a pool reproduces the full decomposition.
        assert_eq!(conflict_components_among(f.iter()), full);
        // A pool made of one whole component yields exactly that component.
        for comp in &full {
            let pool = comp.iter().map(|&id| (id, f.path(id)));
            assert_eq!(conflict_components_among(pool), vec![comp.clone()]);
        }
        // Order-insensitive and duplicate-tolerant.
        let reversed: Vec<_> = f.iter().collect();
        let mut shuffled = reversed.clone();
        shuffled.reverse();
        shuffled.extend(reversed);
        assert_eq!(conflict_components_among(shuffled), full);
        // Empty pool: no components.
        assert!(conflict_components_among(std::iter::empty()).is_empty());
    }

    #[test]
    fn components_among_sees_merges_inside_the_pool() {
        // p0 (0→1→2) and p2 (2→3→4) are disjoint; p1 (1→2→3) bridges them.
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p0 = Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap();
        let p1 = Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap();
        let p2 = Dipath::from_vertices(&g, &[v(2), v(3), v(4)]).unwrap();
        let without = conflict_components_among(vec![(PathId(0), &p0), (PathId(2), &p2)]);
        assert_eq!(without, vec![vec![PathId(0)], vec![PathId(2)]]);
        let with =
            conflict_components_among(vec![(PathId(0), &p0), (PathId(1), &p1), (PathId(2), &p2)]);
        assert_eq!(with, vec![vec![PathId(0), PathId(1), PathId(2)]]);
    }

    #[test]
    fn intersection_single_interval() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = Dipath::from_vertices(&g, &[v(0), v(1), v(2), v(3)]).unwrap();
        let q = Dipath::from_vertices(&g, &[v(1), v(2), v(3), v(4)]).unwrap();
        let ix = Intersection::of(&p, &q);
        assert!(ix.is_single_interval());
        assert_eq!(ix.intervals, vec![(1, 3)]);
        assert_eq!(ix.shared_arc_count(), 2);
    }

    #[test]
    fn intersection_empty() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = Dipath::from_vertices(&g, &[v(0), v(1)]).unwrap();
        let q = Dipath::from_vertices(&g, &[v(2), v(3)]).unwrap();
        let ix = Intersection::of(&p, &q);
        assert!(ix.is_empty());
        assert_eq!(ix.shared_arc_count(), 0);
    }

    #[test]
    fn intersection_two_intervals_in_non_upp_graph() {
        // p and q share arcs 0→1 and 2→3 but not the middle: q detours.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (1, 4), (4, 2), (3, 5)]);
        let p = Dipath::from_vertices(&g, &[v(0), v(1), v(2), v(3)]).unwrap();
        let q = Dipath::from_vertices(&g, &[v(0), v(1), v(4), v(2), v(3), v(5)]).unwrap();
        let ix = Intersection::of(&p, &q);
        assert!(!ix.is_single_interval());
        assert_eq!(ix.intervals.len(), 2);
        assert_eq!(ix.shared_arc_count(), 2);
        // And this graph indeed violates UPP (two dipaths 1 → 2).
        assert!(!dagwave_graph::pathcount::is_upp(&g));
    }
}
