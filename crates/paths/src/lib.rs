//! # dagwave-paths
//!
//! Dipaths, dipath families, arc loads, and conflict graphs — the objects
//! the paper's statements quantify over.
//!
//! * [`Dipath`] — a validated, contiguous arc sequence in a digraph.
//! * [`DipathFamily`] — an indexed family `P` with front-shrink/extend
//!   operations (the Theorem-1 peel/replay needs them).
//! * [`load`] — per-arc load table, `π(G, P)` and its argmax.
//! * [`conflict`] — the conflict graph (vertices = dipaths, edges = pairs
//!   sharing an arc), built over the CSR arc→paths [`ArcIndex`], plus
//!   intersection intervals for the UPP Helly structure and connected
//!   components ([`ConflictGraph::components`], [`conflict_components`]).
//! * [`editable`] — [`PathFamily`], the mutable family with *stable* ids
//!   (removals tombstone their slot, insertions reuse the smallest free
//!   slot) that the incremental re-solve engine edits in place — it keeps
//!   an incrementally-patched dense view plus the stable↔dense id maps, so
//!   dense conversion never deep-clones — plus
//!   [`conflict_components_among`] for recomputing components over only a
//!   dirty member pool.
//! * [`intern`] — [`ArcList`] / [`ArcListArena`]: shared, content-addressed
//!   arc sequences. Every [`Dipath`] stores an `ArcList`; families intern on
//!   insert, so replicated or churned dipaths share one allocation per
//!   distinct sequence and compare by pointer.
//! * [`subinstance`] — [`SubInstance`] extraction: one conflict-graph
//!   component as a standalone instance with a dense local family, a
//!   restricted host graph, and the inverse id map (the decompose half of
//!   decompose-solve-merge). Extraction renumbers through reusable
//!   host-indexed tables ([`ExtractScratch`]) instead of per-shard binary
//!   searches.
//!
//! ```
//! use dagwave_graph::builder::from_edges;
//! use dagwave_graph::VertexId;
//! use dagwave_paths::{Dipath, DipathFamily, load};
//!
//! let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//! let v = |i| VertexId::from_index(i);
//! let mut family = DipathFamily::new();
//! family.push(Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap());
//! family.push(Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap());
//! let pi = load::max_load(&g, &family);
//! assert_eq!(pi, 2); // both dipaths use arc 1→2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod dipath;
pub mod editable;
pub mod error;
pub mod family;
pub mod intern;
pub mod load;
pub mod stats;
pub mod subinstance;

/// Contiguous shard bounds `(lo, hi)` covering `0..n`, one shard per rayon
/// pool slot — the shared scaffolding of the crate's shard-then-merge
/// parallel builders. Returns `None` when a single shard would remain (no
/// parallelism available or nothing to split), signalling the caller to
/// take its sequential path.
pub(crate) fn shard_bounds(n: usize) -> Option<Vec<(usize, usize)>> {
    let shards = rayon::current_num_threads().min(n.max(1));
    if shards <= 1 {
        return None;
    }
    Some(
        (0..shards)
            .map(|s| (s * n / shards, (s + 1) * n / shards))
            .collect(),
    )
}

pub use conflict::{conflict_components, conflict_components_among, ArcIndex, ConflictGraph};
pub use dipath::Dipath;
pub use editable::PathFamily;
pub use error::PathError;
pub use family::{DipathFamily, PathId};
pub use intern::{ArcList, ArcListArena, ArenaStats};
pub use subinstance::{ExtractScratch, SubInstance};
