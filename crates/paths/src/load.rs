//! Arc loads and `π(G, P)`.
//!
//! The load of an arc is the number of family members containing it; the
//! load of the instance, `π(G, P)`, is the maximum over arcs (paper,
//! Section 2). `π` is the universal lower bound on the number of wavelengths
//! — the whole paper is about when the bound is attained.

use crate::family::{DipathFamily, PathId};
use dagwave_graph::{ArcId, Digraph};
use rayon::prelude::*;

/// Per-arc load table, indexed by arc id.
pub fn load_table(g: &Digraph, family: &DipathFamily) -> Vec<usize> {
    let mut table = vec![0usize; g.arc_count()];
    for (_, p) in family.iter() {
        for &a in p.arcs() {
            table[a.index()] += 1;
        }
    }
    table
}

/// Rayon-parallel load table, shard-then-merge: the family's id range is cut
/// into one contiguous shard per pool slot, every shard accumulates a private
/// partial table (no shared writes, no atomics), and the partials are merged
/// in shard order. Identical output to [`load_table`] — `usize` addition is
/// associative and commutative, and the merge order is fixed — and
/// preferable when `Σ|P|` is large.
pub fn load_table_parallel(g: &Digraph, family: &DipathFamily) -> Vec<usize> {
    let n = g.arc_count();
    let Some(bounds) = crate::shard_bounds(family.len()) else {
        return load_table(g, family);
    };
    let partials: Vec<Vec<usize>> = bounds
        .into_par_iter()
        .map(|(lo, hi)| {
            let mut acc = vec![0usize; n];
            for idx in lo..hi {
                for &a in family.path(PathId::from_index(idx)).arcs() {
                    acc[a.index()] += 1;
                }
            }
            acc
        })
        .collect();
    let mut table = vec![0usize; n];
    for partial in partials {
        for (total, part) in table.iter_mut().zip(partial) {
            *total += part;
        }
    }
    table
}

/// The load of a single arc.
pub fn arc_load(family: &DipathFamily, a: ArcId) -> usize {
    family.iter().filter(|(_, p)| p.contains_arc(a)).count()
}

/// `π(G, P)`: the maximum arc load (0 for an empty family or arcless graph).
pub fn max_load(g: &Digraph, family: &DipathFamily) -> usize {
    load_table(g, family).into_iter().max().unwrap_or(0)
}

/// `π` together with one arc attaining it, or `None` if there are no arcs
/// or no dipaths.
pub fn max_load_arc(g: &Digraph, family: &DipathFamily) -> Option<(ArcId, usize)> {
    load_table(g, family)
        .into_iter()
        .enumerate()
        .max_by_key(|&(_, l)| l)
        .filter(|&(_, l)| l > 0)
        .map(|(i, l)| (ArcId::from_index(i), l))
}

/// Among a restricted arc set, the arc of maximum load (Theorem 6 picks the
/// max-load arc *on the internal cycle*).
pub fn max_load_arc_among(
    family: &DipathFamily,
    table: &[usize],
    candidates: impl IntoIterator<Item = ArcId>,
) -> Option<(ArcId, usize)> {
    let _ = family;
    candidates
        .into_iter()
        .map(|a| (a, table[a.index()]))
        .max_by_key(|&(_, l)| l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dipath::Dipath;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn overlapping_family() -> (Digraph, DipathFamily) {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut f = DipathFamily::new();
        f.push(Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap());
        f.push(Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap());
        f.push(Dipath::from_vertices(&g, &[v(1), v(2)]).unwrap());
        (g, f)
    }

    #[test]
    fn table_counts_membership() {
        let (g, f) = overlapping_family();
        let t = load_table(&g, &f);
        let a01 = g.find_arc(v(0), v(1)).unwrap();
        let a12 = g.find_arc(v(1), v(2)).unwrap();
        let a23 = g.find_arc(v(2), v(3)).unwrap();
        let a34 = g.find_arc(v(3), v(4)).unwrap();
        assert_eq!(t[a01.index()], 1);
        assert_eq!(t[a12.index()], 3);
        assert_eq!(t[a23.index()], 1);
        assert_eq!(t[a34.index()], 0);
    }

    #[test]
    fn max_load_and_witness() {
        let (g, f) = overlapping_family();
        assert_eq!(max_load(&g, &f), 3);
        let (arc, l) = max_load_arc(&g, &f).unwrap();
        assert_eq!(l, 3);
        assert_eq!(g.tail(arc), v(1));
        assert_eq!(arc_load(&f, arc), 3);
    }

    #[test]
    fn parallel_table_matches_sequential() {
        let (g, f) = overlapping_family();
        let big = f.replicate(37);
        assert_eq!(load_table(&g, &big), load_table_parallel(&g, &big));
        assert_eq!(max_load(&g, &big), 3 * 37);
    }

    #[test]
    fn empty_cases() {
        let g = from_edges(2, &[(0, 1)]);
        let f = DipathFamily::new();
        assert_eq!(max_load(&g, &f), 0);
        assert_eq!(max_load_arc(&g, &f), None);
        let g0 = Digraph::new();
        assert_eq!(max_load(&g0, &f), 0);
    }

    #[test]
    fn restricted_argmax() {
        let (g, f) = overlapping_family();
        let t = load_table(&g, &f);
        let a01 = g.find_arc(v(0), v(1)).unwrap();
        let a23 = g.find_arc(v(2), v(3)).unwrap();
        let (best, l) = max_load_arc_among(&f, &t, [a01, a23]).unwrap();
        assert_eq!(l, 1);
        assert!(best == a01 || best == a23);
        assert_eq!(max_load_arc_among(&f, &t, std::iter::empty()), None);
    }

    #[test]
    fn load_is_pi_lower_bound_sanity() {
        // π ≤ w always: here the three 1→2 users force at least π = 3
        // wavelengths; the conflict graph is K3 so w = 3 exactly.
        let (g, f) = overlapping_family();
        let pi = max_load(&g, &f);
        assert_eq!(pi, 3);
        // All pairs conflict on arc 1→2.
        for (i, p) in f.iter() {
            for (j, q) in f.iter() {
                if i != j {
                    assert!(p.conflicts_with(q));
                }
            }
        }
    }
}
