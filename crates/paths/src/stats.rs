//! Instance statistics: load and length distributions.
//!
//! The benchmark harness reports these alongside timings so EXPERIMENTS.md
//! can characterize the workloads (how concentrated the load is, how long
//! dipaths are) rather than only quoting `π`.

use crate::family::DipathFamily;
use crate::load;
use dagwave_graph::Digraph;

/// Summary statistics of a dipath-family instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstanceStats {
    /// Number of dipaths.
    pub paths: usize,
    /// Number of arcs in the digraph.
    pub arcs: usize,
    /// Maximum arc load `π`.
    pub max_load: usize,
    /// Number of arcs attaining `π`.
    pub argmax_arcs: usize,
    /// Number of arcs with load 0.
    pub idle_arcs: usize,
    /// Total arc traversals `Σ|P|`.
    pub total_traversals: usize,
    /// Shortest dipath length.
    pub min_len: usize,
    /// Longest dipath length.
    pub max_len: usize,
    /// Histogram of loads: `load_histogram[l]` = number of arcs with load `l`.
    pub load_histogram: Vec<usize>,
}

impl InstanceStats {
    /// Compute the statistics of `(g, family)`.
    pub fn compute(g: &Digraph, family: &DipathFamily) -> Self {
        let table = load::load_table(g, family);
        let max_load = table.iter().copied().max().unwrap_or(0);
        let mut load_histogram = vec![0usize; max_load + 1];
        for &l in &table {
            load_histogram[l] += 1;
        }
        let lens: Vec<usize> = family.iter().map(|(_, p)| p.len()).collect();
        InstanceStats {
            paths: family.len(),
            arcs: g.arc_count(),
            max_load,
            argmax_arcs: table
                .iter()
                .filter(|&&l| l == max_load && max_load > 0)
                .count(),
            idle_arcs: table.iter().filter(|&&l| l == 0).count(),
            total_traversals: family.total_arcs(),
            min_len: lens.iter().copied().min().unwrap_or(0),
            max_len: lens.iter().copied().max().unwrap_or(0),
            load_histogram,
        }
    }

    /// Mean arc load over non-idle arcs (0.0 for empty instances).
    pub fn mean_busy_load(&self) -> f64 {
        let busy = self.arcs - self.idle_arcs;
        if busy == 0 {
            return 0.0;
        }
        self.total_traversals as f64 / busy as f64
    }

    /// Mean dipath length (0.0 for empty families).
    pub fn mean_len(&self) -> f64 {
        if self.paths == 0 {
            return 0.0;
        }
        self.total_traversals as f64 / self.paths as f64
    }
}

impl std::fmt::Display for InstanceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} dipaths over {} arcs: π={} (on {} arcs), len {}..{} (mean {:.2}), busy-load mean {:.2}",
            self.paths,
            self.arcs,
            self.max_load,
            self.argmax_arcs,
            self.min_len,
            self.max_len,
            self.mean_len(),
            self.mean_busy_load()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dipath::Dipath;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn instance() -> (Digraph, DipathFamily) {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let f = DipathFamily::from_paths(vec![
            Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
            Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap(),
            Dipath::from_vertices(&g, &[v(1), v(2)]).unwrap(),
        ]);
        (g, f)
    }

    #[test]
    fn basic_stats() {
        let (g, f) = instance();
        let s = InstanceStats::compute(&g, &f);
        assert_eq!(s.paths, 3);
        assert_eq!(s.arcs, 4);
        assert_eq!(s.max_load, 3, "arc 1→2 carries all three");
        assert_eq!(s.argmax_arcs, 1);
        assert_eq!(s.idle_arcs, 1, "3→4 unused");
        assert_eq!(s.total_traversals, 5);
        assert_eq!((s.min_len, s.max_len), (1, 2));
        assert_eq!(s.load_histogram, vec![1, 2, 0, 1]);
    }

    #[test]
    fn means() {
        let (g, f) = instance();
        let s = InstanceStats::compute(&g, &f);
        assert!((s.mean_len() - 5.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_busy_load() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_instance() {
        let g = from_edges(2, &[(0, 1)]);
        let s = InstanceStats::compute(&g, &DipathFamily::new());
        assert_eq!(s.max_load, 0);
        assert_eq!(s.mean_len(), 0.0);
        assert_eq!(s.mean_busy_load(), 0.0);
        assert_eq!(s.load_histogram, vec![1]);
    }

    #[test]
    fn display_renders() {
        let (g, f) = instance();
        let s = InstanceStats::compute(&g, &f);
        let text = s.to_string();
        assert!(text.contains("π=3"));
        assert!(text.contains("3 dipaths"));
    }
}
