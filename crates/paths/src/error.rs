//! Error types for dipath construction.

use dagwave_graph::{ArcId, VertexId};
use std::fmt;

/// Errors produced when building or manipulating dipaths.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// The arc sequence is not contiguous: `first.head != second.tail`.
    NotContiguous {
        /// The arc whose head does not match.
        prev: ArcId,
        /// The arc whose tail does not match.
        next: ArcId,
    },
    /// A dipath must contain at least one arc.
    Empty,
    /// No arc exists between two consecutive vertices of a vertex route.
    MissingArc {
        /// Expected tail.
        from: VertexId,
        /// Expected head.
        to: VertexId,
    },
    /// The dipath repeats a vertex (dipaths in a DAG are simple; repetition
    /// indicates a construction bug).
    RepeatedVertex(VertexId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::NotContiguous { prev, next } => {
                write!(f, "arcs {prev} and {next} are not contiguous")
            }
            PathError::Empty => write!(f, "a dipath needs at least one arc"),
            PathError::MissingArc { from, to } => {
                write!(f, "no arc {from} → {to} exists in the digraph")
            }
            PathError::RepeatedVertex(v) => write!(f, "dipath revisits vertex {v}"),
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            PathError::Empty.to_string(),
            "a dipath needs at least one arc"
        );
        assert!(PathError::MissingArc {
            from: VertexId(0),
            to: VertexId(1)
        }
        .to_string()
        .contains("v0 → v1"));
        assert!(PathError::NotContiguous {
            prev: ArcId(0),
            next: ArcId(1)
        }
        .to_string()
        .contains("e0 and e1"));
        assert!(PathError::RepeatedVertex(VertexId(2))
            .to_string()
            .contains("v2"));
    }
}
