//! Indexed dipath families.
//!
//! The paper's `P` is a *family* (multiset) of dipaths: identical dipaths may
//! appear several times (Theorem 7 replicates each dipath `h` times). Family
//! members are addressed by dense [`PathId`]s so per-dipath side tables
//! (colors, conflict adjacency) are plain vectors.
//!
//! Members are stored as `Arc<Dipath>`, so families *share* dipaths instead
//! of deep-cloning them: [`DipathFamily::replicate`], `Clone`, and the
//! editable [`crate::editable::PathFamily`]'s dense view all cost one
//! refcount bump per member, never a per-arc copy. The arc sequences stay
//! immutable behind the `Arc`; the rare mutating access
//! ([`DipathFamily::path_mut`], used by the Theorem-1 replay) goes through
//! copy-on-write (`Arc::make_mut`), which only clones when the dipath is
//! actually shared.

use crate::dipath::Dipath;
use dagwave_graph::{ArcId, Digraph, VertexId};
use std::sync::Arc;

/// Dense index of a dipath inside a [`DipathFamily`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(pub u32);

impl PathId {
    /// The id as a `usize`, for indexing per-dipath tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        PathId(u32::try_from(i).expect("path index exceeds u32")) // lint: allow(no-panic): documented guard: an index beyond u32 is a construction error
    }
}

impl std::fmt::Debug for PathId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl std::fmt::Display for PathId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A family (multiset) of dipaths, stored as shared `Arc<Dipath>` handles.
#[derive(Clone, Debug, Default)]
pub struct DipathFamily {
    paths: Vec<Arc<Dipath>>,
}

impl DipathFamily {
    /// Create an empty family.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create from a vector of dipaths (each is wrapped in an `Arc` once).
    pub fn from_paths(paths: Vec<Dipath>) -> Self {
        DipathFamily {
            paths: paths.into_iter().map(Arc::new).collect(),
        }
    }

    /// Create from already-shared dipaths without re-wrapping: the members
    /// keep their identity (refcount bumps, no arc-sequence copies).
    pub fn from_shared(paths: Vec<Arc<Dipath>>) -> Self {
        DipathFamily { paths }
    }

    /// Append a dipath, returning its id.
    pub fn push(&mut self, p: Dipath) -> PathId {
        self.push_shared(Arc::new(p))
    }

    /// Append an already-shared dipath (refcount bump only), returning its
    /// id.
    pub fn push_shared(&mut self, p: Arc<Dipath>) -> PathId {
        let id = PathId::from_index(self.paths.len());
        self.paths.push(p);
        id
    }

    /// Insert an already-shared dipath at dense rank `idx`, shifting later
    /// ranks up — the patch primitive of the editable family's dense view.
    pub(crate) fn insert_shared_at(&mut self, idx: usize, p: Arc<Dipath>) {
        self.paths.insert(idx, p);
    }

    /// Remove the dipath at dense rank `idx`, shifting later ranks down.
    pub(crate) fn remove_at(&mut self, idx: usize) -> Arc<Dipath> {
        self.paths.remove(idx)
    }

    /// Number of dipaths.
    #[inline]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// `true` when the family has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The dipath with the given id.
    #[inline]
    pub fn path(&self, id: PathId) -> &Dipath {
        &self.paths[id.index()]
    }

    /// The shared handle of the dipath with the given id — cloning it costs
    /// a refcount bump, not an arc-sequence copy.
    #[inline]
    pub fn shared(&self, id: PathId) -> &Arc<Dipath> {
        &self.paths[id.index()]
    }

    /// Mutable access (used by the replay machinery). Copy-on-write: when
    /// the dipath is shared with another family, the first mutable access
    /// clones it so the sharers never observe the edit.
    #[inline]
    pub fn path_mut(&mut self, id: PathId) -> &mut Dipath {
        Arc::make_mut(&mut self.paths[id.index()])
    }

    /// Iterate over `(PathId, &Dipath)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &Dipath)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PathId::from_index(i), &**p))
    }

    /// Iterate over `(PathId, &Arc<Dipath>)` pairs — the shared-handle form
    /// of [`DipathFamily::iter`].
    pub fn iter_shared(&self) -> impl Iterator<Item = (PathId, &Arc<Dipath>)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PathId::from_index(i), p))
    }

    /// Ids only.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        (0..self.paths.len()).map(PathId::from_index)
    }

    /// All dipaths containing arc `a`.
    pub fn paths_through(&self, a: ArcId) -> Vec<PathId> {
        self.iter()
            .filter(|(_, p)| p.contains_arc(a))
            .map(|(id, _)| id)
            .collect()
    }

    /// Replicate every dipath `h` times (Theorem 7's `×h` blow-up). The
    /// original dipaths keep their ids; copies are appended in rounds.
    /// Copies share the originals' arc sequences (refcount bumps only).
    pub fn replicate(&self, h: usize) -> DipathFamily {
        assert!(h >= 1, "replication factor must be positive");
        let mut paths = self.paths.clone();
        for _ in 1..h {
            paths.extend(self.paths.iter().cloned());
        }
        DipathFamily { paths }
    }

    /// Endpoint pairs `(source, target)` of every dipath.
    pub fn endpoints(&self, g: &Digraph) -> Vec<(VertexId, VertexId)> {
        self.paths
            .iter()
            .map(|p| (p.source(g), p.target(g)))
            .collect()
    }

    /// Total number of arcs over all dipaths (Σ|P|); sizes the arc-bucket
    /// pass of the conflict-graph builder.
    pub fn total_arcs(&self) -> usize {
        self.paths.iter().map(|p| p.len()).sum()
    }
}

impl FromIterator<Dipath> for DipathFamily {
    fn from_iter<I: IntoIterator<Item = Dipath>>(iter: I) -> Self {
        DipathFamily {
            paths: iter.into_iter().map(Arc::new).collect(),
        }
    }
}

impl FromIterator<Arc<Dipath>> for DipathFamily {
    fn from_iter<I: IntoIterator<Item = Arc<Dipath>>>(iter: I) -> Self {
        DipathFamily {
            paths: iter.into_iter().collect(),
        }
    }
}

impl std::ops::Index<PathId> for DipathFamily {
    type Output = Dipath;
    fn index(&self, id: PathId) -> &Dipath {
        self.path(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn sample() -> (Digraph, DipathFamily) {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut f = DipathFamily::new();
        f.push(Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap());
        f.push(Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap());
        (g, f)
    }

    #[test]
    fn push_and_index() {
        let (_, f) = sample();
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        let p0 = PathId::from_index(0);
        assert_eq!(f[p0].len(), 2);
        assert_eq!(f.ids().count(), 2);
    }

    #[test]
    fn paths_through_arc() {
        let (g, f) = sample();
        let a12 = g.find_arc(v(1), v(2)).unwrap();
        let through = f.paths_through(a12);
        assert_eq!(through.len(), 2, "both dipaths use 1→2");
        let a01 = g.find_arc(v(0), v(1)).unwrap();
        assert_eq!(f.paths_through(a01), vec![PathId(0)]);
    }

    #[test]
    fn replicate_multiplies() {
        let (_, f) = sample();
        let f3 = f.replicate(3);
        assert_eq!(f3.len(), 6);
        // Round structure: ids 0,1 then 2,3 then 4,5 repeat the originals.
        assert_eq!(f3[PathId(0)], f3[PathId(2)]);
        assert_eq!(f3[PathId(1)], f3[PathId(5)]);
        let f1 = f.replicate(1);
        assert_eq!(f1.len(), 2);
    }

    #[test]
    #[should_panic(expected = "replication factor must be positive")]
    fn replicate_zero_panics() {
        let (_, f) = sample();
        let _ = f.replicate(0);
    }

    #[test]
    fn endpoints_and_total_arcs() {
        let (g, f) = sample();
        assert_eq!(f.endpoints(&g), vec![(v(0), v(2)), (v(1), v(3))]);
        assert_eq!(f.total_arcs(), 4);
    }

    #[test]
    fn from_iterator_collects() {
        let (g, f) = sample();
        let copy: DipathFamily = f.iter().map(|(_, p)| p.clone()).collect();
        assert_eq!(copy.len(), f.len());
        assert_eq!(copy.endpoints(&g), f.endpoints(&g));
    }

    #[test]
    fn path_id_display() {
        assert_eq!(PathId(4).to_string(), "p4");
        assert_eq!(format!("{:?}", PathId(4)), "p4");
        assert_eq!(PathId::from_index(9).index(), 9);
    }
}
