//! Validated dipaths.
//!
//! A dipath is a non-empty sequence of arcs `e_1, …, e_k` with
//! `head(e_i) = tail(e_{i+1})` (paper, Section 2: a sequence of vertices
//! `x_1, …, x_k` such that each `(x_i, x_{i+1})` is an arc). Since the host
//! digraphs are DAGs, dipaths are automatically simple; construction
//! nevertheless verifies simplicity to catch generator bugs early.

use crate::error::PathError;
use crate::intern::{ArcList, ArcListArena};
use dagwave_graph::{ArcId, Digraph, VertexId};

/// A non-empty contiguous arc sequence in some digraph.
///
/// The dipath stores arc ids only; endpoint queries take the digraph. Equality
/// is by arc sequence. The sequence lives in an [`ArcList`] — an immutable
/// shared allocation that an [`ArcListArena`] can deduplicate — so cloning a
/// dipath is a refcount bump and two dipaths interned through one arena can be
/// compared by pointer. The front-shrink/extend edit operations rebuild the
/// list (same asymptotics as the `Vec` shift they replaced: those edits are
/// O(len) either way).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dipath {
    arcs: ArcList,
}

impl Dipath {
    /// Build from an arc id sequence, validating contiguity and simplicity.
    pub fn from_arcs(g: &Digraph, arcs: Vec<ArcId>) -> Result<Self, PathError> {
        if arcs.is_empty() {
            return Err(PathError::Empty);
        }
        for w in arcs.windows(2) {
            if g.head(w[0]) != g.tail(w[1]) {
                return Err(PathError::NotContiguous {
                    prev: w[0],
                    next: w[1],
                });
            }
        }
        // Simplicity: k arcs visit k+1 distinct vertices.
        let mut seen = std::collections::HashSet::with_capacity(arcs.len() + 1);
        seen.insert(g.tail(arcs[0]));
        for &a in &arcs {
            let h = g.head(a);
            if !seen.insert(h) {
                return Err(PathError::RepeatedVertex(h));
            }
        }
        Ok(Dipath {
            arcs: ArcList::from_vec(arcs),
        })
    }

    /// Build from a vertex route `x_1, …, x_k`, picking the first arc between
    /// consecutive vertices (parallel arcs: use [`Dipath::from_arcs`] to pick
    /// specific copies).
    pub fn from_vertices(g: &Digraph, route: &[VertexId]) -> Result<Self, PathError> {
        if route.len() < 2 {
            return Err(PathError::Empty);
        }
        let mut arcs = Vec::with_capacity(route.len() - 1);
        for w in route.windows(2) {
            let a = g.find_arc(w[0], w[1]).ok_or(PathError::MissingArc {
                from: w[0],
                to: w[1],
            })?;
            arcs.push(a);
        }
        Dipath::from_arcs(g, arcs)
    }

    /// Build a single-arc dipath.
    pub fn single(arc: ArcId) -> Self {
        Dipath {
            arcs: ArcList::from_vec(vec![arc]),
        }
    }

    /// Build from an (already-interned) arc list the *caller* guarantees is
    /// contiguous and simple in `g` — the shard-extraction fast path, where
    /// the sequence is an index remap of an already-validated dipath coming
    /// straight out of the extraction scratch's arena, so re-running the
    /// `HashSet` simplicity sweep per shard member would be pure overhead.
    /// Debug builds re-validate anyway (the shadow-check discipline);
    /// release builds trust the remap invariant.
    pub(crate) fn from_list_trusted(g: &Digraph, arcs: ArcList) -> Self {
        if cfg!(debug_assertions) {
            Dipath::from_arcs(g, arcs.as_slice().to_vec())
                .expect("trusted arc sequence re-validates"); // lint: allow(no-panic): debug-only shadow re-validation of the remap invariant
        }
        let _ = g;
        Dipath { arcs }
    }

    /// Rebuild this dipath around a content-equal interned list — the arena
    /// adoption step ([`crate::PathFamily`] interns on insert).
    pub(crate) fn with_list(&self, list: ArcList) -> Dipath {
        debug_assert_eq!(
            self.arcs.as_slice(),
            list.as_slice(),
            "interned list must be content-equal"
        );
        Dipath { arcs: list }
    }

    /// Intern this dipath's arc list in `arena`, adopting the arena's shared
    /// handle when the content was seen before.
    pub fn intern_into(&mut self, arena: &mut ArcListArena) {
        self.arcs = arena.intern(self.arcs.clone());
    }

    /// The arc sequence.
    #[inline]
    pub fn arcs(&self) -> &[ArcId] {
        self.arcs.as_slice()
    }

    /// The interned arc-list handle (content fingerprint + shared
    /// allocation).
    #[inline]
    pub fn arc_list(&self) -> &ArcList {
        &self.arcs
    }

    /// The cached content fingerprint of the arc sequence.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.arcs.fingerprint()
    }

    /// Content equality with a pointer-first short-circuit: O(1) for two
    /// handles interned through one arena, exact compare otherwise.
    #[inline]
    pub fn same_arcs(&self, other: &Dipath) -> bool {
        self.arcs == other.arcs
    }

    /// Number of arcs.
    #[inline]
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// Dipaths are never empty; provided for clippy-friendliness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// First arc.
    #[inline]
    pub fn first_arc(&self) -> ArcId {
        self.arcs[0]
    }

    /// Last arc.
    #[inline]
    pub fn last_arc(&self) -> ArcId {
        *self.arcs.last().expect("dipath is non-empty") // lint: allow(no-panic): Dipath construction rejects empty arc lists
    }

    /// Initial vertex.
    pub fn source(&self, g: &Digraph) -> VertexId {
        g.tail(self.first_arc())
    }

    /// Terminal vertex.
    pub fn target(&self, g: &Digraph) -> VertexId {
        g.head(self.last_arc())
    }

    /// The vertex route `x_1, …, x_{k+1}`.
    pub fn vertices(&self, g: &Digraph) -> Vec<VertexId> {
        let mut vs = Vec::with_capacity(self.arcs.len() + 1);
        vs.push(self.source(g));
        for &a in self.arcs.as_slice() {
            vs.push(g.head(a));
        }
        vs
    }

    /// `true` if the dipath uses arc `a`.
    pub fn contains_arc(&self, a: ArcId) -> bool {
        self.arcs.contains(&a)
    }

    /// Position of arc `a` in the sequence, if present.
    pub fn arc_position(&self, a: ArcId) -> Option<usize> {
        self.arcs.iter().position(|&x| x == a)
    }

    /// The set of arcs shared with `other`, in `self` order.
    pub fn shared_arcs(&self, other: &Dipath) -> Vec<ArcId> {
        // Dipaths are short relative to instance sizes; a sorted probe of the
        // smaller side keeps this allocation-light.
        let (small, big) = if self.len() <= other.len() {
            (other, self)
        } else {
            (self, other)
        };
        let mut probe: Vec<ArcId> = small.arcs.to_vec();
        probe.sort_unstable();
        big.arcs
            .iter()
            .copied()
            .filter(|a| probe.binary_search(a).is_ok())
            .collect()
    }

    /// `true` if the two dipaths are *in conflict* (share at least one arc).
    pub fn conflicts_with(&self, other: &Dipath) -> bool {
        let (small, big) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut probe: Vec<ArcId> = small.arcs.to_vec();
        probe.sort_unstable();
        big.arcs.iter().any(|a| probe.binary_search(a).is_ok())
    }

    /// Remove the first arc, returning it; `None` if that would empty the
    /// dipath (the caller then drops the dipath — the paper's
    /// "`Q` reduced to the arc `(x0, y0)`" case).
    pub fn shrink_front(&mut self) -> Option<ArcId> {
        if self.arcs.len() <= 1 {
            return None;
        }
        let removed = self.arcs[0];
        self.arcs = ArcList::from_slice(&self.arcs.as_slice()[1..]);
        Some(removed)
    }

    /// Prepend an arc (must satisfy `head(arc) = tail(first)`).
    pub fn extend_front(&mut self, g: &Digraph, arc: ArcId) -> Result<(), PathError> {
        if g.head(arc) != g.tail(self.first_arc()) {
            return Err(PathError::NotContiguous {
                prev: arc,
                next: self.first_arc(),
            });
        }
        let mut arcs = Vec::with_capacity(self.arcs.len() + 1);
        arcs.push(arc);
        arcs.extend_from_slice(self.arcs.as_slice());
        self.arcs = ArcList::from_vec(arcs);
        Ok(())
    }

    /// The sub-dipath between positions `[from, to)` of the arc sequence.
    pub fn slice(&self, from: usize, to: usize) -> Option<Dipath> {
        if from >= to || to > self.arcs.len() {
            return None;
        }
        Some(Dipath {
            arcs: ArcList::from_slice(&self.arcs.as_slice()[from..to]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn chain4() -> Digraph {
        from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn from_vertices_happy_path() {
        let g = chain4();
        let p = Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.source(&g), v(0));
        assert_eq!(p.target(&g), v(2));
        assert_eq!(p.vertices(&g), vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn from_vertices_missing_arc() {
        let g = chain4();
        assert_eq!(
            Dipath::from_vertices(&g, &[v(0), v(2)]),
            Err(PathError::MissingArc {
                from: v(0),
                to: v(2)
            })
        );
    }

    #[test]
    fn from_arcs_rejects_gaps() {
        let g = chain4();
        let a01 = g.find_arc(v(0), v(1)).unwrap();
        let a23 = g.find_arc(v(2), v(3)).unwrap();
        assert!(matches!(
            Dipath::from_arcs(&g, vec![a01, a23]),
            Err(PathError::NotContiguous { .. })
        ));
    }

    #[test]
    fn empty_rejected() {
        let g = chain4();
        assert_eq!(Dipath::from_arcs(&g, vec![]), Err(PathError::Empty));
        assert_eq!(Dipath::from_vertices(&g, &[v(0)]), Err(PathError::Empty));
    }

    #[test]
    fn conflict_detection() {
        let g = chain4();
        let p1 = Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap();
        let p2 = Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap();
        let p3 = Dipath::from_vertices(&g, &[v(3), v(4)]).unwrap();
        assert!(p1.conflicts_with(&p2));
        assert!(!p1.conflicts_with(&p3));
        assert!(p2.conflicts_with(&p2), "a dipath conflicts with itself");
        let shared = p1.shared_arcs(&p2);
        assert_eq!(shared.len(), 1);
        assert_eq!(g.tail(shared[0]), v(1));
    }

    #[test]
    fn vertex_sharing_is_not_conflict() {
        // Dipaths meeting only at a vertex are arc-disjoint (paper: conflicts
        // are defined on arcs, not vertices).
        let g = from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]);
        let p1 = Dipath::from_vertices(&g, &[v(0), v(2), v(3)]).unwrap();
        let p2 = Dipath::from_vertices(&g, &[v(1), v(2), v(4)]).unwrap();
        assert!(!p1.conflicts_with(&p2));
    }

    #[test]
    fn shrink_and_extend_front() {
        let g = chain4();
        let mut p = Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap();
        let removed = p.shrink_front().unwrap();
        assert_eq!(g.tail(removed), v(0));
        assert_eq!(p.source(&g), v(1));
        assert_eq!(p.shrink_front(), None, "single-arc dipath cannot shrink");
        p.extend_front(&g, removed).unwrap();
        assert_eq!(p.source(&g), v(0));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn extend_front_validates_contiguity() {
        let g = chain4();
        let mut p = Dipath::from_vertices(&g, &[v(2), v(3)]).unwrap();
        let a01 = g.find_arc(v(0), v(1)).unwrap();
        assert!(p.extend_front(&g, a01).is_err());
    }

    #[test]
    fn single_and_slice() {
        let g = chain4();
        let p = Dipath::from_vertices(&g, &[v(0), v(1), v(2), v(3)]).unwrap();
        let s = p.slice(1, 3).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.source(&g), v(1));
        assert_eq!(s.target(&g), v(3));
        assert!(p.slice(2, 2).is_none());
        assert!(p.slice(0, 9).is_none());
        let single = Dipath::single(p.first_arc());
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn repeated_vertex_rejected() {
        // A cyclic walk is not a dipath.
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let a01 = g.find_arc(v(0), v(1)).unwrap();
        let a12 = g.find_arc(v(1), v(2)).unwrap();
        let a20 = g.find_arc(v(2), v(0)).unwrap();
        assert_eq!(
            Dipath::from_arcs(&g, vec![a01, a12, a20]),
            Err(PathError::RepeatedVertex(v(0)))
        );
    }

    #[test]
    fn arc_position_and_contains() {
        let g = chain4();
        let p = Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap();
        let a12 = g.find_arc(v(1), v(2)).unwrap();
        let a34 = g.find_arc(v(3), v(4)).unwrap();
        assert!(p.contains_arc(a12));
        assert!(!p.contains_arc(a34));
        assert_eq!(p.arc_position(a12), Some(0));
        assert_eq!(p.arc_position(a34), None);
    }

    #[test]
    fn parallel_arc_choice_via_from_arcs() {
        let mut g = from_edges(2, &[(0, 1)]);
        let second = g.add_arc(v(0), v(1));
        let p = Dipath::from_arcs(&g, vec![second]).unwrap();
        assert_eq!(p.first_arc(), second);
        let q = Dipath::from_vertices(&g, &[v(0), v(1)]).unwrap();
        assert_ne!(
            p.first_arc(),
            q.first_arc(),
            "from_vertices picks first copy"
        );
        assert!(
            !p.conflicts_with(&q),
            "parallel arcs are distinct resources"
        );
    }
}
