//! An editable dipath family with stable ids — the substrate of
//! incremental re-solving.
//!
//! [`DipathFamily`] is a dense, append-only family: removing a member would
//! shift every later [`PathId`], invalidating cached per-shard state. A
//! [`PathFamily`] instead keeps one *slot* per id: removal tombstones the
//! slot (the id is never reinterpreted as a different dipath while live
//! references exist), and insertion reuses the **smallest** free slot
//! before growing — a deterministic contract that mutation-script
//! generators (e.g. `dagwave-gen`'s churn workload) can mirror exactly.
//!
//! The dense view needed by the one-shot solving surface is recovered with
//! [`PathFamily::to_dense`], which also returns the dense→stable id map.
//! Because slots are scanned in ascending id order, the dense ranks of the
//! live paths are *monotone* in their stable ids — the property that keeps
//! component orderings (and therefore merged colorings) identical between
//! the incremental and from-scratch solve paths.

use crate::dipath::Dipath;
use crate::family::{DipathFamily, PathId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A mutable dipath family with stable [`PathId`]s.
///
/// Removals tombstone their slot; insertions reuse the smallest free slot
/// first ([`PathFamily::insert`]). `len()` counts live members only.
///
/// ```
/// use dagwave_graph::builder::from_edges;
/// use dagwave_graph::VertexId;
/// use dagwave_paths::{Dipath, PathFamily, PathId};
///
/// let g = from_edges(3, &[(0, 1), (1, 2)]);
/// let v = |i| VertexId::from_index(i);
/// let p = Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap();
///
/// let mut family = PathFamily::new();
/// let a = family.insert(p.clone());
/// let b = family.insert(p.clone());
/// family.remove(a).unwrap();
/// assert_eq!(family.len(), 1);
/// // The freed slot is reused, smallest first — `b` keeps its id.
/// assert_eq!(family.insert(p), a);
/// assert_eq!(b, PathId(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PathFamily {
    slots: Vec<Option<Dipath>>,
    /// Min-heap of tombstoned slot indices (smallest reused first).
    free: BinaryHeap<Reverse<u32>>,
    live: usize,
}

impl PathFamily {
    /// An empty editable family.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt a dense family: member `i` becomes slot `i`, all live.
    pub fn from_family(family: &DipathFamily) -> Self {
        PathFamily {
            slots: family.iter().map(|(_, p)| Some(p.clone())).collect(),
            free: BinaryHeap::new(),
            live: family.len(),
        }
    }

    /// Number of live members.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no member is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots ever allocated (live + tombstoned); stable ids are
    /// always below this bound.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The id the next [`PathFamily::insert`] will assign: the smallest
    /// tombstoned slot, or a fresh slot past the end. Mutation-script
    /// generators use this to mirror id assignment without inserting.
    pub fn next_id(&self) -> PathId {
        match self.free.peek() {
            Some(&Reverse(slot)) => PathId(slot),
            None => PathId::from_index(self.slots.len()),
        }
    }

    /// Insert a dipath, reusing the smallest free slot (tombstone first,
    /// growth second), and return its stable id.
    pub fn insert(&mut self, p: Dipath) -> PathId {
        self.live += 1;
        let id = match self.free.pop() {
            Some(Reverse(slot)) => {
                debug_assert!(self.slots[slot as usize].is_none(), "slot was free");
                self.slots[slot as usize] = Some(p);
                PathId(slot)
            }
            None => {
                let id = PathId::from_index(self.slots.len());
                self.slots.push(Some(p));
                id
            }
        };
        self.debug_validate();
        id
    }

    /// Remove a live member, tombstoning its slot. Returns the dipath, or
    /// `None` when the id is unknown or already removed.
    pub fn remove(&mut self, id: PathId) -> Option<Dipath> {
        let slot = self.slots.get_mut(id.index())?;
        let p = slot.take()?;
        self.free.push(Reverse(id.0));
        self.live -= 1;
        self.debug_validate();
        Some(p)
    }

    /// Shadow validation of the tombstone/free-list bijection (debug builds
    /// only; release builds compile this to nothing). The free heap must
    /// hold exactly the tombstoned slot indices, once each — a duplicate
    /// would hand the same id to two live dipaths, a missing entry would
    /// leak the slot forever — and the live count must complement it. Run
    /// after every mutation, where the O(slots) sweep is dwarfed by the
    /// re-solve the mutation triggers anyway.
    fn debug_validate(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let tombstoned: std::collections::BTreeSet<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i as u32)
            .collect();
        let freed: Vec<u32> = self.free.iter().map(|&Reverse(s)| s).collect();
        let freed_set: std::collections::BTreeSet<u32> = freed.iter().copied().collect();
        debug_assert_eq!(
            freed.len(),
            freed_set.len(),
            "free list holds a duplicate slot"
        );
        debug_assert_eq!(
            freed_set, tombstoned,
            "free list and tombstoned slots diverged"
        );
        debug_assert_eq!(
            self.live + freed.len(),
            self.slots.len(),
            "live count diverged from slots minus tombstones"
        );
    }

    /// The live dipath at `id`, if any.
    pub fn get(&self, id: PathId) -> Option<&Dipath> {
        self.slots.get(id.index())?.as_ref()
    }

    /// `true` when `id` names a live member.
    pub fn contains(&self, id: PathId) -> bool {
        self.get(id).is_some()
    }

    /// Iterate over the live members as `(stable id, dipath)`, in ascending
    /// id order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &Dipath)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (PathId::from_index(i), p)))
    }

    /// Live ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Materialize the live members as a dense [`DipathFamily`] plus the
    /// dense→stable id map (`map[dense.index()]` is the stable id). Live
    /// members are emitted in ascending stable-id order, so dense ranks are
    /// monotone in stable ids.
    pub fn to_dense(&self) -> (DipathFamily, Vec<PathId>) {
        let mut map = Vec::with_capacity(self.live);
        let dense: DipathFamily = self
            .iter()
            .map(|(id, p)| {
                map.push(id);
                p.clone()
            })
            .collect();
        (dense, map)
    }
}

impl From<DipathFamily> for PathFamily {
    fn from(family: DipathFamily) -> Self {
        PathFamily::from_family(&family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::{Digraph, VertexId};

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn chain() -> (Digraph, Vec<Dipath>) {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let paths = vec![
            Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
            Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap(),
            Dipath::from_vertices(&g, &[v(2), v(3)]).unwrap(),
        ];
        (g, paths)
    }

    #[test]
    fn insert_assigns_dense_then_reuses_smallest_free() {
        let (_, paths) = chain();
        let mut f = PathFamily::new();
        assert!(f.is_empty());
        let ids: Vec<PathId> = paths.iter().cloned().map(|p| f.insert(p)).collect();
        assert_eq!(ids, vec![PathId(0), PathId(1), PathId(2)]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.slot_count(), 3);

        // Free two slots out of order; the smallest comes back first.
        f.remove(PathId(2)).unwrap();
        f.remove(PathId(0)).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.next_id(), PathId(0));
        assert_eq!(f.insert(paths[0].clone()), PathId(0));
        assert_eq!(f.next_id(), PathId(2));
        assert_eq!(f.insert(paths[2].clone()), PathId(2));
        // Free list drained: growth resumes past the end.
        assert_eq!(f.next_id(), PathId(3));
        assert_eq!(f.insert(paths[1].clone()), PathId(3));
        assert_eq!(f.slot_count(), 4);
    }

    #[test]
    fn remove_tombstones_and_rejects_double_removal() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths.clone()));
        assert_eq!(f.len(), 3);
        assert!(f.contains(PathId(1)));
        let removed = f.remove(PathId(1)).unwrap();
        assert_eq!(&removed, &paths[1]);
        assert!(!f.contains(PathId(1)));
        assert!(f.get(PathId(1)).is_none());
        assert!(f.remove(PathId(1)).is_none(), "already tombstoned");
        assert!(f.remove(PathId(9)).is_none(), "never allocated");
        // Stable ids: the other members are untouched.
        assert_eq!(f.get(PathId(0)), Some(&paths[0]));
        assert_eq!(f.get(PathId(2)), Some(&paths[2]));
        assert_eq!(f.ids().collect::<Vec<_>>(), vec![PathId(0), PathId(2)]);
    }

    #[test]
    fn to_dense_skips_tombstones_and_maps_back() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths.clone()));
        f.remove(PathId(0)).unwrap();
        let (dense, map) = f.to_dense();
        assert_eq!(dense.len(), 2);
        assert_eq!(map, vec![PathId(1), PathId(2)]);
        assert_eq!(dense.path(PathId(0)), &paths[1]);
        assert_eq!(dense.path(PathId(1)), &paths[2]);
        // Dense ranks are monotone in stable ids by construction.
        assert!(map.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "live count diverged")]
    fn shadow_validation_catches_corrupted_live_count() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths));
        f.live = 5; // corrupt the cached live count
        let _ = f.remove(PathId(0)); // the post-mutation sweep fires
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "free list and tombstoned slots diverged")]
    fn shadow_validation_catches_phantom_free_slot() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths));
        f.free.push(Reverse(7)); // a slot that was never allocated
        f.live += 1; // keep the count check from firing first
        let _ = f.remove(PathId(0));
    }

    #[test]
    fn from_conversion_matches_from_family() {
        let (_, paths) = chain();
        let dense = DipathFamily::from_paths(paths);
        let a = PathFamily::from_family(&dense);
        let b: PathFamily = dense.clone().into();
        assert_eq!(a.len(), b.len());
        let (ra, ma) = a.to_dense();
        assert_eq!(ra.len(), dense.len());
        assert_eq!(ma, dense.ids().collect::<Vec<_>>());
    }
}
