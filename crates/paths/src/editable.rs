//! An editable dipath family with stable ids — the substrate of
//! incremental re-solving.
//!
//! [`DipathFamily`] is a dense, append-only family: removing a member would
//! shift every later [`PathId`], invalidating cached per-shard state. A
//! [`PathFamily`] instead keeps one *slot* per id: removal tombstones the
//! slot (the id is never reinterpreted as a different dipath while live
//! references exist), and insertion reuses the **smallest** free slot
//! before growing — a deterministic contract that mutation-script
//! generators (e.g. `dagwave-gen`'s churn workload) can mirror exactly.
//!
//! The dense view needed by the one-shot solving surface is *maintained*,
//! not recomputed: [`PathFamily`] keeps the live members as a
//! [`DipathFamily`] of shared `Arc<Dipath>` handles in ascending stable-id
//! order, patched in place on every insert/remove and never invalidated
//! (tombstones live only in the slot table; the dense view compacts them
//! as part of the same patch, so the amortized cost per mutation is a
//! pointer-sized `memmove`, never a per-arc copy). [`PathFamily::to_dense`]
//! clones the handles (refcount bumps); [`PathFamily::dense_view`] borrows
//! the view outright, and [`PathFamily::dense_ids`] /
//! [`PathFamily::dense_rank`] expose the stable↔dense id maps. Because the
//! view is kept in ascending id order, the dense ranks of the live paths
//! are *monotone* in their stable ids — the property that keeps component
//! orderings (and therefore merged colorings) identical between the
//! incremental and from-scratch solve paths.

use crate::dipath::Dipath;
use crate::family::{DipathFamily, PathId};
use crate::intern::{ArcListArena, ArenaStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A mutable dipath family with stable [`PathId`]s.
///
/// Removals tombstone their slot; insertions reuse the smallest free slot
/// first ([`PathFamily::insert`]). `len()` counts live members only.
///
/// ```
/// use dagwave_graph::builder::from_edges;
/// use dagwave_graph::VertexId;
/// use dagwave_paths::{Dipath, PathFamily, PathId};
///
/// let g = from_edges(3, &[(0, 1), (1, 2)]);
/// let v = |i| VertexId::from_index(i);
/// let p = Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap();
///
/// let mut family = PathFamily::new();
/// let a = family.insert(p.clone());
/// let b = family.insert(p.clone());
/// family.remove(a).unwrap();
/// assert_eq!(family.len(), 1);
/// // The freed slot is reused, smallest first — `b` keeps its id.
/// assert_eq!(family.insert(p), a);
/// assert_eq!(b, PathId(1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PathFamily {
    slots: Vec<Option<Arc<Dipath>>>,
    /// Min-heap of tombstoned slot indices (smallest reused first).
    free: BinaryHeap<Reverse<u32>>,
    /// The live members in ascending stable-id order, sharing their
    /// `Arc<Dipath>`s with `slots` — patched per mutation, never rebuilt.
    dense: DipathFamily,
    /// `dense_of[rank]` = the stable id at that dense rank (sorted
    /// ascending, so stable→dense is a binary search).
    dense_of: Vec<PathId>,
    /// Append-only arc-list interner: [`PathFamily::insert`] routes every
    /// dipath through it, so content seen before (replication, remove +
    /// re-add churn) reuses one allocation and compares by pointer.
    arena: ArcListArena,
}

impl PathFamily {
    /// An empty editable family.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adopt a dense family: member `i` becomes slot `i`, all live. Every
    /// member's arc list is interned; first occurrences keep the input's
    /// dipath handle (a refcount bump, no deep clone), while content
    /// duplicates are rebound to share the first occurrence's allocation —
    /// a replicated family costs one arc list per *distinct* sequence.
    pub fn from_family(family: &DipathFamily) -> Self {
        let mut arena = ArcListArena::new();
        let shared: Vec<Arc<Dipath>> = family
            .iter_shared()
            .map(|(_, p)| {
                let interned = arena.intern(p.arc_list().clone());
                if interned.ptr_eq(p.arc_list()) {
                    Arc::clone(p)
                } else {
                    Arc::new(p.with_list(interned))
                }
            })
            .collect();
        PathFamily {
            slots: shared.iter().cloned().map(Some).collect(),
            free: BinaryHeap::new(),
            dense: DipathFamily::from_shared(shared),
            dense_of: family.ids().collect(),
            arena,
        }
    }

    /// Number of live members.
    #[inline]
    pub fn len(&self) -> usize {
        self.dense_of.len()
    }

    /// `true` when no member is live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dense_of.is_empty()
    }

    /// Number of slots ever allocated (live + tombstoned); stable ids are
    /// always below this bound.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The tombstoned slot ids, ascending — the slots the next inserts
    /// will fill (smallest first) before the family grows. O(f log f) in
    /// the tombstone count, which batch validators rely on: simulating a
    /// mutation batch's id assignment needs only this (typically tiny)
    /// set plus the batch's own deltas, never the O(live) member set.
    pub fn free_slots(&self) -> Vec<u32> {
        let mut free: Vec<u32> = self.free.iter().map(|&Reverse(slot)| slot).collect();
        free.sort_unstable();
        free
    }

    /// The id the next [`PathFamily::insert`] will assign: the smallest
    /// tombstoned slot, or a fresh slot past the end. Mutation-script
    /// generators use this to mirror id assignment without inserting.
    pub fn next_id(&self) -> PathId {
        match self.free.peek() {
            Some(&Reverse(slot)) => PathId(slot),
            None => PathId::from_index(self.slots.len()),
        }
    }

    /// Insert a dipath, reusing the smallest free slot (tombstone first,
    /// growth second), and return its stable id. The dipath's arc list is
    /// interned first: re-adding previously-seen content (the remove +
    /// re-add churn pattern) adopts the original allocation, so downstream
    /// caches can match it by pointer instead of content.
    pub fn insert(&mut self, mut p: Dipath) -> PathId {
        p.intern_into(&mut self.arena);
        self.insert_slot(Arc::new(p))
    }

    /// [`PathFamily::insert`] for an already-shared dipath: the slot table
    /// and the dense view both hold the *same* handle (one refcount bump).
    /// The handle's arc list is registered with the interner (so later
    /// [`PathFamily::insert`]s of equal content share it) but never rebound
    /// — the caller's handle stays the one stored.
    pub fn insert_shared(&mut self, p: Arc<Dipath>) -> PathId {
        let _ = self.arena.intern(p.arc_list().clone());
        self.insert_slot(p)
    }

    /// Slot assignment + dense-view patch shared by the insert paths (the
    /// arc list is already interned/registered by the caller).
    fn insert_slot(&mut self, p: Arc<Dipath>) -> PathId {
        let id = match self.free.pop() {
            Some(Reverse(slot)) => {
                debug_assert!(self.slots[slot as usize].is_none(), "slot was free");
                self.slots[slot as usize] = Some(p.clone());
                PathId(slot)
            }
            None => {
                let id = PathId::from_index(self.slots.len());
                self.slots.push(Some(p.clone()));
                id
            }
        };
        // Patch the dense view in place: the new member's rank is the
        // number of live ids below it (dense_of stays sorted).
        let rank = self.dense_of.partition_point(|&other| other < id);
        self.dense_of.insert(rank, id);
        self.dense.insert_shared_at(rank, p);
        self.debug_validate();
        id
    }

    /// Remove a live member, tombstoning its slot. Returns the (shared)
    /// dipath, or `None` when the id is unknown or already removed.
    pub fn remove(&mut self, id: PathId) -> Option<Arc<Dipath>> {
        let slot = self.slots.get_mut(id.index())?;
        let p = slot.take()?;
        self.free.push(Reverse(id.0));
        // Patch the dense view: drop the member's rank, shifting later
        // ranks down (a pointer-sized memmove, no per-arc work).
        if let Ok(rank) = self.dense_of.binary_search(&id) {
            self.dense_of.remove(rank);
            self.dense.remove_at(rank);
        } else {
            debug_assert!(false, "live slot missing from the dense view");
        }
        self.debug_validate();
        Some(p)
    }

    /// Shadow validation of the tombstone/free-list bijection **and** the
    /// incrementally-patched dense view (debug builds only; release builds
    /// compile this to nothing). The free heap must hold exactly the
    /// tombstoned slot indices, once each — a duplicate would hand the same
    /// id to two live dipaths, a missing entry would leak the slot forever
    /// — and the live count must complement it. The dense view must list
    /// exactly the live slots in ascending id order, each entry sharing its
    /// slot's dipath (pointer equality, so a patch that cloned or swapped a
    /// member dies here too). Run after every mutation, where the O(slots)
    /// sweep is dwarfed by the re-solve the mutation triggers anyway.
    fn debug_validate(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let tombstoned: std::collections::BTreeSet<u32> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| i as u32)
            .collect();
        let freed: Vec<u32> = self.free.iter().map(|&Reverse(s)| s).collect();
        let freed_set: std::collections::BTreeSet<u32> = freed.iter().copied().collect();
        debug_assert_eq!(
            freed.len(),
            freed_set.len(),
            "free list holds a duplicate slot"
        );
        debug_assert_eq!(
            freed_set, tombstoned,
            "free list and tombstoned slots diverged"
        );
        debug_assert_eq!(
            self.dense_of.len() + freed.len(),
            self.slots.len(),
            "live count diverged from slots minus tombstones"
        );
        // The cached dense view is bit-identical to a from-scratch rebuild:
        // same ids, same order, same (shared) dipaths.
        let fresh_ids: Vec<PathId> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| PathId::from_index(i))
            .collect();
        debug_assert_eq!(
            self.dense_of, fresh_ids,
            "dense id map diverged from the live slots"
        );
        debug_assert_eq!(
            self.dense.len(),
            self.dense_of.len(),
            "dense view length diverged from its id map"
        );
        for (rank, &id) in self.dense_of.iter().enumerate() {
            let slot = self.slots[id.index()]
                .as_ref()
                .expect("dense id map points at a live slot"); // lint: allow(no-panic): debug-only shadow check
            debug_assert!(
                Arc::ptr_eq(slot, self.dense.shared(PathId::from_index(rank))),
                "dense view stopped sharing slot {id}'s dipath"
            );
        }
    }

    /// The live dipath at `id`, if any.
    pub fn get(&self, id: PathId) -> Option<&Dipath> {
        self.slots.get(id.index())?.as_deref()
    }

    /// The shared handle of the live dipath at `id`, if any.
    pub fn get_shared(&self, id: PathId) -> Option<&Arc<Dipath>> {
        self.slots.get(id.index())?.as_ref()
    }

    /// `true` when `id` names a live member.
    pub fn contains(&self, id: PathId) -> bool {
        self.get(id).is_some()
    }

    /// Iterate over the live members as `(stable id, dipath)`, in ascending
    /// id order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &Dipath)> {
        self.dense_of
            .iter()
            .zip(self.dense.iter())
            .map(|(&id, (_, p))| (id, p))
    }

    /// Live ids, ascending.
    pub fn ids(&self) -> impl Iterator<Item = PathId> + '_ {
        self.dense_of.iter().copied()
    }

    /// The maintained dense view: the live members as a [`DipathFamily`]
    /// in ascending stable-id order, borrowed without copying anything.
    /// `dense_view().path(PathId(r))` is the member at dense rank `r`;
    /// [`PathFamily::dense_ids`] maps ranks back to stable ids.
    #[inline]
    pub fn dense_view(&self) -> &DipathFamily {
        &self.dense
    }

    /// The dense→stable id map: `dense_ids()[rank]` is the stable id of the
    /// member at that dense rank (ascending, so it doubles as a sorted
    /// array for stable→dense binary search).
    #[inline]
    pub fn dense_ids(&self) -> &[PathId] {
        &self.dense_of
    }

    /// The stable→dense map: the dense rank of live member `id`, or `None`
    /// when `id` is not live. `O(log n)` (binary search of the sorted
    /// dense→stable map).
    pub fn dense_rank(&self, id: PathId) -> Option<usize> {
        self.dense_of.binary_search(&id).ok()
    }

    /// Materialize the live members as a dense [`DipathFamily`] plus the
    /// dense→stable id map (`map[dense.index()]` is the stable id). Live
    /// members are emitted in ascending stable-id order, so dense ranks are
    /// monotone in stable ids. Served from the maintained dense view: the
    /// cost is one handle clone per member (refcount bumps), never a
    /// per-arc copy. Callers that can hold a borrow should prefer
    /// [`PathFamily::dense_view`] / [`PathFamily::dense_ids`], which copy
    /// nothing at all.
    pub fn to_dense(&self) -> (DipathFamily, Vec<PathId>) {
        (self.dense.clone(), self.dense_of.clone())
    }

    /// Counters of the family's arc-list interner: distinct sequences
    /// stored (the arena is append-only — removals do not shrink it) plus
    /// cumulative intern hits/misses.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }
}

impl From<DipathFamily> for PathFamily {
    fn from(family: DipathFamily) -> Self {
        PathFamily::from_family(&family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::{Digraph, VertexId};

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn chain() -> (Digraph, Vec<Dipath>) {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let paths = vec![
            Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
            Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap(),
            Dipath::from_vertices(&g, &[v(2), v(3)]).unwrap(),
        ];
        (g, paths)
    }

    #[test]
    fn insert_assigns_dense_then_reuses_smallest_free() {
        let (_, paths) = chain();
        let mut f = PathFamily::new();
        assert!(f.is_empty());
        let ids: Vec<PathId> = paths.iter().cloned().map(|p| f.insert(p)).collect();
        assert_eq!(ids, vec![PathId(0), PathId(1), PathId(2)]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.slot_count(), 3);

        // Free two slots out of order; the smallest comes back first.
        f.remove(PathId(2)).unwrap();
        f.remove(PathId(0)).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f.next_id(), PathId(0));
        assert_eq!(f.insert(paths[0].clone()), PathId(0));
        assert_eq!(f.next_id(), PathId(2));
        assert_eq!(f.insert(paths[2].clone()), PathId(2));
        // Free list drained: growth resumes past the end.
        assert_eq!(f.next_id(), PathId(3));
        assert_eq!(f.insert(paths[1].clone()), PathId(3));
        assert_eq!(f.slot_count(), 4);
    }

    #[test]
    fn remove_tombstones_and_rejects_double_removal() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths.clone()));
        assert_eq!(f.len(), 3);
        assert!(f.contains(PathId(1)));
        let removed = f.remove(PathId(1)).unwrap();
        assert_eq!(&*removed, &paths[1]);
        assert!(!f.contains(PathId(1)));
        assert!(f.get(PathId(1)).is_none());
        assert!(f.remove(PathId(1)).is_none(), "already tombstoned");
        assert!(f.remove(PathId(9)).is_none(), "never allocated");
        // Stable ids: the other members are untouched.
        assert_eq!(f.get(PathId(0)), Some(&paths[0]));
        assert_eq!(f.get(PathId(2)), Some(&paths[2]));
        assert_eq!(f.ids().collect::<Vec<_>>(), vec![PathId(0), PathId(2)]);
    }

    #[test]
    fn to_dense_skips_tombstones_and_maps_back() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths.clone()));
        f.remove(PathId(0)).unwrap();
        let (dense, map) = f.to_dense();
        assert_eq!(dense.len(), 2);
        assert_eq!(map, vec![PathId(1), PathId(2)]);
        assert_eq!(dense.path(PathId(0)), &paths[1]);
        assert_eq!(dense.path(PathId(1)), &paths[2]);
        // Dense ranks are monotone in stable ids by construction.
        assert!(map.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn dense_view_shares_and_maps_both_ways() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths.clone()));
        f.remove(PathId(1)).unwrap();
        let id3 = f.insert(paths[1].clone());
        assert_eq!(id3, PathId(1), "smallest tombstone reused");
        // Borrowed view: no copies at all, shared with the slot table.
        let view = f.dense_view();
        assert_eq!(view.len(), 3);
        assert!(Arc::ptr_eq(
            view.shared(PathId(0)),
            f.get_shared(PathId(0)).unwrap()
        ));
        // Stable↔dense maps agree in both directions.
        assert_eq!(f.dense_ids(), &[PathId(0), PathId(1), PathId(2)]);
        for (rank, &id) in f.dense_ids().iter().enumerate() {
            assert_eq!(f.dense_rank(id), Some(rank));
        }
        assert_eq!(f.dense_rank(PathId(9)), None);
        f.remove(PathId(0)).unwrap();
        assert_eq!(f.dense_rank(PathId(0)), None);
        assert_eq!(f.dense_rank(PathId(2)), Some(1));
    }

    #[test]
    fn to_dense_shares_instead_of_cloning() {
        let (_, paths) = chain();
        let f = PathFamily::from_family(&DipathFamily::from_paths(paths));
        let (dense, _) = f.to_dense();
        for (rank, p) in dense.iter_shared() {
            let id = f.dense_ids()[rank.index()];
            assert!(
                Arc::ptr_eq(p, f.get_shared(id).unwrap()),
                "dense conversion must share, not deep-clone"
            );
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "live count diverged")]
    fn shadow_validation_catches_corrupted_live_count() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths));
        f.dense_of.pop(); // corrupt the dense id map (and with it the live count)
        let _ = f.remove(PathId(0)); // the post-mutation sweep fires
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "free list and tombstoned slots diverged")]
    fn shadow_validation_catches_phantom_free_slot() {
        let (_, paths) = chain();
        let mut f = PathFamily::from_family(&DipathFamily::from_paths(paths));
        f.free.push(Reverse(7)); // a slot that was never allocated
        f.dense_of.push(PathId(9)); // keep the count check from firing first
        let _ = f.remove(PathId(0));
    }

    #[test]
    fn insert_interns_and_readd_shares_allocation() {
        let (_, paths) = chain();
        let mut f = PathFamily::new();
        let a = f.insert(paths[0].clone());
        let b = f.insert(paths[0].clone());
        assert!(
            f.get(a)
                .unwrap()
                .arc_list()
                .ptr_eq(f.get(b).unwrap().arc_list()),
            "duplicate insert shares one arc list"
        );
        // Remove + re-add resolves through the append-only arena: the
        // reconstituted member adopts the original allocation.
        f.remove(a).unwrap();
        let c = f.insert(paths[0].clone());
        assert_eq!(c, a, "smallest tombstone reused");
        assert!(
            f.get(c)
                .unwrap()
                .arc_list()
                .ptr_eq(f.get(b).unwrap().arc_list()),
            "re-added content shares the original allocation"
        );
        let stats = f.arena_stats();
        assert_eq!(stats.lists, 1, "one distinct sequence");
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn from_family_dedups_replicated_members() {
        let (_, paths) = chain();
        let dense =
            DipathFamily::from_paths(vec![paths[0].clone(), paths[0].clone(), paths[1].clone()]);
        let f = PathFamily::from_family(&dense);
        assert!(
            f.get(PathId(0))
                .unwrap()
                .arc_list()
                .ptr_eq(f.get(PathId(1)).unwrap().arc_list()),
            "replicated members share the first occurrence's allocation"
        );
        assert_eq!(f.arena_stats().lists, 2);
        // The slot/dense sharing invariant survives the rebind.
        for (rank, &id) in f.dense_ids().iter().enumerate() {
            assert!(Arc::ptr_eq(
                f.get_shared(id).unwrap(),
                f.dense_view().shared(PathId::from_index(rank))
            ));
        }
    }

    #[test]
    fn from_conversion_matches_from_family() {
        let (_, paths) = chain();
        let dense = DipathFamily::from_paths(paths);
        let a = PathFamily::from_family(&dense);
        let b: PathFamily = dense.clone().into();
        assert_eq!(a.len(), b.len());
        let (ra, ma) = a.to_dense();
        assert_eq!(ra.len(), dense.len());
        assert_eq!(ma, dense.ids().collect::<Vec<_>>());
    }
}
