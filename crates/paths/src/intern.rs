//! Arc-list interning: shared, content-addressed arc sequences.
//!
//! Every [`crate::Dipath`] stores its arc sequence as an [`ArcList`] — an
//! immutable, cheaply-cloneable handle (`Arc<[ArcId]>` plus a cached
//! content fingerprint). An [`ArcListArena`] deduplicates lists by
//! content: interning a sequence the arena has seen before returns the
//! *original* allocation (a refcount bump), so replicated families,
//! remove + re-add churn, and shard extraction of duplicated members all
//! share one allocation per distinct sequence instead of one per dipath.
//!
//! Deduplication is what makes the identity test cheap, not just the
//! memory small: two interned lists from the same arena are
//! content-equal iff they are pointer-equal, so the incremental engine's
//! reuse pool can match a reconstituted shard in O(members) pointer
//! compares instead of O(shard content). `ArcList::eq` keeps the
//! pointer-first discipline even across arenas (pointer check, then
//! fingerprint gate, then exact content — a hash collision can never
//! alias two different sequences).
//!
//! The arena is **append-only**: entries are never evicted, so a handle
//! interned once stays valid for the arena's lifetime and re-interning
//! after a removal still finds the original. Its footprint is bounded by
//! the distinct sequences ever seen, not the live family size — the
//! right trade for a churning service whose dipaths repeat.

use dagwave_graph::ArcId;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Deterministic content fingerprint of an arc sequence (`DefaultHasher`
/// with default keys — reproducible across runs, like the workspace's
/// shard fingerprints, which are built on top of these).
fn fingerprint_of(arcs: &[ArcId]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    arcs.len().hash(&mut h);
    for a in arcs {
        a.index().hash(&mut h);
    }
    h.finish()
}

/// An immutable arc sequence behind a shared allocation, with its content
/// fingerprint computed once at construction.
///
/// Equality and hashing are by content (pointer equality short-circuits,
/// the fingerprint gates the slow path), so an `ArcList` drops into any
/// context a `Vec<ArcId>` used to occupy.
#[derive(Clone, Debug)]
pub struct ArcList {
    arcs: Arc<[ArcId]>,
    fingerprint: u64,
}

impl ArcList {
    /// Build from an owned vector (one allocation move, no copy).
    pub fn from_vec(arcs: Vec<ArcId>) -> Self {
        let fingerprint = fingerprint_of(&arcs);
        ArcList {
            arcs: arcs.into(),
            fingerprint,
        }
    }

    /// Build from a borrowed slice (copies the slice once).
    pub fn from_slice(arcs: &[ArcId]) -> Self {
        ArcList {
            fingerprint: fingerprint_of(arcs),
            arcs: arcs.into(),
        }
    }

    /// The arc sequence.
    #[inline]
    pub fn as_slice(&self) -> &[ArcId] {
        &self.arcs
    }

    /// Number of arcs.
    #[inline]
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// `true` when the sequence is empty (never, for a list inside a
    /// validated dipath).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// The cached content fingerprint.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// `true` when both handles share one allocation. Within one arena
    /// this is equivalent to content equality; across arenas it may
    /// report `false` for equal content (fall back to `==`).
    #[inline]
    pub fn ptr_eq(&self, other: &ArcList) -> bool {
        Arc::ptr_eq(&self.arcs, &other.arcs)
    }
}

impl PartialEq for ArcList {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other)
            || (self.fingerprint == other.fingerprint && self.as_slice() == other.as_slice())
    }
}

impl Eq for ArcList {}

impl Hash for ArcList {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the content exactly as the `Vec<ArcId>` it replaced would
        // have, so `Dipath`'s derived `Hash` is unchanged by interning.
        self.as_slice().hash(state);
    }
}

impl std::ops::Deref for ArcList {
    type Target = [ArcId];

    fn deref(&self) -> &[ArcId] {
        &self.arcs
    }
}

#[cfg(feature = "serde")]
impl serde::Serialize for ArcList {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

#[cfg(feature = "serde")]
impl<'de> serde::Deserialize<'de> for ArcList {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(ArcList::from_vec(Vec::<ArcId>::deserialize(deserializer)?))
    }
}

/// Cumulative counters of one [`ArcListArena`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct arc sequences stored.
    pub lists: usize,
    /// Interning calls answered from an existing entry.
    pub hits: u64,
    /// Interning calls that stored a new entry.
    pub misses: u64,
}

impl ArenaStats {
    /// Hits over total interning calls, in `[0, 1]` (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An append-only deduplicating store of [`ArcList`]s.
///
/// Buckets by fingerprint with exact content confirmation, so a 64-bit
/// collision can never alias two different sequences — it only costs one
/// extra slot in a bucket.
#[derive(Clone, Debug, Default)]
pub struct ArcListArena {
    buckets: HashMap<u64, Vec<ArcList>>,
    lists: usize,
    hits: u64,
    misses: u64,
}

impl ArcListArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an already-built list: returns the arena's existing handle
    /// for equal content (refcount bump), or registers `list` itself —
    /// the no-copy path for callers that already hold an `ArcList`.
    pub fn intern(&mut self, list: ArcList) -> ArcList {
        let bucket = self.buckets.entry(list.fingerprint).or_default();
        for held in bucket.iter() {
            if held.ptr_eq(&list) || held.as_slice() == list.as_slice() {
                self.hits += 1;
                return held.clone();
            }
        }
        self.misses += 1;
        self.lists += 1;
        bucket.push(list.clone());
        list
    }

    /// Intern a borrowed sequence: the slice is copied only when the
    /// arena has never seen this content.
    pub fn intern_slice(&mut self, arcs: &[ArcId]) -> ArcList {
        let fingerprint = fingerprint_of(arcs);
        let bucket = self.buckets.entry(fingerprint).or_default();
        for held in bucket.iter() {
            if held.as_slice() == arcs {
                self.hits += 1;
                return held.clone();
            }
        }
        self.misses += 1;
        self.lists += 1;
        let list = ArcList {
            fingerprint,
            arcs: arcs.into(),
        };
        bucket.push(list.clone());
        list
    }

    /// Distinct sequences stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.lists
    }

    /// `true` when nothing has been interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lists == 0
    }

    /// The cumulative counters (size, hits, misses).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            lists: self.lists,
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arcs(ids: &[u32]) -> Vec<ArcId> {
        ids.iter().map(|&i| ArcId(i)).collect()
    }

    #[test]
    fn interning_dedups_by_content() {
        let mut arena = ArcListArena::new();
        let a = arena.intern_slice(&arcs(&[0, 1, 2]));
        let b = arena.intern_slice(&arcs(&[0, 1, 2]));
        assert!(a.ptr_eq(&b), "same content shares one allocation");
        let c = arena.intern_slice(&arcs(&[0, 1]));
        assert!(!a.ptr_eq(&c));
        let stats = arena.stats();
        assert_eq!(stats.lists, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn intern_owned_registers_the_given_handle() {
        let mut arena = ArcListArena::new();
        let fresh = ArcList::from_vec(arcs(&[3, 4]));
        let held = arena.intern(fresh.clone());
        assert!(held.ptr_eq(&fresh), "miss keeps the caller's allocation");
        let again = arena.intern(ArcList::from_vec(arcs(&[3, 4])));
        assert!(again.ptr_eq(&fresh), "hit returns the first allocation");
    }

    #[test]
    fn equality_and_hash_are_by_content() {
        use std::collections::hash_map::DefaultHasher;
        let a = ArcList::from_vec(arcs(&[5, 6, 7]));
        let b = ArcList::from_slice(&arcs(&[5, 6, 7]));
        assert_eq!(a, b, "distinct allocations, equal content");
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let hash = |l: &ArcList| {
            let mut h = DefaultHasher::new();
            l.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_ne!(a, ArcList::from_vec(arcs(&[5, 6])));
    }

    #[test]
    fn empty_arena_reports_empty() {
        let arena = ArcListArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.stats(), ArenaStats::default());
        assert_eq!(ArenaStats::default().hit_rate(), 0.0);
    }
}
