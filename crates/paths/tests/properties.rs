//! Property tests for dipaths, loads and conflict graphs.

use dagwave_graph::builder::from_edges;
use dagwave_graph::VertexId;
use dagwave_paths::{conflict, load, ConflictGraph, Dipath, DipathFamily, PathId};
use proptest::prelude::*;

/// A chain digraph of `n` arcs plus a family of random sub-intervals.
fn interval_family() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2usize..30).prop_flat_map(|n| {
        let ivs = proptest::collection::vec((0usize..n, 1usize..=n), 1..40).prop_map(move |raw| {
            raw.into_iter()
                .map(|(s, e)| {
                    let s = s.min(n - 1);
                    let e = e.clamp(s + 1, n);
                    (s, e)
                })
                .collect::<Vec<_>>()
        });
        (Just(n), ivs)
    })
}

fn build(n: usize, ivs: &[(usize, usize)]) -> (dagwave_graph::Digraph, DipathFamily) {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, i + 1)).collect();
    let g = from_edges(n + 1, &edges);
    let family: DipathFamily = ivs
        .iter()
        .map(|&(s, e)| {
            let route: Vec<VertexId> = (s..=e).map(VertexId::from_index).collect();
            Dipath::from_vertices(&g, &route).unwrap()
        })
        .collect();
    (g, family)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Load table equals brute-force membership counting; parallel agrees.
    #[test]
    fn load_tables_agree((n, ivs) in interval_family()) {
        let (g, family) = build(n, &ivs);
        let table = load::load_table(&g, &family);
        let par = load::load_table_parallel(&g, &family);
        prop_assert_eq!(&table, &par);
        for a in g.arc_ids() {
            prop_assert_eq!(table[a.index()], load::arc_load(&family, a));
        }
        let pi = load::max_load(&g, &family);
        prop_assert_eq!(pi, table.iter().copied().max().unwrap_or(0));
        if pi > 0 {
            let (arc, l) = load::max_load_arc(&g, &family).unwrap();
            prop_assert_eq!(l, pi);
            prop_assert_eq!(table[arc.index()], pi);
        }
    }

    /// On a chain, dipaths conflict iff their intervals overlap; the
    /// conflict graph is exactly the interval-overlap graph.
    #[test]
    fn conflict_graph_is_interval_graph((n, ivs) in interval_family()) {
        let (g, family) = build(n, &ivs);
        let cg = ConflictGraph::build(&g, &family);
        let par = ConflictGraph::build_parallel(&g, &family);
        prop_assert_eq!(cg.edge_count(), par.edge_count());
        for (i, &(s1, e1)) in ivs.iter().enumerate() {
            for (j, &(s2, e2)) in ivs.iter().enumerate() {
                if i < j {
                    let overlap = s1.max(s2) < e1.min(e2);
                    prop_assert_eq!(
                        cg.are_adjacent(PathId::from_index(i), PathId::from_index(j)),
                        overlap,
                        "intervals ({},{}) vs ({},{})", s1, e1, s2, e2
                    );
                }
            }
        }
    }

    /// Intersections on a chain are single intervals of the right size.
    #[test]
    fn chain_intersections_are_intervals((n, ivs) in interval_family()) {
        let (g, family) = build(n, &ivs);
        let _ = g;
        for (i, p) in family.iter() {
            for (j, q) in family.iter() {
                if i >= j { continue; }
                let ix = conflict::Intersection::of(p, q);
                let (s1, e1) = ivs[i.index()];
                let (s2, e2) = ivs[j.index()];
                let expected = e1.min(e2).saturating_sub(s1.max(s2));
                prop_assert_eq!(ix.shared_arc_count(), expected);
                prop_assert!(ix.is_empty() || ix.is_single_interval());
            }
        }
    }

    /// The chain's conflict graph is an interval graph, so the classic
    /// left-endpoint greedy colors it with exactly π colors — a
    /// self-contained confirmation that π = w on paths (the paper's [4]
    /// setting), independent of dagwave-core.
    #[test]
    fn chain_chromatic_equals_load((n, ivs) in interval_family()) {
        let (g, family) = build(n, &ivs);
        let pi = load::max_load(&g, &family);
        // Greedy sweep by left endpoint.
        let mut order: Vec<usize> = (0..ivs.len()).collect();
        order.sort_by_key(|&i| ivs[i]);
        let mut colors = vec![usize::MAX; ivs.len()];
        let mut used = 0usize;
        for &i in &order {
            let (s1, e1) = ivs[i];
            let mut taken: Vec<usize> = (0..ivs.len())
                .filter(|&j| colors[j] != usize::MAX)
                .filter(|&j| {
                    let (s2, e2) = ivs[j];
                    s1.max(s2) < e1.min(e2)
                })
                .map(|j| colors[j])
                .collect();
            taken.sort_unstable();
            taken.dedup();
            let mut c = 0;
            while taken.binary_search(&c).is_ok() { c += 1; }
            colors[i] = c;
            used = used.max(c + 1);
        }
        prop_assert_eq!(used, pi, "interval greedy achieves the load");
        // And it is a proper coloring w.r.t. the conflict graph.
        let cg = ConflictGraph::build(&g, &family);
        for (a, b) in cg.edges() {
            prop_assert_ne!(colors[a.index()], colors[b.index()]);
        }
    }

    /// Replication scales loads linearly and preserves conflicts.
    #[test]
    fn replication_scales((n, ivs) in interval_family(), h in 1usize..4) {
        let (g, family) = build(n, &ivs);
        let big = family.replicate(h);
        prop_assert_eq!(big.len(), family.len() * h);
        prop_assert_eq!(load::max_load(&g, &big), load::max_load(&g, &family) * h);
    }

    /// Stats are internally consistent.
    #[test]
    fn stats_consistency((n, ivs) in interval_family()) {
        let (g, family) = build(n, &ivs);
        let s = dagwave_paths::stats::InstanceStats::compute(&g, &family);
        prop_assert_eq!(s.paths, family.len());
        prop_assert_eq!(s.total_traversals, family.total_arcs());
        let hist_sum: usize = s.load_histogram.iter().sum();
        prop_assert_eq!(hist_sum, g.arc_count());
        let weighted: usize = s
            .load_histogram
            .iter()
            .enumerate()
            .map(|(l, &cnt)| l * cnt)
            .sum();
        prop_assert_eq!(weighted, s.total_traversals);
    }
}
