//! Property tests for the graph substrate: topological-order invariants,
//! reachability consistency, undirected cycle machinery, and UPP counting.

use dagwave_graph::builder::from_edges;
use dagwave_graph::{pathcount, reach, topo, undirected, Digraph, SubgraphView, VertexId};
use proptest::prelude::*;

/// Random DAG as an edge list with edges oriented low → high (always
/// acyclic) over `n` vertices.
fn dag_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (3usize..40).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0usize..n, 0usize..n), 0..3 * n).prop_map(move |pairs| {
                pairs
                    .into_iter()
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| (a.min(b), a.max(b)))
                    .collect::<Vec<_>>()
            });
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topo_order_respects_all_arcs((n, edges) in dag_strategy()) {
        let g = from_edges(n, &edges);
        let order = topo::topological_order(&g).expect("low→high edges are acyclic");
        prop_assert_eq!(order.len(), n);
        let rank = topo::topological_rank(&g).unwrap();
        for (_, arc) in g.arcs() {
            prop_assert!(rank[arc.tail.index()] < rank[arc.head.index()]);
        }
    }

    #[test]
    fn closure_matches_bfs((n, edges) in dag_strategy()) {
        let g = from_edges(n, &edges);
        let closure = reach::transitive_closure(&g);
        let par = reach::transitive_closure_parallel(&g);
        for u in 0..n {
            let bfs = reach::reachable_from(&g, VertexId::from_index(u));
            prop_assert_eq!(closure[u].iter().collect::<Vec<_>>(), bfs.iter().collect::<Vec<_>>());
            prop_assert_eq!(par[u].iter().collect::<Vec<_>>(), bfs.iter().collect::<Vec<_>>());
        }
    }

    #[test]
    fn forward_backward_reachability_agree((n, edges) in dag_strategy()) {
        let g = from_edges(n, &edges);
        for u in 0..n.min(8) {
            for v in 0..n.min(8) {
                let fwd = reach::is_reachable(&g, VertexId::from_index(u), VertexId::from_index(v));
                let bwd = reach::reaching_to(&g, VertexId::from_index(v)).contains(u);
                prop_assert_eq!(fwd, bwd);
            }
        }
    }

    #[test]
    fn underlying_cycle_iff_not_forest((n, edges) in dag_strategy()) {
        let g = from_edges(n, &edges);
        let view = SubgraphView::full(&g);
        let forest = undirected::is_underlying_forest(&view);
        let found = undirected::find_underlying_cycle(&view);
        prop_assert_eq!(forest, found.is_none());
        if let Some(cycle) = found {
            prop_assert!(cycle.validate(&g));
        }
        // Cyclomatic number 0 ⟺ forest.
        prop_assert_eq!(undirected::cyclomatic_number(&view) == 0, forest);
    }

    #[test]
    fn upp_agrees_with_enumeration((n, edges) in dag_strategy()) {
        let g = from_edges(n, &edges);
        let upp = pathcount::is_upp(&g);
        // Cross-check on a sample of pairs with capped enumeration.
        let mut any_double = false;
        for u in 0..n.min(10) {
            for v in 0..n.min(10) {
                if u == v { continue; }
                let paths = pathcount::enumerate_dipaths(
                    &g, VertexId::from_index(u), VertexId::from_index(v), 2);
                if paths.len() >= 2 {
                    any_double = true;
                }
            }
        }
        if any_double {
            prop_assert!(!upp, "found two dipaths, UPP must be false");
        }
        if let Some((u, v)) = pathcount::upp_violation(&g) {
            prop_assert!(!upp);
            let paths = pathcount::enumerate_dipaths(&g, u, v, 2);
            prop_assert_eq!(paths.len(), 2, "violation pair has two dipaths");
        } else {
            prop_assert!(upp);
        }
    }

    #[test]
    fn shortest_path_is_minimal((n, edges) in dag_strategy()) {
        let g = from_edges(n, &edges);
        for u in 0..n.min(6) {
            for v in 0..n.min(6) {
                if u == v { continue; }
                let (uu, vv) = (VertexId::from_index(u), VertexId::from_index(v));
                if let Some(p) = reach::shortest_dipath(&g, uu, vv) {
                    // Chained and minimal vs capped enumeration.
                    for w in p.windows(2) {
                        prop_assert_eq!(g.head(w[0]), g.tail(w[1]));
                    }
                    let all = pathcount::enumerate_dipaths(&g, uu, vv, 50);
                    let min = all.iter().map(|q| q.len()).min().unwrap();
                    prop_assert_eq!(p.len(), min);
                }
            }
        }
    }

    #[test]
    fn longest_path_depths_are_consistent((n, edges) in dag_strategy()) {
        let g = from_edges(n, &edges);
        let depth = topo::longest_path_lengths(&g).unwrap();
        for (_, arc) in g.arcs() {
            prop_assert!(depth[arc.head.index()] > depth[arc.tail.index()]);
        }
    }
}

#[test]
fn subgraph_view_masks_compose() {
    let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
    let mut view = SubgraphView::full(&g);
    view.remove_vertex(VertexId(3));
    let (sub, vmap, amap) = view.to_digraph();
    assert_eq!(sub.vertex_count(), 5);
    // Arcs 2→3 and 3→4 vanish.
    assert_eq!(sub.arc_count(), 4);
    assert!(vmap[3].is_none());
    assert_eq!(amap.iter().filter(|m| m.is_some()).count(), 4);
    assert!(topo::is_dag(&sub));
}

#[test]
fn digraph_clone_is_independent() {
    let mut g = Digraph::new();
    let a = g.add_vertex();
    let b = g.add_vertex();
    g.add_arc(a, b);
    let snapshot = g.clone();
    g.add_vertex();
    g.add_arc(b, VertexId(2));
    assert_eq!(snapshot.vertex_count(), 2);
    assert_eq!(snapshot.arc_count(), 1);
    assert_eq!(g.arc_count(), 2);
}
