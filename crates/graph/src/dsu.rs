//! Union-find (disjoint-set union) with union by rank and path compression.
//!
//! The internal-cycle detector reduces to "does the underlying undirected
//! multigraph of the internal subgraph contain a cycle", which is a forest
//! check: process edges through a union-find and report the first edge whose
//! endpoints are already connected.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`. Returns `false` if they were already
    /// in the same set (i.e. the edge `{a,b}` would close a cycle).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Reset every element back to a singleton set, reusing the existing
    /// allocation — the cheap half of a delta rebuild: a caller that
    /// re-derives a partition after each mutation batch resets its scratch
    /// structure instead of reallocating it.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.rank.fill(0);
        self.components = self.parent.len();
    }

    /// Grow the universe to `n` elements; the new elements `len()..n` start
    /// as singletons and existing sets are untouched. No-op when `n` is not
    /// larger than the current size.
    pub fn grow(&mut self, n: usize) {
        let old = self.parent.len();
        if n <= old {
            return;
        }
        self.parent.extend(old as u32..n as u32);
        self.rank.resize(n, 0);
        self.components += n - old;
    }

    /// Shadow structural validation (debug builds only; release builds
    /// compile this to nothing). Checks the forest invariants a corrupted
    /// `grow`/`reset`/`union` would break: every parent pointer in range,
    /// rank strictly increasing along parent chains (union by rank plus
    /// path halving preserves this), and the cached component count equal
    /// to the number of roots. Run by the partition extractors — they are
    /// already O(n), so the audit never changes a caller's complexity.
    fn debug_validate(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let n = self.parent.len();
        let mut roots = 0usize;
        for (i, &p) in self.parent.iter().enumerate() {
            debug_assert!(
                (p as usize) < n,
                "parent[{i}] = {p} out of range for universe of {n}"
            );
            if p as usize == i {
                roots += 1;
            } else {
                debug_assert!(
                    self.rank[p as usize] > self.rank[i],
                    "rank must strictly increase along parent chains: \
                     rank[{i}] = {} !< rank[{p}] = {}",
                    self.rank[i],
                    self.rank[p as usize]
                );
            }
        }
        debug_assert_eq!(
            roots, self.components,
            "cached component count diverged from the number of roots"
        );
    }

    /// The sets restricted to `members`: like [`UnionFind::components`], but
    /// only the listed elements appear in the output (sets with no listed
    /// member are omitted, sets are ordered by their smallest *listed*
    /// member, members ascend within each set). Duplicated members are
    /// deduplicated. This is the delta-rebuild primitive: after re-unioning
    /// only the dirty part of a structure, the caller extracts just the
    /// dirty sets without paying for the clean remainder.
    pub fn components_among(&mut self, members: &[usize]) -> Vec<Vec<usize>> {
        self.debug_validate();
        let mut members: Vec<usize> = members.to_vec();
        members.sort_unstable();
        members.dedup();
        // slot[root] = position of that root's set in the output; roots are
        // discovered in ascending member order, so sets come out canonical.
        let mut slot = std::collections::HashMap::new();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        for &x in &members {
            let r = self.find(x);
            let s = *slot.entry(r).or_insert_with(|| {
                sets.push(Vec::new());
                sets.len() - 1
            });
            sets[s].push(x);
        }
        sets
    }

    /// The disjoint sets as explicit member lists, in a canonical order:
    /// members ascend within each set and sets are ordered by their smallest
    /// member. The output is therefore independent of the union sequence
    /// that produced the partition — callers (e.g. conflict-graph
    /// decomposition) can rely on it as a deterministic shard order.
    pub fn components(&mut self) -> Vec<Vec<usize>> {
        self.debug_validate();
        let n = self.len();
        // slot[root] = position of that root's set in the output.
        let mut slot = vec![usize::MAX; n];
        let mut sets: Vec<Vec<usize>> = Vec::with_capacity(self.components);
        for x in 0..n {
            let r = self.find(x);
            if slot[r] == usize::MAX {
                slot[r] = sets.len();
                sets.push(Vec::new());
            }
            sets[slot[r]].push(x);
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn union_detects_cycle_edge() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        // Closing edge of a triangle: endpoints already connected.
        assert!(!uf.union(2, 0));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn large_chain_path_compression() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            assert!(uf.union(i - 1, i));
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
        assert_eq!(uf.component_count(), 0);
        assert!(uf.components().is_empty());
    }

    #[test]
    fn components_of_singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.components(), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn components_single_element() {
        let mut uf = UnionFind::new(1);
        assert_eq!(uf.components(), vec![vec![0]]);
    }

    #[test]
    fn components_are_canonical_regardless_of_union_order() {
        // The same partition {0,3,4} {1,2} built two different ways.
        let mut a = UnionFind::new(5);
        a.union(3, 0);
        a.union(4, 3);
        a.union(2, 1);
        let mut b = UnionFind::new(5);
        b.union(1, 2);
        b.union(0, 4);
        b.union(4, 3);
        let expected = vec![vec![0, 3, 4], vec![1, 2]];
        assert_eq!(a.components(), expected);
        assert_eq!(b.components(), expected);
        assert_eq!(a.component_count(), 2);
    }

    #[test]
    fn reset_restores_singletons_in_place() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(3, 4);
        assert_eq!(uf.component_count(), 3);
        uf.reset();
        assert_eq!(uf.component_count(), 6);
        assert_eq!(uf.len(), 6);
        for i in 0..6 {
            assert_eq!(uf.find(i), i);
        }
        // Usable again after the reset.
        assert!(uf.union(4, 5));
        assert!(uf.connected(4, 5));
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn grow_adds_singletons_and_keeps_sets() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 2);
        uf.grow(6);
        assert_eq!(uf.len(), 6);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.connected(0, 2));
        for i in 3..6 {
            assert_eq!(uf.find(i), i);
        }
        // Shrinking (or equal) requests are no-ops.
        uf.grow(4);
        assert_eq!(uf.len(), 6);
        uf.grow(6);
        assert_eq!(uf.len(), 6);
    }

    #[test]
    fn components_among_restricts_and_stays_canonical() {
        // Partition {0,3,4} {1,2} {5}; restrict to various member subsets.
        let mut uf = UnionFind::new(6);
        uf.union(3, 0);
        uf.union(4, 3);
        uf.union(2, 1);
        assert_eq!(
            uf.components_among(&[0, 1, 2, 3, 4, 5]),
            vec![vec![0, 3, 4], vec![1, 2], vec![5]]
        );
        // Subset: sets with no listed member vanish, listed members only.
        assert_eq!(
            uf.components_among(&[4, 2, 3]),
            vec![vec![2], vec![3, 4]],
            "ordered by smallest listed member"
        );
        // Duplicates are deduplicated; empty restriction is empty.
        assert_eq!(uf.components_among(&[1, 1, 1]), vec![vec![1]]);
        assert!(uf.components_among(&[]).is_empty());
        // Restricting to everything matches the unrestricted form.
        let all: Vec<usize> = (0..6).collect();
        assert_eq!(uf.components_among(&all), uf.components());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of range")]
    fn shadow_validation_catches_corrupted_parent_pointers() {
        let mut uf = UnionFind::new(3);
        uf.parent[1] = 9; // dangling pointer past the universe
        let _ = uf.components();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "component count diverged")]
    fn shadow_validation_catches_stale_component_count() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.components = 4; // stale cache: only 3 roots remain
        let _ = uf.components_among(&[0, 1, 2, 3]);
    }

    #[test]
    fn components_match_component_count() {
        let mut uf = UnionFind::new(8);
        uf.union(0, 7);
        uf.union(2, 5);
        uf.union(5, 6);
        let comps = uf.components();
        assert_eq!(comps.len(), uf.component_count());
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, uf.len());
    }
}
