//! Union-find (disjoint-set union) with union by rank and path compression.
//!
//! The internal-cycle detector reduces to "does the underlying undirected
//! multigraph of the internal subgraph contain a cycle", which is a forest
//! check: process edges through a union-find and report the first edge whose
//! endpoints are already connected.

/// Disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when the structure holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x` (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`. Returns `false` if they were already
    /// in the same set (i.e. the edge `{a,b}` would close a cycle).
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert!(uf.union(1, 2));
        assert!(uf.connected(0, 3));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn union_detects_cycle_edge() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        // Closing edge of a triangle: endpoints already connected.
        assert!(!uf.union(2, 0));
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn large_chain_path_compression() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            assert!(uf.union(i - 1, i));
        }
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.len(), 0);
        assert_eq!(uf.component_count(), 0);
    }
}
