//! Ergonomic construction of digraphs from edge lists and named vertices.
//!
//! Figures in the paper are specified with letter-named vertices
//! (`a1, b1, c1, …`); the builder keeps a name → id map so generators and
//! tests can be written in the paper's own notation.

use crate::digraph::Digraph;
use crate::error::GraphError;
use crate::ids::{ArcId, VertexId};
use std::collections::HashMap;

/// Incremental digraph builder with optional string-named vertices.
#[derive(Default)]
pub struct DigraphBuilder {
    graph: Digraph,
    names: HashMap<String, VertexId>,
    labels: Vec<Option<String>>,
}

impl DigraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the vertex with the given name.
    pub fn vertex(&mut self, name: &str) -> VertexId {
        if let Some(&v) = self.names.get(name) {
            return v;
        }
        let v = self.graph.add_vertex();
        self.names.insert(name.to_owned(), v);
        self.labels.push(Some(name.to_owned()));
        v
    }

    /// Add an anonymous vertex.
    pub fn anon(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        self.labels.push(None);
        v
    }

    /// Add an arc between named vertices, creating them as needed.
    pub fn arc(&mut self, tail: &str, head: &str) -> ArcId {
        let (t, h) = (self.vertex(tail), self.vertex(head));
        self.graph.add_arc(t, h)
    }

    /// Add an arc between existing ids.
    pub fn arc_ids(&mut self, tail: VertexId, head: VertexId) -> Result<ArcId, GraphError> {
        self.graph.try_add_arc(tail, head)
    }

    /// Add a chain of arcs through the named vertices, e.g.
    /// `chain(&["a", "b", "c"])` adds `a→b` and `b→c`. Returns the arc ids.
    pub fn chain(&mut self, names: &[&str]) -> Vec<ArcId> {
        names.windows(2).map(|w| self.arc(w[0], w[1])).collect()
    }

    /// Look up a named vertex without creating it.
    pub fn get(&self, name: &str) -> Option<VertexId> {
        self.names.get(name).copied()
    }

    /// Label of vertex `v` if it was created by name.
    pub fn label(&self, v: VertexId) -> Option<&str> {
        self.labels.get(v.index()).and_then(|l| l.as_deref())
    }

    /// Number of vertices built so far.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Borrow the graph under construction.
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// Finish, returning the digraph.
    pub fn build(self) -> Digraph {
        self.graph
    }

    /// Finish, returning the digraph and the name → id map.
    pub fn build_named(self) -> (Digraph, HashMap<String, VertexId>) {
        (self.graph, self.names)
    }
}

/// Build a digraph with `n` vertices from an edge list of index pairs.
///
/// ```
/// let g = dagwave_graph::builder::from_edges(3, &[(0, 1), (1, 2)]);
/// assert_eq!(g.arc_count(), 2);
/// ```
pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Digraph {
    let mut g = Digraph::with_vertices(n);
    for &(t, h) in edges {
        g.add_arc(VertexId::from_index(t), VertexId::from_index(h));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_vertices_are_deduplicated() {
        let mut b = DigraphBuilder::new();
        let a1 = b.vertex("a");
        let a2 = b.vertex("a");
        assert_eq!(a1, a2);
        assert_eq!(b.vertex_count(), 1);
    }

    #[test]
    fn arcs_by_name() {
        let mut b = DigraphBuilder::new();
        b.arc("a", "b");
        b.arc("b", "c");
        let (g, names) = b.build_named();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.arc_count(), 2);
        let a = names["a"];
        let b_ = names["b"];
        assert!(g.find_arc(a, b_).is_some());
    }

    #[test]
    fn chain_builds_consecutive_arcs() {
        let mut b = DigraphBuilder::new();
        let arcs = b.chain(&["s", "x", "y", "t"]);
        assert_eq!(arcs.len(), 3);
        let g = b.build();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.arc_count(), 3);
    }

    #[test]
    fn labels_and_lookup() {
        let mut b = DigraphBuilder::new();
        let v = b.vertex("root");
        let anon = b.anon();
        assert_eq!(b.label(v), Some("root"));
        assert_eq!(b.label(anon), None);
        assert_eq!(b.get("root"), Some(v));
        assert_eq!(b.get("missing"), None);
    }

    #[test]
    fn from_edges_constructor() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.sources().len(), 1);
    }

    #[test]
    fn arc_ids_validates() {
        let mut b = DigraphBuilder::new();
        let v = b.vertex("a");
        assert!(b.arc_ids(v, v).is_err(), "self-loop rejected");
    }
}
