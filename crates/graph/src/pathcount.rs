//! Saturating dipath counting — the Unique-diPath-Property primitive.
//!
//! A DAG is an **UPP-DAG** (paper, Section 2) when there is at most one
//! dipath between any ordered vertex pair. Exact path counts explode
//! combinatorially, but the UPP test only needs to distinguish 0 / 1 / "2 or
//! more", so counts saturate at 2 and the DP stays O(V·E).

use crate::digraph::Digraph;
use crate::ids::VertexId;
use crate::topo;
use rayon::prelude::*;

/// A dipath count clamped at 2 ("two or more").
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SatCount {
    /// No dipath.
    Zero,
    /// Exactly one dipath.
    One,
    /// Two or more dipaths.
    Many,
}

impl SatCount {
    fn add(self, other: SatCount) -> SatCount {
        use SatCount::*;
        match (self, other) {
            (Zero, x) | (x, Zero) => x,
            (One, One) => Many,
            _ => Many,
        }
    }
}

/// Saturating number of dipaths from `from` to every vertex.
///
/// `counts[v]` is the number of distinct dipaths `from → … → v` clamped at
/// two; `counts[from]` is [`SatCount::One`] (the empty dipath). Requires a
/// DAG; panics otherwise (callers validate with [`topo::is_dag`] first).
pub fn saturating_path_counts(g: &Digraph, from: VertexId) -> Vec<SatCount> {
    let order = topo::topological_order(g).expect("saturating_path_counts requires a DAG"); // lint: allow(no-panic): documented contract: callers validate acyclicity first
    let mut counts = vec![SatCount::Zero; g.vertex_count()];
    counts[from.index()] = SatCount::One;
    for v in order {
        if counts[v.index()] == SatCount::Zero {
            continue;
        }
        let cv = counts[v.index()];
        for w in g.successors(v) {
            counts[w.index()] = counts[w.index()].add(cv);
        }
    }
    counts
}

/// `true` if between every ordered pair of vertices there is at most one
/// dipath — the paper's UPP property. Runs one saturating DP per vertex,
/// in parallel with rayon.
pub fn is_upp(g: &Digraph) -> bool {
    if !topo::is_dag(g) {
        return false;
    }
    (0..g.vertex_count()).into_par_iter().all(|i| {
        let counts = saturating_path_counts(g, VertexId::from_index(i));
        counts.iter().all(|&c| c != SatCount::Many)
    })
}

/// If the DAG violates UPP, return a witness pair `(u, v)` with at least two
/// distinct dipaths `u → v`; `None` when the digraph is UPP.
pub fn upp_violation(g: &Digraph) -> Option<(VertexId, VertexId)> {
    if !topo::is_dag(g) {
        return None;
    }
    let found: Vec<(VertexId, VertexId)> = (0..g.vertex_count())
        .into_par_iter()
        .filter_map(|i| {
            let from = VertexId::from_index(i);
            let counts = saturating_path_counts(g, from);
            counts
                .iter()
                .position(|&c| c == SatCount::Many)
                .map(|j| (from, VertexId::from_index(j)))
        })
        .collect();
    found.into_iter().min()
}

/// Enumerate all dipaths from `from` to `to` as arc sequences, stopping after
/// `cap` paths (guards against exponential blowup; returns at most `cap`).
pub fn enumerate_dipaths(
    g: &Digraph,
    from: VertexId,
    to: VertexId,
    cap: usize,
) -> Vec<Vec<crate::ids::ArcId>> {
    let mut results = Vec::new();
    if cap == 0 {
        return results;
    }
    // Prune: only explore vertices that can still reach `to`.
    let can_reach = crate::reach::reaching_to(g, to);
    if !can_reach.contains(from.index()) {
        return results;
    }
    let mut prefix = Vec::new();
    dfs_paths(g, from, to, &can_reach, cap, &mut prefix, &mut results);
    results
}

fn dfs_paths(
    g: &Digraph,
    cur: VertexId,
    to: VertexId,
    can_reach: &crate::bitset::BitSet,
    cap: usize,
    prefix: &mut Vec<crate::ids::ArcId>,
    results: &mut Vec<Vec<crate::ids::ArcId>>,
) {
    if results.len() >= cap {
        return;
    }
    if cur == to && !prefix.is_empty() {
        results.push(prefix.clone());
        return;
    }
    if cur == to {
        // Zero-length dipath from == to is not a "dipath" in the paper
        // (dipaths are arc sequences); callers wanting it handle it upstream.
        return;
    }
    for &a in g.out_arcs(cur) {
        let w = g.head(a);
        if !can_reach.contains(w.index()) {
            continue;
        }
        prefix.push(a);
        dfs_paths(g, w, to, can_reach, cap, prefix, results);
        prefix.pop();
        if results.len() >= cap {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    #[test]
    fn chain_is_upp() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_upp(&g));
        assert_eq!(upp_violation(&g), None);
    }

    #[test]
    fn diamond_violates_upp() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(!is_upp(&g));
        assert_eq!(upp_violation(&g), Some((v(0), v(3))));
    }

    #[test]
    fn out_tree_is_upp() {
        // Rooted out-tree: unique dipath from root to everything.
        let g = from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        assert!(is_upp(&g));
    }

    #[test]
    fn saturating_counts() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let c = saturating_path_counts(&g, v(0));
        assert_eq!(c[0], SatCount::One);
        assert_eq!(c[1], SatCount::One);
        assert_eq!(c[2], SatCount::One);
        assert_eq!(c[3], SatCount::Many);
    }

    #[test]
    fn counts_do_not_overflow_on_exponential_dag() {
        // Chain of k diamonds: 2^k paths; DP must stay fast and saturate.
        let k = 60;
        let mut edges = Vec::new();
        for i in 0..k {
            let base = 3 * i;
            edges.push((base, base + 1));
            edges.push((base, base + 2));
            edges.push((base + 1, base + 3));
            edges.push((base + 2, base + 3));
        }
        let g = from_edges(3 * k + 1, &edges);
        let c = saturating_path_counts(&g, v(0));
        assert_eq!(c[3 * k], SatCount::Many);
    }

    #[test]
    fn parallel_arcs_break_upp() {
        let g = from_edges(2, &[(0, 1), (0, 1)]);
        assert!(!is_upp(&g));
        assert_eq!(upp_violation(&g), Some((v(0), v(1))));
    }

    #[test]
    fn cyclic_graph_is_not_upp() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        assert!(!is_upp(&g));
    }

    #[test]
    fn enumerate_paths_in_diamond() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let paths = enumerate_dipaths(&g, v(0), v(3), 10);
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert_eq!(g.tail(p[0]), v(0));
            assert_eq!(g.head(p[1]), v(3));
        }
    }

    #[test]
    fn enumerate_respects_cap() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let paths = enumerate_dipaths(&g, v(0), v(3), 1);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn enumerate_unreachable_is_empty() {
        let g = from_edges(3, &[(0, 1)]);
        assert!(enumerate_dipaths(&g, v(1), v(0), 5).is_empty());
        assert!(enumerate_dipaths(&g, v(0), v(2), 5).is_empty());
    }

    #[test]
    fn upp_dag_with_oriented_cycle() {
        // The underlying graph may have cycles while the digraph stays UPP:
        // b1→c1, b2→c1, b2→c2, b1→c2 is a 4-cycle but every pair has ≤ 1
        // dipath (all dipaths are single arcs).
        let g = from_edges(4, &[(0, 2), (1, 2), (1, 3), (0, 3)]);
        assert!(is_upp(&g));
    }
}
