//! Compressed sparse row (CSR) snapshot of a digraph.
//!
//! The arena [`Digraph`] stores per-vertex `Vec`s — ideal
//! for construction, but each adjacency list is its own allocation. For the
//! read-heavy phases (peeling, reachability sweeps, load computation over
//! millions of dipath arcs) a CSR snapshot packs all out-arcs (and
//! in-arcs) into two flat arrays each, halving memory and making neighbor
//! iteration a contiguous scan (perf-book: prefer dense, boxed-slice
//! layouts for hot read-only data).

use crate::digraph::Digraph;
use crate::ids::{ArcId, VertexId};

/// Immutable CSR view of a digraph (out- and in-adjacency).
#[derive(Clone, Debug)]
pub struct Csr {
    /// `out_start[v] .. out_start[v+1]` indexes `out_arcs`.
    out_start: Box<[u32]>,
    out_arcs: Box<[ArcId]>,
    in_start: Box<[u32]>,
    in_arcs: Box<[ArcId]>,
    /// Arc endpoints, indexed by arc id: `(tail, head)`.
    endpoints: Box<[(VertexId, VertexId)]>,
}

impl Csr {
    /// Snapshot `g`.
    pub fn from_digraph(g: &Digraph) -> Self {
        let n = g.vertex_count();
        let m = g.arc_count();
        let mut out_start = Vec::with_capacity(n + 1);
        let mut out_arcs = Vec::with_capacity(m);
        let mut in_start = Vec::with_capacity(n + 1);
        let mut in_arcs = Vec::with_capacity(m);
        for v in g.vertices() {
            out_start.push(out_arcs.len() as u32);
            out_arcs.extend_from_slice(g.out_arcs(v));
            in_start.push(in_arcs.len() as u32);
            in_arcs.extend_from_slice(g.in_arcs(v));
        }
        out_start.push(out_arcs.len() as u32);
        in_start.push(in_arcs.len() as u32);
        let endpoints = g
            .arcs()
            .map(|(_, a)| (a.tail, a.head))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Csr {
            out_start: out_start.into_boxed_slice(),
            out_arcs: out_arcs.into_boxed_slice(),
            in_start: in_start.into_boxed_slice(),
            in_arcs: in_arcs.into_boxed_slice(),
            endpoints,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.out_start.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Outgoing arc ids of `v` (contiguous slice).
    #[inline]
    pub fn out_arcs(&self, v: VertexId) -> &[ArcId] {
        let (s, e) = (
            self.out_start[v.index()] as usize,
            self.out_start[v.index() + 1] as usize,
        );
        &self.out_arcs[s..e]
    }

    /// Incoming arc ids of `v`.
    #[inline]
    pub fn in_arcs(&self, v: VertexId) -> &[ArcId] {
        let (s, e) = (
            self.in_start[v.index()] as usize,
            self.in_start[v.index() + 1] as usize,
        );
        &self.in_arcs[s..e]
    }

    /// Tail of arc `a`.
    #[inline]
    pub fn tail(&self, a: ArcId) -> VertexId {
        self.endpoints[a.index()].0
    }

    /// Head of arc `a`.
    #[inline]
    pub fn head(&self, a: ArcId) -> VertexId {
        self.endpoints[a.index()].1
    }

    /// Outdegree of `v`.
    #[inline]
    pub fn outdegree(&self, v: VertexId) -> usize {
        self.out_arcs(v).len()
    }

    /// Indegree of `v`.
    #[inline]
    pub fn indegree(&self, v: VertexId) -> usize {
        self.in_arcs(v).len()
    }

    /// Kahn topological order directly on the CSR (allocation-light).
    pub fn topological_order(&self) -> Option<Vec<VertexId>> {
        let n = self.vertex_count();
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| self.indegree(VertexId::from_index(i)) as u32)
            .collect();
        let mut order: Vec<VertexId> = (0..n)
            .map(VertexId::from_index)
            .filter(|&v| indeg[v.index()] == 0)
            .collect();
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            for &a in self.out_arcs(v) {
                let w = self.head(a);
                indeg[w.index()] -= 1;
                if indeg[w.index()] == 0 {
                    order.push(w);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    #[test]
    fn snapshot_matches_digraph() {
        let g = from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        let csr = Csr::from_digraph(&g);
        assert_eq!(csr.vertex_count(), g.vertex_count());
        assert_eq!(csr.arc_count(), g.arc_count());
        for vert in g.vertices() {
            assert_eq!(csr.out_arcs(vert), g.out_arcs(vert));
            assert_eq!(csr.in_arcs(vert), g.in_arcs(vert));
            assert_eq!(csr.outdegree(vert), g.outdegree(vert));
            assert_eq!(csr.indegree(vert), g.indegree(vert));
        }
        for (id, arc) in g.arcs() {
            assert_eq!(csr.tail(id), arc.tail);
            assert_eq!(csr.head(id), arc.head);
        }
    }

    #[test]
    fn csr_topo_matches_digraph_topo() {
        let g = from_edges(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (3, 5)]);
        let csr = Csr::from_digraph(&g);
        let order = csr.topological_order().expect("DAG");
        assert_eq!(order.len(), 6);
        let mut rank = [0usize; 6];
        for (i, w) in order.iter().enumerate() {
            rank[w.index()] = i;
        }
        for (_, arc) in g.arcs() {
            assert!(rank[arc.tail.index()] < rank[arc.head.index()]);
        }
    }

    #[test]
    fn csr_detects_cycles() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let csr = Csr::from_digraph(&g);
        assert!(csr.topological_order().is_none());
    }

    #[test]
    fn empty_and_isolated() {
        let g = crate::Digraph::with_vertices(3);
        let csr = Csr::from_digraph(&g);
        assert_eq!(csr.arc_count(), 0);
        assert_eq!(csr.out_arcs(v(1)), &[]);
        assert_eq!(csr.topological_order().unwrap().len(), 3);
    }

    #[test]
    fn parallel_arcs_preserved() {
        let mut g = from_edges(2, &[(0, 1)]);
        g.add_arc(v(0), v(1));
        let csr = Csr::from_digraph(&g);
        assert_eq!(csr.outdegree(v(0)), 2);
        assert_eq!(csr.out_arcs(v(0)).len(), 2);
    }
}
