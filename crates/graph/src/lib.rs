//! # dagwave-graph
//!
//! Directed multigraph substrate for the `dagwave` workspace — the graph
//! layer underneath the RWA (routing and wavelength assignment) algorithms of
//! Bermond & Cosnard, *"Minimum number of wavelengths equals load in a DAG
//! without internal cycle"*, IPDPS 2007.
//!
//! The crate is self-contained (no external graph dependency) and provides:
//!
//! * [`Digraph`] — an arena-style directed multigraph with stable
//!   [`VertexId`]/[`ArcId`] handles, O(1) degree queries and parallel-arc
//!   support (optical fibers between the same pair of nodes are parallel
//!   arcs, and the paper's internal-cycle semantics treat them as a 2-cycle
//!   of the underlying multigraph).
//! * [`topo`] — topological orderings and DAG validation with cycle
//!   witnesses.
//! * [`undirected`] — the *underlying undirected multigraph* view used to
//!   define oriented/internal cycles, including forest checks and explicit
//!   cycle extraction.
//! * [`reach`] — reachability, BFS shortest dipaths, and a rayon-parallel
//!   bitset transitive closure.
//! * [`pathcount`] — saturating dipath counting (the Unique-diPath-Property
//!   test primitive).
//! * [`bitset`], [`dsu`] — dense bitsets and union-find used across the
//!   workspace.
//! * [`dot`] — Graphviz export for debugging and figures.
//!
//! ## Quick example
//!
//! ```
//! use dagwave_graph::{Digraph, topo};
//!
//! let mut g = Digraph::new();
//! let a = g.add_vertex();
//! let b = g.add_vertex();
//! let c = g.add_vertex();
//! g.add_arc(a, b);
//! g.add_arc(b, c);
//! assert!(topo::is_dag(&g));
//! let order = topo::topological_order(&g).unwrap();
//! assert_eq!(order, vec![a, b, c]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod digraph;
pub mod dot;
pub mod dsu;
pub mod error;
pub mod ids;
pub mod pathcount;
pub mod reach;
pub mod topo;
pub mod undirected;
pub mod view;

pub use bitset::BitSet;
pub use builder::DigraphBuilder;
pub use digraph::{Arc, Digraph};
pub use dsu::UnionFind;
pub use error::GraphError;
pub use ids::{ArcId, VertexId};
pub use view::SubgraphView;
