//! Masked subgraph views.
//!
//! Algorithms in the workspace never mutate a [`Digraph`] destructively;
//! instead they operate on a [`SubgraphView`] that masks out vertices and/or
//! arcs. Ids stay stable, so per-id side tables (loads, colors, dipath
//! membership) remain valid for the whole computation — this is what makes
//! the Theorem-1 "peel and replay" implementation cheap.

use crate::bitset::BitSet;
use crate::digraph::Digraph;
use crate::ids::{ArcId, VertexId};

/// A subgraph of a [`Digraph`] defined by vertex and arc masks.
///
/// An arc is present iff its own mask bit is set **and** both endpoints are
/// present. Degree queries are O(degree in the base graph); the view caches
/// nothing, which keeps mask mutation O(1).
pub struct SubgraphView<'g> {
    base: &'g Digraph,
    vertices: BitSet,
    arcs: BitSet,
}

impl<'g> SubgraphView<'g> {
    /// View containing the whole base graph.
    pub fn full(base: &'g Digraph) -> Self {
        let mut vertices = BitSet::new(base.vertex_count());
        for v in base.vertices() {
            vertices.insert(v.index());
        }
        let mut arcs = BitSet::new(base.arc_count());
        for a in base.arc_ids() {
            arcs.insert(a.index());
        }
        SubgraphView {
            base,
            vertices,
            arcs,
        }
    }

    /// View induced on a vertex set: arcs with both endpoints inside are kept.
    pub fn induced(base: &'g Digraph, verts: impl IntoIterator<Item = VertexId>) -> Self {
        let mut vertices = BitSet::new(base.vertex_count());
        for v in verts {
            vertices.insert(v.index());
        }
        let mut arcs = BitSet::new(base.arc_count());
        for (id, arc) in base.arcs() {
            if vertices.contains(arc.tail.index()) && vertices.contains(arc.head.index()) {
                arcs.insert(id.index());
            }
        }
        SubgraphView {
            base,
            vertices,
            arcs,
        }
    }

    /// The base graph.
    pub fn base(&self) -> &'g Digraph {
        self.base
    }

    /// Is vertex `v` present?
    #[inline]
    pub fn has_vertex(&self, v: VertexId) -> bool {
        self.vertices.contains(v.index())
    }

    /// Is arc `a` present (mask bit set and both endpoints present)?
    #[inline]
    pub fn has_arc(&self, a: ArcId) -> bool {
        if !self.arcs.contains(a.index()) {
            return false;
        }
        let arc = self.base.arc(a);
        self.has_vertex(arc.tail) && self.has_vertex(arc.head)
    }

    /// Remove an arc from the view. Returns whether it was present.
    pub fn remove_arc(&mut self, a: ArcId) -> bool {
        self.arcs.remove(a.index())
    }

    /// Re-insert an arc into the view.
    pub fn insert_arc(&mut self, a: ArcId) -> bool {
        self.arcs.insert(a.index())
    }

    /// Remove a vertex (and implicitly its incident arcs) from the view.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        self.vertices.remove(v.index())
    }

    /// Number of present vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.count()
    }

    /// Number of present arcs.
    pub fn arc_count(&self) -> usize {
        self.base.arc_ids().filter(|&a| self.has_arc(a)).count()
    }

    /// Present vertices in id order.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().map(VertexId::from_index)
    }

    /// Present arcs in id order.
    pub fn arcs(&self) -> impl Iterator<Item = ArcId> + '_ {
        self.base.arc_ids().filter(move |&a| self.has_arc(a))
    }

    /// Outdegree of `v` inside the view.
    pub fn outdegree(&self, v: VertexId) -> usize {
        self.base
            .out_arcs(v)
            .iter()
            .filter(|&&a| self.has_arc(a))
            .count()
    }

    /// Indegree of `v` inside the view.
    pub fn indegree(&self, v: VertexId) -> usize {
        self.base
            .in_arcs(v)
            .iter()
            .filter(|&&a| self.has_arc(a))
            .count()
    }

    /// Outgoing present arcs of `v`.
    pub fn out_arcs(&self, v: VertexId) -> impl Iterator<Item = ArcId> + '_ {
        self.base
            .out_arcs(v)
            .iter()
            .copied()
            .filter(move |&a| self.has_arc(a))
    }

    /// Incoming present arcs of `v`.
    pub fn in_arcs(&self, v: VertexId) -> impl Iterator<Item = ArcId> + '_ {
        self.base
            .in_arcs(v)
            .iter()
            .copied()
            .filter(move |&a| self.has_arc(a))
    }

    /// Materialize the view as a standalone digraph plus id maps
    /// (`old vertex id → new`, per-arc `old → new`). Vertices keep relative
    /// order. Useful when handing a subgraph to code that wants a `Digraph`.
    pub fn to_digraph(&self) -> (Digraph, Vec<Option<VertexId>>, Vec<Option<ArcId>>) {
        let mut vmap = vec![None; self.base.vertex_count()];
        let mut g = Digraph::new();
        for v in self.vertices() {
            vmap[v.index()] = Some(g.add_vertex());
        }
        let mut amap = vec![None; self.base.arc_count()];
        for a in self.arcs() {
            let arc = self.base.arc(a);
            let (t, h) = (
                vmap[arc.tail.index()].unwrap(), // lint: allow(no-panic): vmap covers every endpoint of a kept arc
                vmap[arc.head.index()].unwrap(), // lint: allow(no-panic): vmap covers every endpoint of a kept arc
            );
            amap[a.index()] = Some(g.add_arc(t, h));
        }
        (g, vmap, amap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn full_view_matches_base() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let v = SubgraphView::full(&g);
        assert_eq!(v.vertex_count(), 4);
        assert_eq!(v.arc_count(), 3);
        assert_eq!(v.outdegree(VertexId(1)), 1);
        assert_eq!(v.indegree(VertexId(1)), 1);
    }

    #[test]
    fn remove_arc_updates_degrees() {
        let g = from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let mut v = SubgraphView::full(&g);
        let a = g.find_arc(VertexId(0), VertexId(1)).unwrap();
        assert!(v.remove_arc(a));
        assert!(!v.has_arc(a));
        assert_eq!(v.outdegree(VertexId(0)), 1);
        assert_eq!(v.indegree(VertexId(1)), 0);
        assert!(v.insert_arc(a));
        assert_eq!(v.outdegree(VertexId(0)), 2);
    }

    #[test]
    fn remove_vertex_hides_incident_arcs() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let mut v = SubgraphView::full(&g);
        v.remove_vertex(VertexId(1));
        assert_eq!(v.arc_count(), 0);
        assert_eq!(v.vertex_count(), 2);
        assert_eq!(v.outdegree(VertexId(0)), 0);
    }

    #[test]
    fn induced_view() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let v = SubgraphView::induced(&g, [VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(v.vertex_count(), 3);
        // arcs 0→1 and 1→2 survive; 2→3 and 0→3 lose an endpoint.
        assert_eq!(v.arc_count(), 2);
        assert!(!v.has_vertex(VertexId(3)));
    }

    #[test]
    fn to_digraph_remaps_ids() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let v = SubgraphView::induced(&g, [VertexId(1), VertexId(2), VertexId(3)]);
        let (sub, vmap, amap) = v.to_digraph();
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.arc_count(), 2);
        assert_eq!(vmap[0], None);
        assert!(vmap[1].is_some());
        let kept = amap.iter().filter(|m| m.is_some()).count();
        assert_eq!(kept, 2);
    }

    #[test]
    fn iterators_respect_masks() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let mut v = SubgraphView::full(&g);
        v.remove_vertex(VertexId(0));
        let verts: Vec<_> = v.vertices().collect();
        assert_eq!(verts, vec![VertexId(1), VertexId(2)]);
        let arcs: Vec<_> = v.arcs().collect();
        assert_eq!(arcs.len(), 1);
        let outs: Vec<_> = v.out_arcs(VertexId(1)).collect();
        assert_eq!(outs.len(), 1);
        let ins: Vec<_> = v.in_arcs(VertexId(2)).collect();
        assert_eq!(ins.len(), 1);
    }
}
