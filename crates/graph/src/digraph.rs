//! The core directed multigraph type.
//!
//! [`Digraph`] is an append-only arena: vertices and arcs receive dense ids
//! in insertion order and are never removed (algorithms that need "deletion"
//! use [`crate::SubgraphView`] masks, which keeps all per-id tables valid
//! across the workspace). Parallel arcs are allowed; self-loops are rejected
//! because the paper's model is a DAG.

use crate::error::GraphError;
use crate::ids::{ArcId, VertexId};

/// An arc (directed edge) `tail → head`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Arc {
    /// Initial vertex (the arc leaves this vertex).
    pub tail: VertexId,
    /// Terminal vertex (the arc enters this vertex).
    pub head: VertexId,
}

/// A directed multigraph with dense integer ids.
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Digraph {
    arcs: Vec<Arc>,
    /// Outgoing arc ids per vertex, in insertion order.
    out_arcs: Vec<Vec<ArcId>>,
    /// Incoming arc ids per vertex, in insertion order.
    in_arcs: Vec<Vec<ArcId>>,
}

impl Digraph {
    /// Create an empty digraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty digraph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        Digraph {
            arcs: Vec::new(),
            out_arcs: vec![Vec::new(); n],
            in_arcs: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.out_arcs.len()
    }

    /// Number of arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.arcs.len()
    }

    /// Add a new isolated vertex and return its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from_index(self.out_arcs.len());
        self.out_arcs.push(Vec::new());
        self.in_arcs.push(Vec::new());
        id
    }

    /// Add `k` vertices, returning their ids in order.
    pub fn add_vertices(&mut self, k: usize) -> Vec<VertexId> {
        (0..k).map(|_| self.add_vertex()).collect()
    }

    /// Add an arc `tail → head`. Parallel arcs are allowed; self-loops panic
    /// (use [`Digraph::try_add_arc`] for a fallible version).
    pub fn add_arc(&mut self, tail: VertexId, head: VertexId) -> ArcId {
        self.try_add_arc(tail, head).expect("invalid arc endpoints") // lint: allow(no-panic): documented panic contract; try_add_arc is the fallible variant
    }

    /// Fallible [`Digraph::add_arc`].
    pub fn try_add_arc(&mut self, tail: VertexId, head: VertexId) -> Result<ArcId, GraphError> {
        if tail.index() >= self.vertex_count() {
            return Err(GraphError::InvalidVertex(tail));
        }
        if head.index() >= self.vertex_count() {
            return Err(GraphError::InvalidVertex(head));
        }
        if tail == head {
            return Err(GraphError::SelfLoop(tail));
        }
        let id = ArcId::from_index(self.arcs.len());
        self.arcs.push(Arc { tail, head });
        self.out_arcs[tail.index()].push(id);
        self.in_arcs[head.index()].push(id);
        Ok(id)
    }

    /// Endpoints of arc `a`.
    #[inline]
    pub fn arc(&self, a: ArcId) -> Arc {
        self.arcs[a.index()]
    }

    /// Tail (initial vertex) of arc `a`.
    #[inline]
    pub fn tail(&self, a: ArcId) -> VertexId {
        self.arcs[a.index()].tail
    }

    /// Head (terminal vertex) of arc `a`.
    #[inline]
    pub fn head(&self, a: ArcId) -> VertexId {
        self.arcs[a.index()].head
    }

    /// Outdegree of `v` (number of arcs with initial vertex `v`).
    #[inline]
    pub fn outdegree(&self, v: VertexId) -> usize {
        self.out_arcs[v.index()].len()
    }

    /// Indegree of `v` (number of arcs with terminal vertex `v`).
    #[inline]
    pub fn indegree(&self, v: VertexId) -> usize {
        self.in_arcs[v.index()].len()
    }

    /// `true` if `v` is a source (indegree 0).
    #[inline]
    pub fn is_source(&self, v: VertexId) -> bool {
        self.indegree(v) == 0
    }

    /// `true` if `v` is a sink (outdegree 0).
    #[inline]
    pub fn is_sink(&self, v: VertexId) -> bool {
        self.outdegree(v) == 0
    }

    /// `true` if `v` is *internal*: it has both a predecessor and a successor.
    ///
    /// This is the vertex condition in the paper's definition of an internal
    /// cycle (Section 2): "all its vertices have in `G` an indegree > 0 and
    /// an outdegree > 0".
    #[inline]
    pub fn is_internal(&self, v: VertexId) -> bool {
        self.indegree(v) > 0 && self.outdegree(v) > 0
    }

    /// Iterate over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.vertex_count()).map(VertexId::from_index)
    }

    /// Iterate over all arc ids.
    pub fn arc_ids(&self) -> impl Iterator<Item = ArcId> + '_ {
        (0..self.arc_count()).map(ArcId::from_index)
    }

    /// Iterate over `(ArcId, Arc)` pairs.
    pub fn arcs(&self) -> impl Iterator<Item = (ArcId, Arc)> + '_ {
        self.arcs
            .iter()
            .enumerate()
            .map(|(i, &a)| (ArcId::from_index(i), a))
    }

    /// Outgoing arc ids of `v`.
    #[inline]
    pub fn out_arcs(&self, v: VertexId) -> &[ArcId] {
        &self.out_arcs[v.index()]
    }

    /// Incoming arc ids of `v`.
    #[inline]
    pub fn in_arcs(&self, v: VertexId) -> &[ArcId] {
        &self.in_arcs[v.index()]
    }

    /// Out-neighbors of `v` (with multiplicity, in insertion order).
    pub fn successors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_arcs[v.index()].iter().map(move |&a| self.head(a))
    }

    /// In-neighbors of `v` (with multiplicity, in insertion order).
    pub fn predecessors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_arcs[v.index()].iter().map(move |&a| self.tail(a))
    }

    /// All sources (indegree 0) in id order.
    pub fn sources(&self) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.is_source(v)).collect()
    }

    /// All sinks (outdegree 0) in id order.
    pub fn sinks(&self) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.is_sink(v)).collect()
    }

    /// The set of internal vertices (see [`Digraph::is_internal`]).
    pub fn internal_vertices(&self) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.is_internal(v)).collect()
    }

    /// First arc id `tail → head` if one exists (ignores parallel copies).
    pub fn find_arc(&self, tail: VertexId, head: VertexId) -> Option<ArcId> {
        self.out_arcs[tail.index()]
            .iter()
            .copied()
            .find(|&a| self.head(a) == head)
    }

    /// All arc ids `tail → head` (parallel arcs included).
    pub fn find_arcs(&self, tail: VertexId, head: VertexId) -> Vec<ArcId> {
        self.out_arcs[tail.index()]
            .iter()
            .copied()
            .filter(|&a| self.head(a) == head)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Digraph, Vec<VertexId>) {
        // a → b → d, a → c → d
        let mut g = Digraph::new();
        let vs = g.add_vertices(4);
        g.add_arc(vs[0], vs[1]);
        g.add_arc(vs[0], vs[2]);
        g.add_arc(vs[1], vs[3]);
        g.add_arc(vs[2], vs[3]);
        (g, vs)
    }

    #[test]
    fn counts_and_degrees() {
        let (g, vs) = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.outdegree(vs[0]), 2);
        assert_eq!(g.indegree(vs[0]), 0);
        assert_eq!(g.indegree(vs[3]), 2);
        assert_eq!(g.outdegree(vs[3]), 0);
        assert_eq!(g.indegree(vs[1]), 1);
        assert_eq!(g.outdegree(vs[1]), 1);
    }

    #[test]
    fn sources_sinks_internal() {
        let (g, vs) = diamond();
        assert_eq!(g.sources(), vec![vs[0]]);
        assert_eq!(g.sinks(), vec![vs[3]]);
        assert_eq!(g.internal_vertices(), vec![vs[1], vs[2]]);
        assert!(g.is_source(vs[0]) && g.is_sink(vs[3]));
        assert!(g.is_internal(vs[1]) && !g.is_internal(vs[0]));
    }

    #[test]
    fn arc_endpoints() {
        let (g, vs) = diamond();
        let a = g.find_arc(vs[0], vs[1]).unwrap();
        assert_eq!(g.tail(a), vs[0]);
        assert_eq!(g.head(a), vs[1]);
        assert_eq!(
            g.arc(a),
            Arc {
                tail: vs[0],
                head: vs[1]
            }
        );
    }

    #[test]
    fn neighbors() {
        let (g, vs) = diamond();
        let succ: Vec<_> = g.successors(vs[0]).collect();
        assert_eq!(succ, vec![vs[1], vs[2]]);
        let pred: Vec<_> = g.predecessors(vs[3]).collect();
        assert_eq!(pred, vec![vs[1], vs[2]]);
    }

    #[test]
    fn parallel_arcs_are_distinct() {
        let mut g = Digraph::new();
        let vs = g.add_vertices(2);
        let a1 = g.add_arc(vs[0], vs[1]);
        let a2 = g.add_arc(vs[0], vs[1]);
        assert_ne!(a1, a2);
        assert_eq!(g.outdegree(vs[0]), 2);
        assert_eq!(g.find_arcs(vs[0], vs[1]), vec![a1, a2]);
        assert_eq!(g.find_arc(vs[0], vs[1]), Some(a1));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = Digraph::new();
        let v = g.add_vertex();
        assert_eq!(g.try_add_arc(v, v), Err(GraphError::SelfLoop(v)));
    }

    #[test]
    fn invalid_endpoint_rejected() {
        let mut g = Digraph::new();
        let v = g.add_vertex();
        let bogus = VertexId(7);
        assert_eq!(
            g.try_add_arc(v, bogus),
            Err(GraphError::InvalidVertex(bogus))
        );
        assert_eq!(
            g.try_add_arc(bogus, v),
            Err(GraphError::InvalidVertex(bogus))
        );
    }

    #[test]
    fn with_vertices_constructor() {
        let g = Digraph::with_vertices(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.sources().len(), 5, "isolated vertices are sources");
        assert_eq!(g.sinks().len(), 5, "and sinks");
    }

    #[test]
    fn iterators_cover_everything() {
        let (g, _) = diamond();
        assert_eq!(g.vertices().count(), 4);
        assert_eq!(g.arc_ids().count(), 4);
        assert_eq!(g.arcs().count(), 4);
        for (id, arc) in g.arcs() {
            assert_eq!(g.tail(id), arc.tail);
            assert_eq!(g.head(id), arc.head);
        }
    }

    #[test]
    fn find_arc_absent() {
        let (g, vs) = diamond();
        assert_eq!(g.find_arc(vs[1], vs[0]), None);
        assert!(g.find_arcs(vs[3], vs[0]).is_empty());
    }
}
