//! Index newtypes for vertices and arcs.
//!
//! Both are thin wrappers over `u32` (per the perf-book "smaller integers"
//! guidance: instances in this workspace never exceed a few million vertices
//! and halving index size keeps adjacency arrays in cache).

use std::fmt;

/// Identifier of a vertex inside a [`crate::Digraph`].
///
/// Vertex ids are dense: the `i`-th vertex added receives id `i`. They are
/// never reused; the substrate does not support vertex deletion (algorithms
/// that need deletion work on [`crate::SubgraphView`]s instead, which is both
/// cheaper and keeps ids stable across the whole workspace).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VertexId(pub u32);

/// Identifier of an arc inside a [`crate::Digraph`].
///
/// Arc ids are dense and allocation-ordered, like [`VertexId`]s. Parallel
/// arcs (same tail and head) get distinct ids — the paper's multigraph
/// semantics require distinguishing them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArcId(pub u32);

impl VertexId {
    /// The id as a `usize`, for indexing into per-vertex tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index (panics if it does not fit in `u32`).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        VertexId(u32::try_from(i).expect("vertex index exceeds u32")) // lint: allow(no-panic): documented guard: an index beyond u32 is a construction error
    }
}

impl ArcId {
    /// The id as a `usize`, for indexing into per-arc tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index (panics if it does not fit in `u32`).
    #[inline]
    pub fn from_index(i: usize) -> Self {
        ArcId(u32::try_from(i).expect("arc index exceeds u32")) // lint: allow(no-panic): documented guard: an index beyond u32 is a construction error
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<VertexId> for usize {
    fn from(v: VertexId) -> usize {
        v.index()
    }
}

impl From<ArcId> for usize {
    fn from(a: ArcId) -> usize {
        a.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
    }

    #[test]
    fn arc_id_roundtrip() {
        let a = ArcId::from_index(7);
        assert_eq!(a.index(), 7);
        assert_eq!(a, ArcId(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(ArcId(9).to_string(), "e9");
        assert_eq!(format!("{:?}", VertexId(3)), "v3");
        assert_eq!(format!("{:?}", ArcId(9)), "e9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VertexId(1) < VertexId(2));
        assert!(ArcId(0) < ArcId(10));
    }

    #[test]
    #[should_panic(expected = "vertex index exceeds u32")]
    fn from_index_overflow_panics() {
        let _ = VertexId::from_index(usize::MAX);
    }

    #[test]
    fn ids_are_small() {
        // Keep handles at 4 bytes: adjacency arrays stay cache-dense.
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<ArcId>(), 4);
        assert_eq!(std::mem::size_of::<Option<VertexId>>(), 8);
    }
}
