//! A dense fixed-capacity bitset.
//!
//! Used throughout the workspace for vertex/arc/dipath membership tests where
//! `HashSet` would be both slower and larger (perf-book: prefer dense
//! structures with integer keys). Word-level operations make unions,
//! intersections and population counts branch-free.

/// A fixed-capacity set of `usize` keys in `0..len`, stored one bit per key.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Create an empty bitset with capacity for keys `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// Capacity (number of addressable keys).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Insert `i`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "bitset index {i} out of range {}", self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !had
    }

    /// Remove `i`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        let mask = 1u64 << b;
        let had = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        had
    }

    /// Test membership of `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let (w, b) = (i / WORD_BITS, i % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other` (capacities must match).
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference `self \ other` (capacities must match).
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `true` if `self` and `other` share at least one element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate over the present keys in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Smallest key not present, or `None` if the set is full.
    ///
    /// This is the "first free color" primitive used by greedy coloring.
    pub fn first_absent(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let b = (!w).trailing_zeros() as usize;
                let idx = wi * WORD_BITS + b;
                if idx < self.len {
                    return Some(idx);
                } else {
                    return None;
                }
            }
        }
        None
    }

    /// Raw word slice (read-only), for bulk parallel operations.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset with capacity `max + 1` of the yielded keys.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut bs = BitSet::new(cap);
        for i in items {
            bs.insert(i);
        }
        bs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bs = BitSet::new(130);
        assert!(bs.insert(0));
        assert!(bs.insert(64));
        assert!(bs.insert(129));
        assert!(!bs.insert(64), "double insert reports false");
        assert!(bs.contains(0) && bs.contains(64) && bs.contains(129));
        assert!(!bs.contains(1));
        assert!(bs.remove(64));
        assert!(!bs.remove(64));
        assert!(!bs.contains(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    fn empty_and_clear() {
        let mut bs = BitSet::new(10);
        assert!(bs.is_empty());
        bs.insert(3);
        assert!(!bs.is_empty());
        bs.clear();
        assert!(bs.is_empty());
        assert_eq!(bs.count(), 0);
    }

    #[test]
    fn set_operations() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        for i in [1, 5, 70] {
            a.insert(i);
        }
        for i in [5, 70, 99] {
            b.insert(i);
        }
        assert!(a.intersects(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 70, 99]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 70]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);

        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_order_is_sorted() {
        let mut bs = BitSet::new(300);
        for i in [250, 3, 64, 65, 128] {
            bs.insert(i);
        }
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![3, 64, 65, 128, 250]);
    }

    #[test]
    fn first_absent_scans_words() {
        let mut bs = BitSet::new(130);
        assert_eq!(bs.first_absent(), Some(0));
        for i in 0..65 {
            bs.insert(i);
        }
        assert_eq!(bs.first_absent(), Some(65));
        for i in 65..130 {
            bs.insert(i);
        }
        assert_eq!(bs.first_absent(), None, "full set has no absent key");
    }

    #[test]
    fn first_absent_respects_capacity() {
        let mut bs = BitSet::new(3);
        bs.insert(0);
        bs.insert(1);
        bs.insert(2);
        // Word has free bits past index 2, but they are out of capacity.
        assert_eq!(bs.first_absent(), None);
    }

    #[test]
    fn from_iterator() {
        let bs: BitSet = [4usize, 1, 9].into_iter().collect();
        assert_eq!(bs.capacity(), 10);
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn intersects_disjoint_is_false() {
        let a: BitSet = [1usize, 2].into_iter().collect();
        let mut b = BitSet::new(3);
        b.insert(0);
        assert!(!a.intersects(&b));
    }
}
