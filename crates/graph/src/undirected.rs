//! The *underlying undirected multigraph* of a digraph.
//!
//! The paper's oriented cycles (Section 2, Figure 2) are cycles of the
//! underlying undirected multigraph: an even sequence of dipaths alternating
//! in direction. An **internal cycle** is such a cycle whose vertices are all
//! internal in `G`. This module provides forest checks, explicit cycle
//! extraction (as arcs tagged with traversal direction), and the cyclomatic
//! number — everything `dagwave-core::internal` needs.

use crate::digraph::Digraph;
use crate::dsu::UnionFind;
use crate::ids::{ArcId, VertexId};
use crate::view::SubgraphView;

/// One step of an oriented (underlying) cycle: the arc and whether it is
/// traversed forward (`tail → head`) or in reverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OrientedStep {
    /// The arc being traversed.
    pub arc: ArcId,
    /// `true` if traversed in arc direction (tail to head).
    pub forward: bool,
}

/// An oriented cycle of the underlying multigraph: a closed walk of distinct
/// arcs. `steps[i]` leaves `vertices[i]` and arrives at `vertices[i+1 mod k]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrientedCycle {
    /// The cyclic vertex sequence (no repetition; length = number of steps).
    pub vertices: Vec<VertexId>,
    /// The arcs, tagged with traversal direction.
    pub steps: Vec<OrientedStep>,
}

impl OrientedCycle {
    /// Number of arcs (equals number of vertices).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the cycle is empty (never produced by the detectors).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Check well-formedness against `g`: consecutive steps chain through the
    /// vertex sequence and all arcs are distinct.
    pub fn validate(&self, g: &Digraph) -> bool {
        if self.steps.len() != self.vertices.len() || self.steps.len() < 2 {
            return false;
        }
        let k = self.steps.len();
        let mut seen = std::collections::HashSet::new();
        for i in 0..k {
            let step = self.steps[i];
            if !seen.insert(step.arc) {
                return false;
            }
            let arc = g.arc(step.arc);
            let (from, to) = if step.forward {
                (arc.tail, arc.head)
            } else {
                (arc.head, arc.tail)
            };
            if from != self.vertices[i] || to != self.vertices[(i + 1) % k] {
                return false;
            }
        }
        true
    }

    /// Vertices where the walk switches orientation *into* outdegree-0 in the
    /// cycle (both incident cycle arcs point at the vertex). These are the
    /// paper's `c_i` / `z_{2h+1}` turn vertices.
    pub fn in_turn_vertices(&self, _g: &Digraph) -> Vec<VertexId> {
        self.turns(true)
    }

    /// Vertices where both incident cycle arcs leave the vertex (indegree-0
    /// inside the cycle): the paper's `b_i` / `z_{2h+2}` turn vertices.
    pub fn out_turn_vertices(&self, _g: &Digraph) -> Vec<VertexId> {
        self.turns(false)
    }

    fn turns(&self, into: bool) -> Vec<VertexId> {
        let k = self.steps.len();
        let mut result = Vec::new();
        for i in 0..k {
            let prev = self.steps[(i + k - 1) % k];
            let next = self.steps[i];
            // Arriving forward then leaving backward ⇒ both arcs point in.
            let arrives = prev.forward;
            let leaves_backward = !next.forward;
            if into && arrives && leaves_backward {
                result.push(self.vertices[i]);
            }
            // Arriving backward then leaving forward ⇒ both arcs point out.
            if !into && !prev.forward && next.forward {
                result.push(self.vertices[i]);
            }
        }
        result
    }
}

/// `true` if the underlying undirected multigraph of the view is a forest.
pub fn is_underlying_forest(view: &SubgraphView<'_>) -> bool {
    let g = view.base();
    let mut uf = UnionFind::new(g.vertex_count());
    for a in view.arcs() {
        let arc = g.arc(a);
        if !uf.union(arc.tail.index(), arc.head.index()) {
            return false;
        }
    }
    true
}

/// Cyclomatic number `m − n + c` of the underlying multigraph of the view:
/// the number of independent cycles. Zero iff the underlying graph is a
/// forest.
pub fn cyclomatic_number(view: &SubgraphView<'_>) -> usize {
    let g = view.base();
    let mut uf = UnionFind::new(g.vertex_count());
    let mut m = 0usize;
    let mut touched = crate::bitset::BitSet::new(g.vertex_count());
    for a in view.arcs() {
        let arc = g.arc(a);
        touched.insert(arc.tail.index());
        touched.insert(arc.head.index());
        uf.union(arc.tail.index(), arc.head.index());
        m += 1;
    }
    let n = touched.count();
    if n == 0 {
        return 0;
    }
    // Components among touched vertices only.
    let mut reps = std::collections::HashSet::new();
    for v in touched.iter() {
        reps.insert(uf.find(v));
    }
    m + reps.len() - n
}

/// Find an oriented cycle of the underlying multigraph of the view, if any.
///
/// Runs an iterative DFS on the underlying graph tracking the parent *arc*
/// (not parent vertex), so parallel arcs correctly close 2-cycles.
pub fn find_underlying_cycle(view: &SubgraphView<'_>) -> Option<OrientedCycle> {
    let g = view.base();
    let n = g.vertex_count();
    let mut visited = vec![false; n];
    // parent[v] = (parent vertex, arc used, forward?) on the DFS tree.
    let mut parent: Vec<Option<(VertexId, ArcId, bool)>> = vec![None; n];
    let mut depth = vec![0usize; n];

    for start in view.vertices() {
        if visited[start.index()] {
            continue;
        }
        visited[start.index()] = true;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            // Underlying neighbors: out-arcs traversed forward, in-arcs backward.
            let neighbors = view
                .out_arcs(v)
                .map(|a| (g.head(a), a, true))
                .chain(view.in_arcs(v).map(|a| (g.tail(a), a, false)));
            for (w, a, forward) in neighbors {
                // Skip the tree arc we came in on (by arc id, so a parallel
                // arc to the parent still closes a cycle).
                if let Some((_, pa, _)) = parent[v.index()] {
                    if pa == a {
                        continue;
                    }
                }
                if !visited[w.index()] {
                    visited[w.index()] = true;
                    parent[w.index()] = Some((v, a, forward));
                    depth[w.index()] = depth[v.index()] + 1;
                    stack.push(w);
                } else {
                    // Non-tree edge {v,w}: close the cycle through the tree.
                    return Some(close_cycle(g, &parent, &depth, v, w, a, forward));
                }
            }
        }
    }
    None
}

/// Build the explicit cycle for the non-tree edge `v —a→ w` using tree paths.
fn close_cycle(
    _g: &Digraph,
    parent: &[Option<(VertexId, ArcId, bool)>],
    depth: &[usize],
    v: VertexId,
    w: VertexId,
    a: ArcId,
    forward: bool,
) -> OrientedCycle {
    // Walk both endpoints up to their lowest common ancestor.
    let (mut pv, mut pw) = (v, w);
    let mut up_v: Vec<(VertexId, ArcId, bool)> = Vec::new(); // steps v→…→lca (each step goes up)
    let mut up_w: Vec<(VertexId, ArcId, bool)> = Vec::new();
    while depth[pv.index()] > depth[pw.index()] {
        let (p, arc, fwd) = parent[pv.index()].expect("deeper vertex has parent"); // lint: allow(no-panic): a strictly deeper vertex has a BFS parent
        up_v.push((pv, arc, fwd));
        pv = p;
    }
    while depth[pw.index()] > depth[pv.index()] {
        let (p, arc, fwd) = parent[pw.index()].expect("deeper vertex has parent"); // lint: allow(no-panic): a strictly deeper vertex has a BFS parent
        up_w.push((pw, arc, fwd));
        pw = p;
    }
    while pv != pw {
        let (p1, a1, f1) = parent[pv.index()].expect("lca walk"); // lint: allow(no-panic): below the LCA every vertex has a BFS parent
        up_v.push((pv, a1, f1));
        pv = p1;
        let (p2, a2, f2) = parent[pw.index()].expect("lca walk"); // lint: allow(no-panic): below the LCA every vertex has a BFS parent
        up_w.push((pw, a2, f2));
        pw = p2;
    }
    let lca = pv;

    // Cycle: lca → … → v  (down the v-branch), then arc a to w, then
    // w → … → lca (up the w-branch).
    let mut vertices = Vec::new();
    let mut steps = Vec::new();

    // Down the v branch: reverse of up_v. A tree step stored as
    // (child, arc, fwd) means arc goes parent→child if fwd, child→parent if
    // !fwd... Careful: `fwd` was recorded as the traversal direction from
    // parent to child. So traversing parent→child uses direction `fwd`.
    vertices.push(lca);
    for &(child, arc, fwd) in up_v.iter().rev() {
        steps.push(OrientedStep { arc, forward: fwd });
        vertices.push(child);
    }
    // Now at v; take the closing edge v→w with direction `forward`.
    steps.push(OrientedStep { arc: a, forward });
    // Up the w branch: from w to lca; each stored step (child, arc, fwd) was
    // parent→child, we traverse child→parent, i.e. direction !fwd.
    for &(child, arc, fwd) in up_w.iter() {
        vertices.push(child);
        steps.push(OrientedStep { arc, forward: !fwd });
    }
    // The walk ends at lca = vertices[0]; lengths must agree.
    debug_assert_eq!(vertices.len(), steps.len());
    OrientedCycle { vertices, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn forest_check_tree() {
        let g = from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
        let view = SubgraphView::full(&g);
        assert!(is_underlying_forest(&view));
        assert_eq!(cyclomatic_number(&view), 0);
        assert!(find_underlying_cycle(&view).is_none());
    }

    #[test]
    fn diamond_is_an_oriented_cycle() {
        // 0→1→3, 0→2→3: acyclic as digraph, but the underlying graph has a
        // 4-cycle — exactly the paper's Figure 2a situation.
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let view = SubgraphView::full(&g);
        assert!(!is_underlying_forest(&view));
        assert_eq!(cyclomatic_number(&view), 1);
        let cycle = find_underlying_cycle(&view).unwrap();
        assert!(cycle.validate(&g), "cycle must be well-formed: {cycle:?}");
        assert_eq!(cycle.len(), 4);
    }

    #[test]
    fn parallel_arcs_close_a_2_cycle() {
        let g = from_edges(2, &[(0, 1), (0, 1)]);
        let view = SubgraphView::full(&g);
        assert!(!is_underlying_forest(&view));
        assert_eq!(cyclomatic_number(&view), 1);
        let cycle = find_underlying_cycle(&view).unwrap();
        assert!(cycle.validate(&g));
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn masked_arcs_are_ignored() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut view = SubgraphView::full(&g);
        view.remove_arc(ArcId(0));
        assert!(is_underlying_forest(&view));
        assert!(find_underlying_cycle(&view).is_none());
    }

    #[test]
    fn cyclomatic_counts_independent_cycles() {
        // Two diamonds sharing nothing: 8 vertices, 8 arcs, 2 components.
        let g = from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (4, 5),
                (4, 6),
                (5, 7),
                (6, 7),
            ],
        );
        let view = SubgraphView::full(&g);
        assert_eq!(cyclomatic_number(&view), 2);
    }

    #[test]
    fn cyclomatic_ignores_untouched_vertices() {
        // Isolated vertices must not count as components.
        let mut g = from_edges(3, &[(0, 1)]);
        g.add_vertex();
        g.add_vertex();
        let view = SubgraphView::full(&g);
        assert_eq!(cyclomatic_number(&view), 0);
    }

    #[test]
    fn turn_vertices_of_diamond() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let view = SubgraphView::full(&g);
        let cycle = find_underlying_cycle(&view).unwrap();
        let ins = cycle.in_turn_vertices(&g);
        let outs = cycle.out_turn_vertices(&g);
        assert_eq!(ins, vec![VertexId(3)], "vertex 3 receives both cycle arcs");
        assert_eq!(outs, vec![VertexId(0)], "vertex 0 emits both cycle arcs");
    }

    #[test]
    fn theta_graph_has_two_cycles() {
        // Three parallel dipaths 0→x_i→4: cyclomatic number 2.
        let g = from_edges(5, &[(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)]);
        let view = SubgraphView::full(&g);
        assert_eq!(cyclomatic_number(&view), 2);
        let c = find_underlying_cycle(&view).unwrap();
        assert!(c.validate(&g));
    }

    #[test]
    fn validate_rejects_malformed() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let bad = OrientedCycle {
            vertices: vec![VertexId(0), VertexId(1)],
            steps: vec![
                OrientedStep {
                    arc: ArcId(0),
                    forward: true,
                },
                OrientedStep {
                    arc: ArcId(0),
                    forward: false,
                },
            ],
        };
        assert!(!bad.validate(&g), "repeated arc must be rejected");
    }

    #[test]
    fn longer_oriented_cycle_figure2a() {
        // Figure 2a-style: 6-cycle alternating 3 forward dipaths and
        // 3 reverse, built as b1→c1, b2→c1, b2→c2, b3→c2, b3→c3, b1→c3.
        let g = from_edges(6, &[(0, 3), (1, 3), (1, 4), (2, 4), (2, 5), (0, 5)]);
        let view = SubgraphView::full(&g);
        let cycle = find_underlying_cycle(&view).unwrap();
        assert!(cycle.validate(&g));
        assert_eq!(cycle.len(), 6);
        assert_eq!(cycle.in_turn_vertices(&g).len(), 3);
        assert_eq!(cycle.out_turn_vertices(&g).len(), 3);
    }
}
