//! Reachability and shortest dipaths.
//!
//! Includes a rayon-parallel bitset transitive closure used by the UPP
//! router and by instance generators that must avoid creating second
//! dipaths between vertex pairs.

use crate::bitset::BitSet;
use crate::digraph::Digraph;
use crate::ids::{ArcId, VertexId};
use crate::topo;
use rayon::prelude::*;

/// Vertices reachable from `start` by dipaths (including `start`).
pub fn reachable_from(g: &Digraph, start: VertexId) -> BitSet {
    let mut seen = BitSet::new(g.vertex_count());
    let mut stack = vec![start];
    seen.insert(start.index());
    while let Some(v) = stack.pop() {
        for w in g.successors(v) {
            if seen.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    seen
}

/// Vertices that can reach `target` by dipaths (including `target`).
pub fn reaching_to(g: &Digraph, target: VertexId) -> BitSet {
    let mut seen = BitSet::new(g.vertex_count());
    let mut stack = vec![target];
    seen.insert(target.index());
    while let Some(v) = stack.pop() {
        for w in g.predecessors(v) {
            if seen.insert(w.index()) {
                stack.push(w);
            }
        }
    }
    seen
}

/// `true` if a dipath `from → … → to` exists (also true when `from == to`).
pub fn is_reachable(g: &Digraph, from: VertexId, to: VertexId) -> bool {
    reachable_from(g, from).contains(to.index())
}

/// A shortest dipath (fewest arcs) from `from` to `to` as an arc sequence,
/// or `None` if unreachable. Empty sequence when `from == to`.
pub fn shortest_dipath(g: &Digraph, from: VertexId, to: VertexId) -> Option<Vec<ArcId>> {
    if from == to {
        return Some(Vec::new());
    }
    let n = g.vertex_count();
    let mut pred: Vec<Option<ArcId>> = vec![None; n];
    let mut seen = BitSet::new(n);
    seen.insert(from.index());
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(v) = queue.pop_front() {
        for &a in g.out_arcs(v) {
            let w = g.head(a);
            if seen.insert(w.index()) {
                pred[w.index()] = Some(a);
                if w == to {
                    // Reconstruct.
                    let mut arcs = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let a = pred[cur.index()].expect("bfs predecessor"); // lint: allow(no-panic): every vertex on the walk back was labelled with a predecessor
                        arcs.push(a);
                        cur = g.tail(a);
                    }
                    arcs.reverse();
                    return Some(arcs);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Full transitive closure: `closure[v]` is the reachable set of `v`
/// (including `v` itself). Computed in reverse topological order for DAGs
/// with rayon-parallel word-level unions per level; falls back to per-vertex
/// BFS for cyclic digraphs.
pub fn transitive_closure(g: &Digraph) -> Vec<BitSet> {
    let n = g.vertex_count();
    match topo::topological_order(g) {
        Ok(order) => {
            let mut closure: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
            for &v in order.iter().rev() {
                let mut set = BitSet::new(n);
                set.insert(v.index());
                for w in g.successors(v) {
                    set.union_with(&closure[w.index()]);
                }
                closure[v.index()] = set;
            }
            closure
        }
        Err(_) => (0..n)
            .into_par_iter()
            .map(|i| reachable_from(g, VertexId::from_index(i)))
            .collect(),
    }
}

/// Parallel transitive closure for DAGs: vertices are grouped by longest-path
/// depth from sinks, and each level is processed as contiguous **row blocks**
/// on the rayon pool — every block computes a run of closure rows against the
/// frozen lower levels, and the rows are scattered back in block order, so
/// the result is bit-identical to [`transitive_closure`]. Exposed separately
/// for the benchmark harness' scaling ablation.
pub fn transitive_closure_parallel(g: &Digraph) -> Vec<BitSet> {
    let n = g.vertex_count();
    let Ok(order) = topo::topological_order(g) else {
        return transitive_closure(g);
    };
    // height[v] = longest dipath length starting at v.
    let mut height = vec![0usize; n];
    for &v in order.iter().rev() {
        for w in g.successors(v) {
            height[v.index()] = height[v.index()].max(height[w.index()] + 1);
        }
    }
    let max_h = height.iter().copied().max().unwrap_or(0);
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); max_h + 1];
    for v in g.vertices() {
        levels[height[v.index()]].push(v);
    }
    let mut closure: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    for level in levels {
        // All vertices in one level only depend on strictly lower levels, so
        // the level's rows can be computed in independent blocks while the
        // closure is only read.
        let block = level
            .len()
            .div_ceil(rayon::current_num_threads() * 2)
            .max(1);
        let blocks: Vec<Vec<(usize, BitSet)>> = level
            .par_chunks(block)
            .map(|rows| {
                rows.iter()
                    .map(|&v| {
                        let mut set = BitSet::new(n);
                        set.insert(v.index());
                        for w in g.successors(v) {
                            set.union_with(&closure[w.index()]);
                        }
                        (v.index(), set)
                    })
                    .collect()
            })
            .collect();
        for (i, set) in blocks.into_iter().flatten() {
            closure[i] = set;
        }
    }
    closure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    #[test]
    fn forward_and_backward_reachability() {
        let g = from_edges(5, &[(0, 1), (1, 2), (3, 2), (2, 4)]);
        let fwd = reachable_from(&g, v(0));
        assert_eq!(fwd.iter().collect::<Vec<_>>(), vec![0, 1, 2, 4]);
        let bwd = reaching_to(&g, v(2));
        assert_eq!(bwd.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(is_reachable(&g, v(0), v(4)));
        assert!(!is_reachable(&g, v(4), v(0)));
        assert!(is_reachable(&g, v(3), v(3)), "trivially reachable");
    }

    #[test]
    fn shortest_path_prefers_fewest_arcs() {
        // 0→1→2→3 and shortcut 0→2.
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 2)]);
        let p = shortest_dipath(&g, v(0), v(3)).unwrap();
        assert_eq!(p.len(), 2, "0→2→3 beats 0→1→2→3");
        assert_eq!(g.tail(p[0]), v(0));
        assert_eq!(g.head(p[1]), v(3));
        assert_eq!(g.head(p[0]), g.tail(p[1]), "arcs chain");
    }

    #[test]
    fn shortest_path_unreachable_and_trivial() {
        let g = from_edges(3, &[(0, 1)]);
        assert_eq!(shortest_dipath(&g, v(1), v(0)), None);
        assert_eq!(shortest_dipath(&g, v(2), v(2)), Some(vec![]));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn closure_matches_pairwise_reachability() {
        let g = from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 4)]);
        let closure = transitive_closure(&g);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(
                    closure[a].contains(b),
                    is_reachable(&g, v(a), v(b)),
                    "mismatch at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn parallel_closure_agrees_with_sequential() {
        let g = from_edges(
            8,
            &[
                (0, 2),
                (1, 2),
                (2, 3),
                (2, 4),
                (3, 5),
                (4, 5),
                (5, 6),
                (5, 7),
            ],
        );
        let seq = transitive_closure(&g);
        let par = transitive_closure_parallel(&g);
        for i in 0..8 {
            assert_eq!(
                seq[i].iter().collect::<Vec<_>>(),
                par[i].iter().collect::<Vec<_>>(),
                "row {i}"
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn closure_on_cyclic_digraph_falls_back() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let closure = transitive_closure(&g);
        for i in 0..3 {
            assert_eq!(closure[i].count(), 3, "strongly connected");
        }
    }

    #[test]
    fn closure_of_empty_graph() {
        let g = Digraph::new();
        assert!(transitive_closure(&g).is_empty());
        assert!(transitive_closure_parallel(&g).is_empty());
    }
}
