//! Topological orderings and DAG validation.
//!
//! Two implementations are provided: Kahn's queue-based algorithm (used by
//! the peel phase of the Theorem-1 solver, which needs explicit source
//! tracking) and an iterative DFS with cycle-witness extraction.

use crate::digraph::Digraph;
use crate::error::GraphError;
use crate::ids::VertexId;

/// `true` if the digraph has no directed cycle.
pub fn is_dag(g: &Digraph) -> bool {
    topological_order(g).is_ok()
}

/// A topological order of the vertices (Kahn's algorithm), or a witness
/// directed cycle if none exists.
pub fn topological_order(g: &Digraph) -> Result<Vec<VertexId>, GraphError> {
    let n = g.vertex_count();
    let mut indeg: Vec<usize> = (0..n)
        .map(|i| g.indegree(VertexId::from_index(i)))
        .collect();
    let mut queue: Vec<VertexId> = g.vertices().filter(|&v| indeg[v.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut qi = 0;
    while qi < queue.len() {
        let v = queue[qi];
        qi += 1;
        order.push(v);
        for w in g.successors(v) {
            indeg[w.index()] -= 1;
            if indeg[w.index()] == 0 {
                queue.push(w);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(GraphError::NotADag(
            find_directed_cycle(g).expect("Kahn reported a cycle, DFS must find one"), // lint: allow(no-panic): Kahn reported a cycle, so DFS must find one
        ))
    }
}

/// Position of each vertex in a topological order: `rank[v] < rank[w]`
/// whenever there is an arc `v → w`.
pub fn topological_rank(g: &Digraph) -> Result<Vec<usize>, GraphError> {
    let order = topological_order(g)?;
    let mut rank = vec![0usize; g.vertex_count()];
    for (i, v) in order.iter().enumerate() {
        rank[v.index()] = i;
    }
    Ok(rank)
}

/// Find a directed cycle as a vertex sequence `v0 → v1 → … → v0` (the first
/// vertex is repeated at the end), or `None` if the digraph is acyclic.
pub fn find_directed_cycle(g: &Digraph) -> Option<Vec<VertexId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let n = g.vertex_count();
    let mut mark = vec![Mark::White; n];
    let mut parent: Vec<Option<VertexId>> = vec![None; n];

    for start in g.vertices() {
        if mark[start.index()] != Mark::White {
            continue;
        }
        // Iterative DFS keeping an explicit successor cursor per frame.
        let mut stack: Vec<(VertexId, usize)> = vec![(start, 0)];
        mark[start.index()] = Mark::Gray;
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            let outs = g.out_arcs(v);
            if *cursor < outs.len() {
                let w = g.head(outs[*cursor]);
                *cursor += 1;
                match mark[w.index()] {
                    Mark::White => {
                        mark[w.index()] = Mark::Gray;
                        parent[w.index()] = Some(v);
                        stack.push((w, 0));
                    }
                    Mark::Gray => {
                        // Back edge v → w: unwind the parent chain from v to w.
                        // Collected as [w, v, parent(v), …, child-of-w]; the
                        // tail is in reverse tree order, so flip it, then
                        // close the cycle by repeating w.
                        let mut cycle = vec![w];
                        let mut cur = v;
                        while cur != w {
                            cycle.push(cur);
                            // lint: allow(no-panic): the DFS parents every gray vertex
                            cur = parent[cur.index()].expect("gray vertex has parent");
                        }
                        cycle[1..].reverse();
                        cycle.push(w);
                        debug_assert_eq!(cycle.first(), cycle.last());
                        return Some(cycle);
                    }
                    Mark::Black => {}
                }
            } else {
                mark[v.index()] = Mark::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Longest-dipath length (number of arcs) ending at each vertex.
///
/// Useful for layering DAGs; errors if the digraph is not acyclic.
pub fn longest_path_lengths(g: &Digraph) -> Result<Vec<usize>, GraphError> {
    let order = topological_order(g)?;
    let mut depth = vec![0usize; g.vertex_count()];
    for v in order {
        for w in g.successors(v) {
            depth[w.index()] = depth[w.index()].max(depth[v.index()] + 1);
        }
    }
    Ok(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn chain_is_dag() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(is_dag(&g));
        let ord = topological_order(&g).unwrap();
        assert_eq!(
            ord,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn cycle_is_rejected_with_witness() {
        let g = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(!is_dag(&g));
        match topological_order(&g) {
            Err(GraphError::NotADag(cycle)) => {
                assert_eq!(cycle.first(), cycle.last());
                assert_eq!(cycle.len(), 4, "triangle witness has 3 arcs");
                // Each consecutive pair is an arc of g.
                for w in cycle.windows(2) {
                    assert!(g.find_arc(w[0], w[1]).is_some(), "{:?} not an arc", w);
                }
            }
            other => panic!("expected NotADag, got {other:?}"),
        }
    }

    #[test]
    fn self_contained_cycle_in_larger_graph() {
        // Acyclic part 0→1, cycle 2→3→4→2 reachable from 1.
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)]);
        let cycle = find_directed_cycle(&g).unwrap();
        assert_eq!(cycle.first(), cycle.last());
        for w in cycle.windows(2) {
            assert!(g.find_arc(w[0], w[1]).is_some());
        }
        assert!(!cycle.contains(&VertexId(0)));
    }

    #[test]
    fn rank_respects_arcs() {
        let g = from_edges(5, &[(0, 2), (1, 2), (2, 3), (2, 4)]);
        let rank = topological_rank(&g).unwrap();
        for (_, arc) in g.arcs() {
            assert!(rank[arc.tail.index()] < rank[arc.head.index()]);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::new();
        assert!(is_dag(&g));
        assert!(topological_order(&g).unwrap().is_empty());
        assert_eq!(find_directed_cycle(&g), None);
    }

    #[test]
    fn two_vertex_cycle_via_antiparallel_arcs() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        assert!(!is_dag(&g));
        let cycle = find_directed_cycle(&g).unwrap();
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn longest_paths_in_diamond() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let depth = longest_path_lengths(&g).unwrap();
        assert_eq!(depth, vec![0, 1, 1, 2]);
    }

    #[test]
    fn longest_paths_error_on_cycle() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        assert!(longest_path_lengths(&g).is_err());
    }

    #[test]
    fn parallel_arcs_do_not_break_kahn() {
        let g = from_edges(2, &[(0, 1), (0, 1)]);
        let ord = topological_order(&g).unwrap();
        assert_eq!(ord, vec![VertexId(0), VertexId(1)]);
    }
}
