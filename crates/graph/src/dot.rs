//! Graphviz (DOT) export, for debugging instances and regenerating the
//! paper's figures visually.

use crate::digraph::Digraph;
use crate::ids::VertexId;
use std::fmt::Write;

/// Options controlling DOT rendering.
pub struct DotOptions<'a> {
    /// Graph name in the DOT header.
    pub name: &'a str,
    /// Optional vertex labels (indexed by vertex id); falls back to `v{i}`.
    pub labels: Option<&'a dyn Fn(VertexId) -> String>,
    /// Highlight these vertices (drawn filled).
    pub highlight: &'a [VertexId],
}

impl Default for DotOptions<'_> {
    fn default() -> Self {
        DotOptions {
            name: "dagwave",
            labels: None,
            highlight: &[],
        }
    }
}

/// Render a digraph to DOT format.
pub fn to_dot(g: &Digraph, opts: &DotOptions<'_>) -> String {
    let mut out = String::new();
    writeln!(out, "digraph {} {{", opts.name).unwrap(); // lint: allow(no-panic): writing to a String cannot fail
    writeln!(out, "  rankdir=LR;").unwrap(); // lint: allow(no-panic): writing to a String cannot fail
    for v in g.vertices() {
        let label = match opts.labels {
            Some(f) => f(v),
            None => format!("{v}"),
        };
        let style = if opts.highlight.contains(&v) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        // lint: allow(no-panic): writing to a String cannot fail
        writeln!(out, "  {} [label=\"{}\"{}];", v.index(), label, style).unwrap();
    }
    for (_, arc) in g.arcs() {
        // lint: allow(no-panic): writing to a String cannot fail
        writeln!(out, "  {} -> {};", arc.tail.index(), arc.head.index()).unwrap();
    }
    writeln!(out, "}}").unwrap(); // lint: allow(no-panic): writing to a String cannot fail
    out
}

/// Render with default options.
pub fn to_dot_simple(g: &Digraph) -> String {
    to_dot(g, &DotOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::from_edges;

    #[test]
    fn renders_vertices_and_arcs() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let dot = to_dot_simple(&g);
        assert!(dot.starts_with("digraph dagwave {"));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("1 -> 2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn custom_labels_and_highlight() {
        let g = from_edges(2, &[(0, 1)]);
        let labeler = |v: VertexId| format!("node-{}", v.index());
        let opts = DotOptions {
            name: "fig1",
            labels: Some(&labeler),
            highlight: &[VertexId(1)],
        };
        let dot = to_dot(&g, &opts);
        assert!(dot.contains("digraph fig1 {"));
        assert!(dot.contains("label=\"node-0\""));
        assert!(dot.contains("fillcolor=lightblue"));
    }

    #[test]
    fn parallel_arcs_render_twice() {
        let g = from_edges(2, &[(0, 1), (0, 1)]);
        let dot = to_dot_simple(&g);
        assert_eq!(dot.matches("0 -> 1;").count(), 2);
    }
}
