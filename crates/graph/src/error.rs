//! Error types for the graph substrate.

use crate::ids::{ArcId, VertexId};
use std::fmt;

/// Errors produced by graph construction and algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id referenced a vertex that does not exist.
    InvalidVertex(VertexId),
    /// An arc id referenced an arc that does not exist.
    InvalidArc(ArcId),
    /// The digraph contains a directed cycle where a DAG was required.
    /// Carries a witness cycle as a vertex sequence `v0 → v1 → … → v0`
    /// (first vertex repeated at the end).
    NotADag(Vec<VertexId>),
    /// A self-loop was rejected (the paper's DAG model has none).
    SelfLoop(VertexId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidVertex(v) => write!(f, "invalid vertex id {v}"),
            GraphError::InvalidArc(a) => write!(f, "invalid arc id {a}"),
            GraphError::NotADag(cycle) => {
                write!(f, "digraph is not acyclic; witness cycle:")?;
                for v in cycle {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at {v} is not allowed"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_vertex() {
        let e = GraphError::InvalidVertex(VertexId(5));
        assert_eq!(e.to_string(), "invalid vertex id v5");
    }

    #[test]
    fn display_cycle_witness() {
        let e = GraphError::NotADag(vec![VertexId(0), VertexId(1), VertexId(0)]);
        assert!(e.to_string().contains("witness cycle: v0 v1 v0"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&GraphError::SelfLoop(VertexId(1)));
    }
}
