//! Concurrency suite for the incremental-solve surface, gated behind the
//! `pool-check` feature: [`Workspace::apply`] batch atomicity and
//! [`dagwave_paths::PathFamily`] free-list edge cases, replayed under the
//! shim pool's seeded adversarial scheduler across thread budgets 1/2/4.
//!
//! Every solve inside these tests runs with the pool's event log armed;
//! after each scenario the log is drained and checked with
//! [`rayon::check::verify`] (run-exactly-once, no lost jobs,
//! join-both-sides-complete, panic propagation). The event log and the
//! adversary are process-global, so every test serializes on `TEST_LOCK`
//! and drains the log before its section under test.
#![cfg(feature = "pool-check")]

use dagwave_core::{CoreError, DecomposePolicy, Mutation, SolverBuilder, Workspace};
use dagwave_graph::builder::from_edges;
use dagwave_graph::{Digraph, VertexId};
use dagwave_paths::{Dipath, DipathFamily, PathId};
use rayon::check::{drain, render, verify, with_adversary};
use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn pool(n: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .unwrap()
}

fn path(g: &Digraph, route: &[usize]) -> Dipath {
    let route: Vec<VertexId> = route.iter().map(|&i| VertexId::from_index(i)).collect();
    Dipath::from_vertices(g, &route).unwrap()
}

/// Three arc-disjoint chains — three conflict components, so the
/// decomposed solve fans real shard tasks onto the pool.
fn three_chain_instance() -> (Digraph, DipathFamily) {
    let g = from_edges(9, &[(0, 1), (1, 2), (3, 4), (4, 5), (6, 7), (7, 8)]);
    let f = DipathFamily::from_paths(vec![
        path(&g, &[0, 1, 2]),
        path(&g, &[1, 2]),
        path(&g, &[3, 4, 5]),
        path(&g, &[4, 5]),
        path(&g, &[6, 7, 8]),
        path(&g, &[7, 8]),
    ]);
    (g, f)
}

fn workspace(g: &Digraph, f: &DipathFamily) -> Workspace {
    let session = SolverBuilder::new()
        .decompose(DecomposePolicy::Always)
        .build();
    Workspace::new(session, g.clone(), f.clone()).unwrap()
}

/// From-scratch reference colors on the workspace's current live members.
fn scratch_colors(ws: &Workspace) -> Vec<usize> {
    let (dense, _) = ws.family().to_dense();
    ws.session()
        .solve(ws.graph(), &dense)
        .unwrap()
        .assignment
        .colors()
        .to_vec()
}

fn checked_verify(label: &str) {
    let events = drain();
    verify(&events).unwrap_or_else(|errs| panic!("{label}: {errs:?}\n{}", render(&events)));
}

#[test]
fn workspace_apply_is_atomic_and_schedule_independent() {
    let _guard = locked();
    let (g, f) = three_chain_instance();
    // The reference run: no adversary, default budget.
    drain();
    let reference = {
        let mut ws = workspace(&g, &f);
        ws.solution().unwrap();
        let added = ws
            .apply([
                Mutation::Add(path(&g, &[3, 4])),
                Mutation::Remove(PathId(1)),
                Mutation::Add(path(&g, &[0, 1])),
            ])
            .unwrap();
        (added, ws.solution().unwrap().assignment.colors().to_vec())
    };
    checked_verify("reference");

    for seed in [2u64, 19, 77] {
        for threads in [1usize, 2, 4] {
            drain();
            let (added, colors, scratch, resolve) = with_adversary(seed, || {
                pool(threads).install(|| {
                    let mut ws = workspace(&g, &f);
                    ws.solution().unwrap();
                    let added = ws
                        .apply([
                            Mutation::Add(path(&g, &[3, 4])),
                            Mutation::Remove(PathId(1)),
                            Mutation::Add(path(&g, &[0, 1])),
                        ])
                        .unwrap();
                    let sol = ws.solution().unwrap();
                    let resolve = sol.resolve.unwrap();
                    (
                        added,
                        sol.assignment.colors().to_vec(),
                        scratch_colors(&ws),
                        resolve,
                    )
                })
            });
            // Id assignment and the merged coloring are bit-identical to
            // the unpermuted reference at every budget and seed.
            assert_eq!(added, reference.0, "seed={seed} threads={threads}");
            assert_eq!(colors, reference.1, "seed={seed} threads={threads}");
            // And identical to a from-scratch solve of the mutated state.
            assert_eq!(colors, scratch, "seed={seed} threads={threads}");
            // The untouched chain's shard survived the batch in cache.
            assert!(
                resolve.shards_reused >= 1,
                "seed={seed} threads={threads}: {resolve:?}"
            );
            checked_verify(&format!("seed={seed} threads={threads}"));
        }
    }
}

#[test]
fn failing_batch_mutates_nothing_even_mid_adversarial_run() {
    let _guard = locked();
    let (g, f) = three_chain_instance();
    for seed in [4u64, 31] {
        for threads in [1usize, 2, 4] {
            drain();
            with_adversary(seed, || {
                pool(threads).install(|| {
                    let mut ws = workspace(&g, &f);
                    ws.solution().unwrap();
                    let before_components = ws.components();
                    let before = ws.solution().unwrap();
                    let before_colors = before.assignment.colors().to_vec();
                    // Valid ops precede the invalid one: the whole batch
                    // must be rejected up front, before any state changes.
                    let err = ws
                        .apply([
                            Mutation::Remove(PathId(0)),
                            Mutation::Add(path(&g, &[6, 7])),
                            Mutation::Remove(PathId(42)),
                        ])
                        .unwrap_err();
                    assert_eq!(err, CoreError::UnknownPath(PathId(42)));
                    assert_eq!(ws.components(), before_components);
                    assert_eq!(ws.family().len(), 6);
                    // The cached snapshot is still served — the very same
                    // Arc, so nothing recomputed — and still matches a
                    // from-scratch solve of the (unchanged) state.
                    let after = ws.solution().unwrap();
                    assert!(std::sync::Arc::ptr_eq(&before, &after));
                    assert_eq!(after.assignment.colors(), &before_colors[..]);
                    assert_eq!(before_colors, scratch_colors(&ws));
                });
            });
            checked_verify(&format!("seed={seed} threads={threads}"));
        }
    }
}

#[test]
fn free_list_reuse_is_deterministic_under_permuted_schedules() {
    let _guard = locked();
    let (g, f) = three_chain_instance();
    for seed in [8u64, 55] {
        for threads in [1usize, 2, 4] {
            drain();
            with_adversary(seed, || {
                pool(threads).install(|| {
                    let mut ws = workspace(&g, &f);
                    ws.solution().unwrap();
                    // Tombstone two slots out of order: the smallest comes
                    // back first, regardless of removal order.
                    ws.remove_path(PathId(4)).unwrap();
                    ws.remove_path(PathId(0)).unwrap();
                    assert_eq!(ws.family().next_id(), PathId(0));
                    let a = ws.add_path(path(&g, &[0, 1])).unwrap();
                    assert_eq!(a, PathId(0), "smallest tombstone reused");
                    assert_eq!(ws.family().next_id(), PathId(4));
                    let b = ws.add_path(path(&g, &[6, 7])).unwrap();
                    assert_eq!(b, PathId(4), "next tombstone reused");
                    // Free list drained: growth resumes past the end.
                    let c = ws.add_path(path(&g, &[7, 8])).unwrap();
                    assert_eq!(c, PathId(6), "fresh slot after the free list");
                    assert_eq!(ws.family().slot_count(), 7);
                    // The incremental solution on the churned family still
                    // matches a from-scratch solve at this budget and seed.
                    let sol = ws.solution().unwrap();
                    assert_eq!(
                        sol.assignment.colors(),
                        &scratch_colors(&ws)[..],
                        "seed={seed} threads={threads}"
                    );
                });
            });
            checked_verify(&format!("seed={seed} threads={threads}"));
        }
    }
}

#[test]
fn add_then_remove_same_id_within_one_batch() {
    let _guard = locked();
    let (g, f) = three_chain_instance();
    for threads in [1usize, 2, 4] {
        drain();
        with_adversary(13, || {
            pool(threads).install(|| {
                let mut ws = workspace(&g, &f);
                ws.solution().unwrap();
                // Id assignment is deterministic (smallest free slot), so a
                // batch may retire an id it just admitted. The add still
                // reports its id; the family ends without it.
                let predicted = ws.family().next_id();
                let added = ws
                    .apply([
                        Mutation::Add(path(&g, &[3, 4])),
                        Mutation::Remove(predicted),
                    ])
                    .unwrap();
                assert_eq!(added, vec![predicted]);
                assert!(!ws.family().contains(predicted));
                assert_eq!(ws.family().len(), 6);
                // Net no-op batch: the solution matches the pristine state.
                let sol = ws.solution().unwrap();
                assert_eq!(sol.assignment.colors(), &scratch_colors(&ws)[..]);
            });
        });
        checked_verify(&format!("threads={threads}"));
    }
}
