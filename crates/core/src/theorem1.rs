//! Theorem 1 — the constructive `w = π` wavelength assignment.
//!
//! **Theorem 1 (paper).** If `G` is a DAG without internal cycle then for
//! every family of dipaths `P`, `w(G, P) = π(G, P)`.
//!
//! The proof is an induction on arcs: remove an arc `(x0, y0)` whose tail is
//! a source, shrink the dipaths through it, color the smaller instance, then
//! re-extend — after recoloring so that the shrunk dipaths all carry distinct
//! colors. The recoloring is an alternating cascade (paper Figure 4) which is
//! precisely a Kempe-chain component swap on the conflict graph; it can only
//! fail by reaching the protected dipath, which the proof shows forces an
//! internal cycle.
//!
//! This module implements the induction iteratively:
//!
//! 1. **Peel** ([`peel`]): repeatedly delete an arc out of a current source,
//!    logging for each deletion the dipaths whose front arc it was (the
//!    source condition guarantees dipaths are consumed strictly front-first).
//! 2. **Replay** ([`color_optimal_with`]): process the log in reverse.
//!    Adding arc `e` back extends the logged dipaths at the front; before
//!    extension, Kempe swaps make their colors pairwise distinct; dipaths
//!    born as the single arc `e` take fresh palette colors. The palette has
//!    exactly `π(G, P)` colors and never runs out (the proof's counting
//!    argument), so the final assignment uses at most — hence exactly —
//!    `π` wavelengths whenever any arc is loaded.

use crate::assignment::WavelengthAssignment;
use crate::error::CoreError;
use dagwave_graph::{topo, ArcId, BitSet, Digraph, VertexId};
use dagwave_paths::{load, DipathFamily, PathId};

/// Which arc to peel next when several sources are available — the A1
/// ablation of DESIGN.md. All variants yield a valid optimal coloring; they
/// differ in constant factors and cache behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PeelOrder {
    /// FIFO over sources (Kahn-style breadth-first).
    #[default]
    Fifo,
    /// LIFO over sources (depth-first flavor).
    Lifo,
    /// Always the smallest-id ready source (deterministic, cache-friendly
    /// for generators that allocate ids topologically).
    MinId,
}

/// Kempe recoloring strategy — the A2 ablation. Both produce identical
/// colorings; `Cascade` follows the paper's step-by-step narration,
/// `ComponentSwap` flips the whole two-color component at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KempeStrategy {
    /// Flip the connected α/β component of the dipath in one pass.
    #[default]
    ComponentSwap,
    /// The paper's literal cascade: recolor `P1`, then everything of the
    /// other color it now clashes with, and so on (Figure 4).
    Cascade,
}

/// One peel step: the removed arc and the dipaths whose front arc it was.
#[derive(Clone, Debug)]
pub struct PeelStep {
    /// The removed arc (its tail was a source at removal time).
    pub arc: ArcId,
    /// Dipaths that contained the arc; at removal time it was their front
    /// arc. `was_last` marks dipaths for which it was also their final
    /// remaining arc (they vanish — the paper's "`Q` reduced to `(x0,y0)`").
    pub affected: Vec<(PathId, bool)>,
}

/// The full peel log plus bookkeeping for the replay.
#[derive(Clone, Debug)]
pub struct PeelLog {
    /// Steps in removal order (replay walks them in reverse).
    pub steps: Vec<PeelStep>,
}

/// Peel all arcs of `g`, front-consuming `family` (paper's induction order).
///
/// Requires a DAG; errors with the directed-cycle witness otherwise.
pub fn peel(g: &Digraph, family: &DipathFamily, order: PeelOrder) -> Result<PeelLog, CoreError> {
    if let Err(dagwave_graph::GraphError::NotADag(c)) = topo::topological_order(g) {
        return Err(CoreError::NotADag(c));
    }
    let n = g.vertex_count();
    let m = g.arc_count();

    let mut indeg: Vec<usize> = (0..n)
        .map(|i| g.indegree(VertexId::from_index(i)))
        .collect();
    let mut removed = vec![false; m];
    let mut out_cursor = vec![0usize; n]; // next out-arc to try per vertex

    // front_of[p]: index into the dipath's arc list of its current front.
    // bucket[a]: dipaths whose current front arc is `a`.
    let mut bucket: Vec<Vec<PathId>> = vec![Vec::new(); m];
    for (id, p) in family.iter() {
        bucket[p.first_arc().index()].push(id);
    }

    // Ready pool: sources with remaining out-arcs.
    let mut ready: std::collections::VecDeque<VertexId> = g
        .vertices()
        .filter(|&v| indeg[v.index()] == 0 && g.outdegree(v) > 0)
        .collect();
    let mut steps = Vec::with_capacity(m);
    let mut front_of: Vec<usize> = vec![0; family.len()];

    while let Some(&x0) = match order {
        PeelOrder::Fifo => ready.front(),
        PeelOrder::Lifo => ready.back(),
        PeelOrder::MinId => ready.iter().min(),
    } {
        // Take one remaining out-arc of x0.
        let arc = loop {
            let outs = g.out_arcs(x0);
            let cur = out_cursor[x0.index()];
            if cur >= outs.len() {
                break None;
            }
            let a = outs[cur];
            out_cursor[x0.index()] += 1;
            if !removed[a.index()] {
                break Some(a);
            }
        };
        let Some(arc) = arc else {
            // x0 exhausted: drop it from the pool.
            match order {
                PeelOrder::Fifo => {
                    ready.pop_front();
                }
                PeelOrder::Lifo => {
                    ready.pop_back();
                }
                PeelOrder::MinId => {
                    let pos = ready.iter().position(|&v| v == x0).expect("x0 in pool"); // lint: allow(no-panic): x0 was taken from `ready` above
                    ready.remove(pos);
                }
            }
            continue;
        };
        removed[arc.index()] = true;
        let y0 = g.head(arc);
        indeg[y0.index()] -= 1;
        if indeg[y0.index()] == 0 && g.out_arcs(y0).iter().any(|&a| !removed[a.index()]) {
            ready.push_back(y0);
        }

        // Advance the dipaths whose front is `arc`.
        let mut affected = Vec::new();
        for id in std::mem::take(&mut bucket[arc.index()]) {
            let path = family.path(id);
            front_of[id.index()] += 1;
            let was_last = front_of[id.index()] == path.len();
            if !was_last {
                let next = path.arcs()[front_of[id.index()]];
                bucket[next.index()].push(id);
            }
            affected.push((id, was_last));
        }
        steps.push(PeelStep { arc, affected });
    }

    debug_assert_eq!(steps.len(), m, "every arc of a DAG gets peeled");
    debug_assert!(front_of
        .iter()
        .enumerate()
        .all(|(i, &f)| f == family.path(PathId::from_index(i)).len()));
    Ok(PeelLog { steps })
}

/// Outcome of the Theorem-1 coloring, including the quantities the theorem
/// equates.
#[derive(Clone, Debug)]
pub struct Theorem1Result {
    /// The wavelength assignment (uses colors `0..load`).
    pub assignment: WavelengthAssignment,
    /// `π(G, P)` — also the number of wavelengths used when non-zero.
    pub load: usize,
    /// Number of Kempe swaps performed during the replay.
    pub kempe_swaps: usize,
}

/// Color `family` on `g` with exactly `π(G, P)` wavelengths (Theorem 1),
/// using default peel order and Kempe strategy.
pub fn color_optimal(g: &Digraph, family: &DipathFamily) -> Result<Theorem1Result, CoreError> {
    color_optimal_with(g, family, PeelOrder::default(), KempeStrategy::default())
}

/// [`color_optimal`] with explicit ablation knobs.
pub fn color_optimal_with(
    g: &Digraph,
    family: &DipathFamily,
    order: PeelOrder,
    kempe: KempeStrategy,
) -> Result<Theorem1Result, CoreError> {
    let log = peel(g, family, order)?;
    replay(g, family, &log, kempe)
}

/// The replay phase: rebuild the graph arc by arc (reverse peel order),
/// keeping an always-valid partial coloring.
fn replay(
    g: &Digraph,
    family: &DipathFamily,
    log: &PeelLog,
    kempe: KempeStrategy,
) -> Result<Theorem1Result, CoreError> {
    let pi = load::max_load(g, family);
    let np = family.len();
    const UNCOLORED: usize = usize::MAX;
    let mut colors = vec![UNCOLORED; np];

    // Dynamic conflict adjacency: grows by one clique per replayed arc
    // (before a step, no live dipath contains the step's arc, so all new
    // conflicts are within the step's affected set).
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); np];
    let mut kempe_swaps = 0usize;

    // Scratch palette bitset, reused per step.
    let mut used = BitSet::new(pi.max(1));

    for step in log.steps.iter().rev() {
        if step.affected.is_empty() {
            continue;
        }
        // P0 = already-live dipaths being extended; newborns take fresh colors.
        let p0: Vec<PathId> = step
            .affected
            .iter()
            .filter(|&&(_, was_last)| !was_last)
            .map(|&(id, _)| id)
            .collect();

        // Make P0's colors pairwise distinct via Kempe swaps.
        loop {
            used.clear();
            let mut dup: Option<(PathId, PathId)> = None; // (keeper, to-flip)
            let mut keeper_of: Vec<Option<PathId>> = vec![None; pi.max(1)];
            for &p in &p0 {
                let c = colors[p.index()];
                debug_assert_ne!(c, UNCOLORED, "live dipath must be colored");
                if let Some(k) = keeper_of[c] {
                    // Record the first duplicate but keep scanning: β must
                    // avoid the colors of *every* P0 member.
                    dup.get_or_insert((k, p));
                } else {
                    keeper_of[c] = Some(p);
                }
                used.insert(c);
            }
            let Some((keeper, flip)) = dup else { break };
            // β: a palette color unused by P0. Exists because P0 shows at
            // most |P0| − 1 < π distinct colors (the duplication).
            let beta = used.first_absent().expect("palette has a free color"); // lint: allow(no-panic): P0 shows at most π − 1 distinct colors, so one is absent
            let alpha = colors[flip.index()];
            let swapped = match kempe {
                KempeStrategy::ComponentSwap => {
                    kempe_component_swap(&adj, &mut colors, flip, alpha, beta, keeper)
                }
                KempeStrategy::Cascade => {
                    kempe_cascade(&adj, &mut colors, flip, alpha, beta, keeper)
                }
            };
            match swapped {
                Ok(()) => kempe_swaps += 1,
                Err(chain) => return Err(CoreError::InternalCycleObstruction { chain }),
            }
        }

        // Extend: every affected dipath now (re)contains `step.arc`; they are
        // pairwise in conflict, so wire the clique and color the newborns.
        used.clear();
        for &p in &p0 {
            used.insert(colors[p.index()]);
        }
        for &(id, was_last) in &step.affected {
            if was_last {
                let c = used.first_absent().expect("π bounds the arc's clique"); // lint: allow(no-panic): π bounds the clique at this arc, so a color is free
                used.insert(c);
                colors[id.index()] = c;
            }
        }
        let members: Vec<PathId> = step.affected.iter().map(|&(id, _)| id).collect();
        for (i, &p) in members.iter().enumerate() {
            for &q in &members[i + 1..] {
                // Parallel growth can re-announce a pair; dedup on insert.
                if !adj[p.index()].contains(&q.0) {
                    adj[p.index()].push(q.0);
                    adj[q.index()].push(p.0);
                }
            }
        }
    }

    debug_assert!(colors.iter().all(|&c| c != UNCOLORED || family.is_empty()));
    let assignment = WavelengthAssignment::new(colors);
    debug_assert!(assignment.is_valid(g, family));
    Ok(Theorem1Result {
        assignment,
        load: pi,
        kempe_swaps,
    })
}

/// Flip α↔β on the conflict component of `start`, refusing to touch
/// `protected`. `Err` carries the discovery chain from `start` towards
/// `protected` — the paper's Figure 4 sequence `P1, …, Pp = P0`.
fn kempe_component_swap(
    adj: &[Vec<u32>],
    colors: &mut [usize],
    start: PathId,
    alpha: usize,
    beta: usize,
    protected: PathId,
) -> Result<(), Vec<PathId>> {
    let mut parent: Vec<Option<PathId>> = vec![None; colors.len()];
    let mut comp = vec![start];
    let mut in_comp = vec![false; colors.len()];
    in_comp[start.index()] = true;
    let mut stack = vec![start];
    while let Some(p) = stack.pop() {
        for &qn in &adj[p.index()] {
            let q = PathId(qn);
            if in_comp[q.index()] {
                continue;
            }
            let c = colors[q.index()];
            if c != alpha && c != beta {
                continue;
            }
            if q == protected {
                // Unwind the chain start → … → protected.
                let mut chain = vec![q, p];
                let mut cur = p;
                while let Some(par) = parent[cur.index()] {
                    chain.push(par);
                    cur = par;
                }
                chain.reverse();
                return Err(chain);
            }
            in_comp[q.index()] = true;
            parent[q.index()] = Some(p);
            comp.push(q);
            stack.push(q);
        }
    }
    for p in comp {
        let c = &mut colors[p.index()];
        *c = if *c == alpha { beta } else { alpha };
    }
    Ok(())
}

/// The paper's literal cascade: flip `start` to β; then the family `P2` of
/// β-colored dipaths clashing with it flips to α; then the α-colored
/// dipaths clashing with `P2` flip to β; and so on until no clash remains
/// (case A) or `protected` must flip (case C). Case B (re-flipping) cannot
/// occur — asserted.
fn kempe_cascade(
    adj: &[Vec<u32>],
    colors: &mut [usize],
    start: PathId,
    alpha: usize,
    beta: usize,
    protected: PathId,
) -> Result<(), Vec<PathId>> {
    let snapshot: Vec<usize> = colors.to_vec();
    let mut flipped = vec![false; colors.len()];
    let mut chain_parent: Vec<Option<PathId>> = vec![None; colors.len()];

    colors[start.index()] = beta;
    flipped[start.index()] = true;
    let mut wave = vec![start];
    // The wave alternates: after flipping to γ′, clashes are with old-γ′.
    loop {
        let mut next_wave: Vec<PathId> = Vec::new();
        for &p in &wave {
            let pc = colors[p.index()];
            for &qn in &adj[p.index()] {
                let q = PathId(qn);
                if colors[q.index()] != pc {
                    continue; // no clash
                }
                if q == protected {
                    let mut chain = vec![q, p];
                    let mut cur = p;
                    while let Some(par) = chain_parent[cur.index()] {
                        chain.push(par);
                        cur = par;
                    }
                    chain.reverse();
                    // Restore: the cascade failed (case C).
                    colors.copy_from_slice(&snapshot);
                    return Err(chain);
                }
                // Case B impossible: a dipath never flips twice.
                assert!(!flipped[q.index()], "case B: dipath reflipped");
                flipped[q.index()] = true;
                chain_parent[q.index()] = Some(p);
                colors[q.index()] = if colors[q.index()] == alpha {
                    beta
                } else {
                    alpha
                };
                next_wave.push(q);
            }
        }
        if next_wave.is_empty() {
            return Ok(()); // case A
        }
        wave = next_wave;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_paths::Dipath;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn path(g: &Digraph, route: &[usize]) -> Dipath {
        let route: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
        Dipath::from_vertices(g, &route).unwrap()
    }

    /// Chain instance: w = π = 2.
    fn chain_instance() -> (Digraph, DipathFamily) {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2, 3]),
            path(&g, &[2, 3, 4]),
        ]);
        (g, f)
    }

    #[test]
    fn peel_consumes_every_arc() {
        let (g, f) = chain_instance();
        for order in [PeelOrder::Fifo, PeelOrder::Lifo, PeelOrder::MinId] {
            let log = peel(&g, &f, order).unwrap();
            assert_eq!(log.steps.len(), g.arc_count());
            let mut seen = std::collections::HashSet::new();
            for s in &log.steps {
                assert!(seen.insert(s.arc), "arc peeled twice");
            }
        }
    }

    #[test]
    fn peel_affects_paths_front_first() {
        let (g, f) = chain_instance();
        let log = peel(&g, &f, PeelOrder::Fifo).unwrap();
        // Track fronts: a path must be affected exactly len times, in
        // increasing arc positions.
        let mut hits: Vec<Vec<ArcId>> = vec![Vec::new(); f.len()];
        for s in &log.steps {
            for &(id, _) in &s.affected {
                hits[id.index()].push(s.arc);
            }
        }
        for (i, h) in hits.iter().enumerate() {
            let p = f.path(PathId::from_index(i));
            assert_eq!(h, p.arcs(), "path consumed front-first in arc order");
        }
    }

    #[test]
    fn peel_rejects_cyclic() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::new();
        assert!(matches!(
            peel(&g, &f, PeelOrder::Fifo),
            Err(CoreError::NotADag(_))
        ));
    }

    #[test]
    fn chain_colored_with_exactly_pi() {
        let (g, f) = chain_instance();
        let res = color_optimal(&g, &f).unwrap();
        assert_eq!(res.load, 2);
        assert!(res.assignment.is_valid(&g, &f));
        assert_eq!(res.assignment.num_colors(), 2, "w == π");
    }

    #[test]
    fn all_orders_and_strategies_agree_on_color_count() {
        let (g, f) = chain_instance();
        for order in [PeelOrder::Fifo, PeelOrder::Lifo, PeelOrder::MinId] {
            for strat in [KempeStrategy::ComponentSwap, KempeStrategy::Cascade] {
                let res = color_optimal_with(&g, &f, order, strat).unwrap();
                assert!(res.assignment.is_valid(&g, &f), "{order:?}/{strat:?}");
                assert_eq!(res.assignment.num_colors(), 2, "{order:?}/{strat:?}");
            }
        }
    }

    #[test]
    fn rooted_tree_all_to_all_is_optimal() {
        // Out-tree: root 0, dipaths from root to every leaf plus subtree
        // paths — the paper's rooted-tree special case.
        let g = from_edges(7, &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 3]),
            path(&g, &[0, 1, 4]),
            path(&g, &[0, 2, 5]),
            path(&g, &[0, 2, 6]),
            path(&g, &[1, 3]),
            path(&g, &[2, 6]),
            path(&g, &[0, 1]),
        ]);
        let pi = load::max_load(&g, &f);
        let res = color_optimal(&g, &f).unwrap();
        assert!(res.assignment.is_valid(&g, &f));
        assert_eq!(res.assignment.num_colors(), pi);
        assert_eq!(res.load, pi);
    }

    #[test]
    fn empty_family() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let f = DipathFamily::new();
        let res = color_optimal(&g, &f).unwrap();
        assert_eq!(res.load, 0);
        assert_eq!(res.assignment.num_colors(), 0);
        assert!(res.assignment.is_valid(&g, &f));
    }

    #[test]
    fn single_dipath() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let f = DipathFamily::from_paths(vec![path(&g, &[0, 1, 2])]);
        let res = color_optimal(&g, &f).unwrap();
        assert_eq!(res.load, 1);
        assert_eq!(res.assignment.num_colors(), 1);
    }

    #[test]
    fn identical_replicated_dipaths_need_pi_colors() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let f = DipathFamily::from_paths(vec![path(&g, &[0, 1, 2])]).replicate(5);
        let res = color_optimal(&g, &f).unwrap();
        assert_eq!(res.load, 5);
        assert_eq!(res.assignment.num_colors(), 5);
        assert!(res.assignment.is_valid(&g, &f));
    }

    #[test]
    fn fan_dag_forces_recoloring() {
        // Two levels of sharing that force the replay to actually recolor:
        // dipaths overlap pairwise on different arcs with load 2 everywhere,
        // while a greedy front-assignment would clash.
        let g = from_edges(7, &[(0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)]);
        // Not internal-cycle-free? 4,5 produce a diamond 3→4→6, 3→5→6 whose
        // vertices: 3 (pred 2 ✓), 4, 5, 6 — 6 is a sink ⇒ not internal. OK.
        assert!(crate::internal::is_internal_cycle_free(&g));
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 2, 3, 4]),
            path(&g, &[1, 2, 3, 5]),
            path(&g, &[3, 4, 6]),
            path(&g, &[3, 5, 6]),
        ]);
        let pi = load::max_load(&g, &f);
        assert_eq!(pi, 2);
        let res = color_optimal(&g, &f).unwrap();
        assert!(res.assignment.is_valid(&g, &f));
        assert_eq!(res.assignment.num_colors(), 2);
    }

    #[test]
    fn cascade_matches_component_swap_counts() {
        let g = from_edges(7, &[(0, 2), (1, 2), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 2, 3, 4]),
            path(&g, &[1, 2, 3, 5]),
            path(&g, &[3, 4, 6]),
            path(&g, &[3, 5, 6]),
        ]);
        let a = color_optimal_with(&g, &f, PeelOrder::Fifo, KempeStrategy::ComponentSwap).unwrap();
        let b = color_optimal_with(&g, &f, PeelOrder::Fifo, KempeStrategy::Cascade).unwrap();
        assert_eq!(a.assignment.num_colors(), b.assignment.num_colors());
        assert!(b.assignment.is_valid(&g, &f));
    }

    #[test]
    fn parallel_arcs_are_independent_channels() {
        // Two parallel fibers 0→1: two dipaths, one per fiber — no conflict,
        // π = 1, one wavelength suffices.
        let mut g = from_edges(2, &[(0, 1)]);
        let second = g.add_arc(v(0), v(1));
        let f = DipathFamily::from_paths(vec![
            Dipath::single(g.find_arc(v(0), v(1)).unwrap()),
            Dipath::single(second),
        ]);
        let res = color_optimal(&g, &f).unwrap();
        assert_eq!(res.load, 1);
        assert_eq!(res.assignment.num_colors(), 1);
        assert!(res.assignment.is_valid(&g, &f));
    }
}
