//! A persistent, structurally-shared color table indexed by stable path id.
//!
//! The incremental [`crate::Workspace`] keeps the merged coloring in a
//! [`ColorTable`]: chunked `Arc` pages of [`PAGE_SIZE`] colors each,
//! patched copy-on-write per refresh. Indexing by *stable* id (slot
//! number) rather than dense rank is what makes the sharing effective —
//! dense ranks shift on every removal, which would dirty pages whose
//! members never changed color, while stable slots move only when their
//! own color does.
//!
//! [`ColorTable::clone`] is a snapshot: O(pages) pointer copies, after
//! which the two tables share every page until one of them patches it
//! ([`std::sync::Arc::make_mut`] path-copies the touched page only). A
//! refresh that re-solves one shard therefore leaves every other page of
//! the previous snapshot shared verbatim — the "unchanged-shard merge
//! shares its pages" contract the delta query path is built on.

use std::sync::Arc;

/// Colors per page. 128 × 4 bytes = one 512-byte page — small enough
/// that a single-member patch copies little, large enough that a
/// million-slot table is only ~8k pointers.
pub const PAGE_SIZE: usize = 128;

/// The not-live sentinel (colors are dense ranks starting at 0, and a
/// family can never hold `u32::MAX` members — `PathId` is a `u32`).
const EMPTY: u32 = u32::MAX;

/// A persistent vector of colors keyed by stable path id.
///
/// Absent slots (never assigned, or cleared by a removal) read as
/// `None`. Cloning is a cheap snapshot; mutation copies only the touched
/// page when it is shared.
#[derive(Clone, Debug, Default)]
pub struct ColorTable {
    pages: Vec<Arc<[u32; PAGE_SIZE]>>,
}

impl ColorTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The color at `slot`, or `None` when the slot holds no live color.
    #[inline]
    pub fn get(&self, slot: usize) -> Option<u32> {
        let v = *self.pages.get(slot / PAGE_SIZE)?.get(slot % PAGE_SIZE)?;
        (v != EMPTY).then_some(v)
    }

    /// Assign `color` to `slot`, growing the table as needed. No-op (and
    /// no page copy) when the slot already holds `color`.
    pub fn set(&mut self, slot: usize, color: u32) {
        debug_assert_ne!(color, EMPTY, "u32::MAX is the not-live sentinel");
        let page_idx = slot / PAGE_SIZE;
        while self.pages.len() <= page_idx {
            self.pages.push(Arc::new([EMPTY; PAGE_SIZE]));
        }
        let page = &mut self.pages[page_idx];
        if page[slot % PAGE_SIZE] != color {
            Arc::make_mut(page)[slot % PAGE_SIZE] = color;
        }
    }

    /// Clear `slot` back to not-live. No-op (and no page copy) when the
    /// slot is already clear or was never allocated.
    pub fn clear(&mut self, slot: usize) {
        let page_idx = slot / PAGE_SIZE;
        if let Some(page) = self.pages.get_mut(page_idx) {
            if page[slot % PAGE_SIZE] != EMPTY {
                Arc::make_mut(page)[slot % PAGE_SIZE] = EMPTY;
            }
        }
    }

    /// Number of allocated pages (shared or not).
    #[inline]
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages this table shares (same allocation) with `other`,
    /// compared positionally — the structural-sharing measure the tests
    /// and the gated report assert on.
    pub fn shared_pages_with(&self, other: &ColorTable) -> usize {
        self.pages
            .iter()
            .zip(&other.pages)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_and_cleared_slots_read_none() {
        let mut t = ColorTable::new();
        assert_eq!(t.get(0), None);
        assert_eq!(t.get(10_000), None);
        t.set(3, 7);
        assert_eq!(t.get(3), Some(7));
        t.clear(3);
        assert_eq!(t.get(3), None);
        t.clear(99_999); // never allocated: no-op, no growth
        assert_eq!(t.page_count(), 1);
    }

    #[test]
    fn growth_is_page_granular() {
        let mut t = ColorTable::new();
        t.set(PAGE_SIZE * 2 + 1, 4);
        assert_eq!(t.page_count(), 3);
        assert_eq!(t.get(PAGE_SIZE * 2 + 1), Some(4));
        assert_eq!(t.get(PAGE_SIZE), None);
    }

    #[test]
    fn snapshots_share_untouched_pages() {
        let mut t = ColorTable::new();
        for slot in 0..PAGE_SIZE * 4 {
            t.set(slot, slot as u32 % 5);
        }
        let snap = t.clone();
        assert_eq!(snap.shared_pages_with(&t), 4, "a snapshot shares all pages");
        // Patch one slot: exactly one page diverges.
        t.set(PAGE_SIZE + 3, 99);
        assert_eq!(snap.shared_pages_with(&t), 3);
        assert_eq!(snap.get(PAGE_SIZE + 3), Some((PAGE_SIZE as u32 + 3) % 5));
        assert_eq!(t.get(PAGE_SIZE + 3), Some(99));
        // Writing an identical value copies nothing.
        let snap2 = t.clone();
        t.set(7, 7 % 5);
        assert_eq!(snap2.shared_pages_with(&t), 4);
    }
}
