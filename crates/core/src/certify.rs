//! Instance certification: one call that checks everything the theorems
//! promise about a solved instance.
//!
//! Downstream users (and our own report binary) want a single auditable
//! object: is the assignment conflict-free, does it meet the class's
//! guaranteed bound, is it provably optimal, and which theorem vouches for
//! it. [`certify`] recomputes all of it from scratch — independent of the
//! solver's internal bookkeeping — so it doubles as an oracle in tests.

use crate::bounds;
use crate::internal::{self, DagClass};
use crate::solver::Solution;
use dagwave_graph::Digraph;
use dagwave_paths::{load, DipathFamily};

/// The outcome of auditing a [`Solution`] against its instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// The assignment respects every arc conflict.
    pub conflict_free: bool,
    /// Recomputed `π(G, P)`.
    pub load: usize,
    /// Wavelengths used by the assignment.
    pub colors_used: usize,
    /// The instance class (recomputed).
    pub class: DagClass,
    /// The a-priori bound for the class, if one exists.
    pub guaranteed_bound: Option<usize>,
    /// `colors_used` is within the guaranteed bound (vacuously true when
    /// no bound exists).
    pub within_bound: bool,
    /// `colors_used == π`: the assignment is optimal by the universal
    /// lower bound.
    pub tight: bool,
}

impl Certificate {
    /// `true` when everything a downstream consumer needs holds:
    /// conflict-free and within the class bound.
    pub fn is_sound(&self) -> bool {
        self.conflict_free && self.within_bound
    }
}

/// Audit `solution` against the instance it claims to solve.
pub fn certify(g: &Digraph, family: &DipathFamily, solution: &Solution) -> Certificate {
    certify_assignment(g, family, &solution.assignment)
}

/// Audit a bare assignment against an instance — the same recomputed
/// checks as [`certify`], usable before a [`Solution`] exists. This is the
/// validity oracle the solving surface runs on every backend attempt.
pub fn certify_assignment(
    g: &Digraph,
    family: &DipathFamily,
    assignment: &crate::WavelengthAssignment,
) -> Certificate {
    let conflict_free = is_conflict_free(g, family, assignment);
    let pi = load::max_load(g, family);
    let colors_used = assignment.num_colors();
    let class = internal::classify(g);
    let guaranteed_bound = bounds::class_bound(class, pi);
    let within_bound = guaranteed_bound.is_none_or(|b| colors_used <= b);
    Certificate {
        conflict_free,
        load: pi,
        colors_used,
        class,
        guaranteed_bound,
        within_bound,
        tight: colors_used == pi,
    }
}

/// The conflict-freeness primitive behind [`Certificate::conflict_free`] —
/// exposed so the solving surface can stamp each backend attempt with the
/// same audit the full certificate performs, without re-deriving the
/// instance class and load it already knows.
pub fn is_conflict_free(
    g: &Digraph,
    family: &DipathFamily,
    assignment: &crate::WavelengthAssignment,
) -> bool {
    assignment.is_valid(g, family)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveSession;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;
    use dagwave_paths::Dipath;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    #[test]
    fn certifies_theorem1_solution() {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let family = DipathFamily::from_paths(vec![
            Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
            Dipath::from_vertices(&g, &[v(0), v(1), v(3)]).unwrap(),
        ]);
        let sol = SolveSession::auto().solve(&g, &family).unwrap();
        let cert = certify(&g, &family, &sol);
        assert!(cert.is_sound());
        assert!(cert.tight);
        assert_eq!(cert.class, DagClass::InternalCycleFree);
        assert_eq!(cert.guaranteed_bound, Some(cert.load));
        assert_eq!(cert.colors_used, 2);
    }

    #[test]
    fn detects_corrupted_assignment() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let family = DipathFamily::from_paths(vec![
            Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
            Dipath::from_vertices(&g, &[v(1), v(2)]).unwrap(),
        ]);
        let mut sol = SolveSession::auto().solve(&g, &family).unwrap();
        // Corrupt: force both dipaths to the same wavelength.
        sol.assignment = crate::WavelengthAssignment::new(vec![0, 0]);
        let cert = certify(&g, &family, &sol);
        assert!(!cert.conflict_free);
        assert!(!cert.is_sound());
    }

    #[test]
    fn general_class_has_no_bound() {
        let inst = {
            // Guarded diamond (internal cycle, not UPP).
            let g = from_edges(6, &[(0, 1), (1, 2), (2, 4), (1, 3), (3, 4), (4, 5)]);
            let family = DipathFamily::from_paths(vec![
                Dipath::from_vertices(&g, &[v(1), v(2), v(4)]).unwrap(),
                Dipath::from_vertices(&g, &[v(1), v(3), v(4)]).unwrap(),
            ]);
            (g, family)
        };
        let sol = SolveSession::auto().solve(&inst.0, &inst.1).unwrap();
        let cert = certify(&inst.0, &inst.1, &sol);
        assert_eq!(cert.guaranteed_bound, None);
        assert!(cert.within_bound, "vacuous without a bound");
        assert!(cert.is_sound());
    }

    #[test]
    fn havet_certificate_hits_the_bound() {
        use dagwave_paths::PathId;
        let g = from_edges(
            12,
            &[
                (0, 2),
                (1, 3),
                (8, 2),
                (9, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (4, 10),
                (5, 11),
            ],
        );
        let route = |r: &[usize]| {
            let rr: Vec<VertexId> = r.iter().map(|&i| v(i)).collect();
            Dipath::from_vertices(&g, &rr).unwrap()
        };
        let family = DipathFamily::from_paths(vec![
            route(&[0, 2, 4, 10]),
            route(&[0, 2, 5, 7]),
            route(&[1, 3, 5, 7]),
            route(&[1, 3, 4, 6]),
            route(&[8, 2, 4, 6]),
            route(&[8, 2, 5, 11]),
            route(&[9, 3, 5, 11]),
            route(&[9, 3, 4, 10]),
        ]);
        let sol = SolveSession::auto().solve(&g, &family).unwrap();
        let cert = certify(&g, &family, &sol);
        assert!(cert.is_sound());
        assert_eq!(cert.class, DagClass::UppSingleCycle);
        assert_eq!(cert.guaranteed_bound, Some(3));
        assert_eq!(cert.colors_used, 3, "bound attained (Theorem 7)");
        assert!(!cert.tight, "w = 3 > 2 = π here");
        let _ = PathId(0);
    }
}
