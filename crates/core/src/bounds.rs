//! Bound arithmetic from the paper's statements.

use crate::internal::DagClass;

/// The a-priori bound the paper guarantees for `class` at load `pi`
/// (`π` / `⌈4π/3⌉` / `⌈(4/3)^C π⌉`), or `None` for non-UPP DAGs with
/// internal cycles (unbounded ratio, Figure 1). Shared by the solver's
/// `guaranteed_bound` and the certification audit.
pub fn class_bound(class: DagClass, pi: usize) -> Option<usize> {
    match class {
        DagClass::InternalCycleFree => Some(pi),
        DagClass::UppSingleCycle => Some(theorem6_bound(pi)),
        DagClass::UppMultiCycle { cycles } => Some(multi_cycle_bound(pi, cycles)),
        DagClass::General { .. } => None,
    }
}

/// `⌈4π/3⌉` — the Theorem 6 upper bound for UPP-DAGs with one internal
/// cycle.
pub fn theorem6_bound(pi: usize) -> usize {
    (4 * pi).div_ceil(3)
}

/// `⌈(4/3)^C · π⌉` — the paper's generalized bound for UPP-DAGs with `C`
/// internal cycles ("the argument of the proof can be repeated").
pub fn multi_cycle_bound(pi: usize, cycles: usize) -> usize {
    // Integer-safe: multiply by 4^C then ceil-divide by 3^C. Caps C to keep
    // the powers in u128 (beyond ~70 cycles the bound is astronomically
    // loose anyway).
    let c = cycles.min(64) as u32;
    let num = (pi as u128) * 4u128.pow(c);
    let den = 3u128.pow(c);
    num.div_ceil(den) as usize
}

/// `⌈8h/3⌉` — the exact wavelength number of Theorem 7's replicated Havet
/// family at replication factor `h` (where `π = 2h`).
pub fn havet_wavelengths(h: usize) -> usize {
    (8 * h).div_ceil(3)
}

/// `⌈5h/2⌉` — the wavelength number of the replicated Theorem-2 `C5`
/// family (paper, discussion before Theorem 7: ratio 5/4, not tight).
pub fn c5_wavelengths(h: usize) -> usize {
    (5 * h).div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem6_values() {
        assert_eq!(theorem6_bound(0), 0);
        assert_eq!(theorem6_bound(1), 2);
        assert_eq!(theorem6_bound(2), 3);
        assert_eq!(theorem6_bound(3), 4);
        assert_eq!(theorem6_bound(6), 8);
        assert_eq!(theorem6_bound(100), 134);
    }

    #[test]
    fn multi_cycle_reduces_to_theorem6() {
        for pi in 0..50 {
            assert_eq!(multi_cycle_bound(pi, 1), theorem6_bound(pi));
            assert_eq!(multi_cycle_bound(pi, 0), pi);
        }
    }

    #[test]
    fn multi_cycle_grows() {
        assert_eq!(multi_cycle_bound(9, 2), 16);
        assert!(multi_cycle_bound(10, 3) >= multi_cycle_bound(10, 2));
    }

    #[test]
    fn havet_matches_paper() {
        // π = 2h, w = ⌈8h/3⌉: ratio tends to 4/3.
        assert_eq!(havet_wavelengths(1), 3);
        assert_eq!(havet_wavelengths(3), 8);
        assert_eq!(havet_wavelengths(6), 16);
        for h in 1..100 {
            let pi = 2 * h;
            assert!(havet_wavelengths(h) <= theorem6_bound(pi), "h={h}");
        }
        // Tightness at multiples of 3: ⌈8h/3⌉ = ⌈4(2h)/3⌉ exactly.
        for h in [3usize, 6, 9, 30] {
            assert_eq!(havet_wavelengths(h), theorem6_bound(2 * h));
        }
    }

    #[test]
    fn class_bound_matches_the_taxonomy() {
        assert_eq!(class_bound(DagClass::InternalCycleFree, 7), Some(7));
        assert_eq!(class_bound(DagClass::UppSingleCycle, 6), Some(8));
        assert_eq!(
            class_bound(DagClass::UppMultiCycle { cycles: 2 }, 9),
            Some(16)
        );
        assert_eq!(class_bound(DagClass::General { cycles: 1 }, 5), None);
    }

    #[test]
    fn c5_ratio_is_five_fourths() {
        assert_eq!(c5_wavelengths(1), 3);
        assert_eq!(c5_wavelengths(2), 5);
        // 5h/2 over π = 2h gives ratio 5/4 < 4/3: never above the bound,
        // and strictly below once the ceilings stop coinciding.
        for h in 1..50 {
            assert!(c5_wavelengths(h) <= theorem6_bound(2 * h));
        }
        assert!(c5_wavelengths(12) < theorem6_bound(24));
    }
}
