//! Internal-cycle detection, counting, and witnesses.
//!
//! An **internal cycle** (paper, Section 2) is an oriented cycle of the
//! underlying multigraph all of whose vertices are *internal* in `G`
//! (indegree > 0 and outdegree > 0 — no source or sink of `G` on the
//! cycle). The Main Theorem says `w = π` holds for every family iff `G`
//! has none.
//!
//! Detection reduces to a forest check: restrict to the sub-multigraph
//! induced on internal vertices and test the underlying undirected
//! multigraph for acyclicity. Counting uses the cyclomatic number of that
//! sub-multigraph (the dimension of its cycle space).

use dagwave_graph::undirected::{self, OrientedCycle};
use dagwave_graph::{Digraph, SubgraphView, VertexId};

/// The view induced on the internal vertices of `g`.
pub fn internal_subgraph(g: &Digraph) -> SubgraphView<'_> {
    SubgraphView::induced(g, g.vertices().filter(|&v| g.is_internal(v)))
}

/// `true` if `g` contains an internal cycle.
pub fn has_internal_cycle(g: &Digraph) -> bool {
    !undirected::is_underlying_forest(&internal_subgraph(g))
}

/// `true` if `g` has **no** internal cycle — the hypothesis of Theorem 1.
pub fn is_internal_cycle_free(g: &Digraph) -> bool {
    !has_internal_cycle(g)
}

/// Number of independent internal cycles: the cyclomatic number of the
/// internal sub-multigraph. Theorem 6 requires this to be exactly 1; the
/// paper's generalized bound is `⌈(4/3)^C · π⌉` for `C` cycles.
pub fn internal_cycle_count(g: &Digraph) -> usize {
    undirected::cyclomatic_number(&internal_subgraph(g))
}

/// An explicit internal cycle of `g`, or `None` when there is none.
///
/// The returned [`OrientedCycle`] walks arcs of `g` (tagged with traversal
/// direction); every vertex on it is internal in `g`.
pub fn find_internal_cycle(g: &Digraph) -> Option<OrientedCycle> {
    undirected::find_underlying_cycle(&internal_subgraph(g))
}

/// Validate that `cycle` really is an internal cycle of `g`: well-formed as
/// an oriented cycle and with every vertex internal.
pub fn is_internal_cycle(g: &Digraph, cycle: &OrientedCycle) -> bool {
    cycle.validate(g) && cycle.vertices.iter().all(|&v| g.is_internal(v))
}

/// Classification of a DAG with respect to the paper's taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DagClass {
    /// No internal cycle: Theorem 1 applies, `w = π` for every family.
    InternalCycleFree,
    /// UPP with exactly one internal cycle: Theorem 6 applies,
    /// `w ≤ ⌈4π/3⌉`.
    UppSingleCycle,
    /// UPP with ≥ 2 internal cycles: conjectured unbounded ratio; the
    /// generalized bound `⌈(4/3)^C π⌉` holds.
    UppMultiCycle {
        /// Number of independent internal cycles.
        cycles: usize,
    },
    /// Not UPP, with internal cycles: ratio `w/π` is unbounded (Figure 1).
    General {
        /// Number of independent internal cycles.
        cycles: usize,
    },
}

impl std::fmt::Display for DagClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagClass::InternalCycleFree => write!(f, "internal-cycle-free"),
            DagClass::UppSingleCycle => write!(f, "upp-single-cycle"),
            DagClass::UppMultiCycle { cycles } => write!(f, "upp-multi-cycle({cycles})"),
            DagClass::General { cycles } => write!(f, "general({cycles} internal cycles)"),
        }
    }
}

/// Classify `g` (assumed to be a DAG).
pub fn classify(g: &Digraph) -> DagClass {
    let cycles = internal_cycle_count(g);
    if cycles == 0 {
        return DagClass::InternalCycleFree;
    }
    if dagwave_graph::pathcount::is_upp(g) {
        if cycles == 1 {
            DagClass::UppSingleCycle
        } else {
            DagClass::UppMultiCycle { cycles }
        }
    } else {
        DagClass::General { cycles }
    }
}

/// The internal vertices of `g` (convenience re-export of the digraph
/// query, kept here because the paper's definitions live in this module).
pub fn internal_vertices(g: &Digraph) -> Vec<VertexId> {
    g.internal_vertices()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;

    /// Figure 3's digraph: internal cycle b1,c1,d... built explicitly:
    /// a→b, b→c (two parallel routes via c and via e'), making the diamond
    /// between b and d internal because b has predecessor a and d has
    /// successor t.
    fn figure3_like() -> Digraph {
        // a=0, b=1, c=2, m=3 (second route), d=4, t=5
        // a→b, b→c, c→d, b→m, m→d, d→t : diamond b..d is internal.
        from_edges(6, &[(0, 1), (1, 2), (2, 4), (1, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn tree_has_no_internal_cycle() {
        let g = from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert!(is_internal_cycle_free(&g));
        assert_eq!(internal_cycle_count(&g), 0);
        assert!(find_internal_cycle(&g).is_none());
        assert_eq!(classify(&g), DagClass::InternalCycleFree);
    }

    #[test]
    fn bare_diamond_cycle_is_not_internal() {
        // Diamond 0→1→3, 0→2→3: the oriented cycle exists but vertex 0 is a
        // source and 3 a sink, so it is NOT internal (Figure 2a vs 2b).
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(is_internal_cycle_free(&g));
        assert_eq!(classify(&g), DagClass::InternalCycleFree);
    }

    #[test]
    fn guarded_diamond_is_internal() {
        let g = figure3_like();
        assert!(has_internal_cycle(&g));
        assert_eq!(internal_cycle_count(&g), 1);
        let cycle = find_internal_cycle(&g).unwrap();
        assert!(is_internal_cycle(&g, &cycle));
        assert_eq!(cycle.len(), 4);
        // All cycle vertices are the diamond 1, 2, 3, 4.
        let mut vs: Vec<_> = cycle.vertices.iter().map(|v| v.index()).collect();
        vs.sort_unstable();
        assert_eq!(vs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn classification_of_figure3() {
        let g = figure3_like();
        // The diamond gives two dipaths 1 → 4, so not UPP.
        assert_eq!(classify(&g), DagClass::General { cycles: 1 });
    }

    #[test]
    fn upp_single_cycle_class() {
        // Figure 9-ish: crossing single arcs b1→c1, b1→c2, b2→c1, b2→c2
        // would be parallel dipaths? No: dipaths b1→c1 etc. are single arcs,
        // all pairs distinct, UPP holds. Add guards to make vertices
        // internal: a_i→b_i, c_i→d_i.
        let g = from_edges(
            8,
            &[
                (0, 2), // a1→b1
                (1, 3), // a2→b2
                (2, 4), // b1→c1
                (2, 5), // b1→c2
                (3, 4), // b2→c1
                (3, 5), // b2→c2
                (4, 6), // c1→d1
                (5, 7), // c2→d2
            ],
        );
        assert!(dagwave_graph::pathcount::is_upp(&g));
        assert_eq!(internal_cycle_count(&g), 1);
        assert_eq!(classify(&g), DagClass::UppSingleCycle);
    }

    #[test]
    fn multi_cycle_counts() {
        // Two disjoint guarded diamonds.
        let g = from_edges(
            12,
            &[
                (0, 1),
                (1, 2),
                (2, 4),
                (1, 3),
                (3, 4),
                (4, 5),
                (6, 7),
                (7, 8),
                (8, 10),
                (7, 9),
                (9, 10),
                (10, 11),
            ],
        );
        assert_eq!(internal_cycle_count(&g), 2);
        assert_eq!(classify(&g), DagClass::General { cycles: 2 });
    }

    #[test]
    fn internal_vertices_query() {
        let g = figure3_like();
        let internal: Vec<usize> = internal_vertices(&g).iter().map(|v| v.index()).collect();
        assert_eq!(internal, vec![1, 2, 3, 4]);
    }

    #[test]
    fn chain_of_diamonds_without_guards() {
        // Two chained diamonds sharing a middle vertex: 0→{1,2}→3→{4,5}→6.
        // First diamond: 0 is a source (not internal). Second diamond: 6 is
        // a sink. Only cycles touching interior-only vertices count; here
        // vertex 3 is internal but each diamond has a non-internal vertex.
        let g = from_edges(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
            ],
        );
        assert!(is_internal_cycle_free(&g));
    }

    #[test]
    fn guarding_one_diamond_flips_classification() {
        // Same as above plus a guard making the first diamond internal.
        let g = from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 6),
                (7, 0),
            ],
        );
        assert!(has_internal_cycle(&g), "0 now has a predecessor");
        assert_eq!(internal_cycle_count(&g), 1);
    }

    #[test]
    fn class_display_names() {
        assert_eq!(
            DagClass::InternalCycleFree.to_string(),
            "internal-cycle-free"
        );
        assert_eq!(DagClass::UppSingleCycle.to_string(), "upp-single-cycle");
        assert_eq!(
            DagClass::UppMultiCycle { cycles: 2 }.to_string(),
            "upp-multi-cycle(2)"
        );
        assert_eq!(
            DagClass::General { cycles: 3 }.to_string(),
            "general(3 internal cycles)"
        );
    }
}
