//! Error types for the core algorithms.

use crate::backend::BackendKind;
use dagwave_graph::VertexId;
use dagwave_paths::PathId;
use std::fmt;

/// Errors produced by the wavelength-assignment algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The digraph is not acyclic (every algorithm here requires a DAG).
    NotADag(Vec<VertexId>),
    /// Theorem 1 was invoked on a DAG whose recoloring got blocked — the
    /// defining symptom of an internal cycle. Carries the alternating dipath
    /// chain of the failed Kempe cascade (the paper's Figure 4 walk).
    InternalCycleObstruction {
        /// The chain `P1, …, Pp = P0` of alternately-colored dipaths whose
        /// pairwise intersections trace the internal cycle.
        chain: Vec<PathId>,
    },
    /// Theorem 6 requires an UPP-DAG; this digraph has two dipaths between
    /// the witness pair.
    NotUpp(VertexId, VertexId),
    /// Theorem 6 requires exactly one internal cycle; this digraph has the
    /// stated number.
    WrongInternalCycleCount(usize),
    /// Theorem 6's merge produced a conflict that Facts 1–2 should prevent —
    /// indicates the instance violated a precondition undetected.
    MergeConflict(PathId, PathId),
    /// The solver panicked while processing one instance of a batch; the
    /// panic was isolated to that instance and its message captured here.
    SolverPanic(String),
    /// A [`Policy::Pinned`](crate::backend::Policy::Pinned) backend does
    /// not apply to this instance.
    BackendUnsupported {
        /// The pinned backend.
        backend: BackendKind,
        /// Why it declined the instance.
        reason: String,
    },
    /// A [`Policy::Portfolio`](crate::backend::Policy::Portfolio) had no
    /// member that could run on (and properly color) this instance.
    NoApplicableBackend,
    /// A backend's coloring failed the `certify` validity re-check — a
    /// backend contract violation, reported instead of handing back an
    /// improper assignment.
    BackendInvalid {
        /// The backend whose output failed certification.
        backend: BackendKind,
    },
    /// A workspace mutation named a path id that is not live (never
    /// allocated, or already removed).
    UnknownPath(PathId),
    /// A workspace mutation tried to add a dipath that is not valid on the
    /// workspace's graph (out-of-range arcs, or a non-contiguous arc
    /// sequence); carries the path-layer rejection.
    InvalidPath(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotADag(cycle) => {
                write!(f, "digraph has a directed cycle through")?;
                for v in cycle.iter().take(4) {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            CoreError::InternalCycleObstruction { chain } => write!(
                f,
                "recoloring blocked by an internal cycle (chain of {} dipaths)",
                chain.len()
            ),
            CoreError::NotUpp(u, v) => {
                write!(f, "digraph is not UPP: two dipaths from {u} to {v}")
            }
            CoreError::WrongInternalCycleCount(n) => {
                write!(f, "theorem 6 needs exactly one internal cycle, found {n}")
            }
            CoreError::MergeConflict(p, q) => {
                write!(f, "merge produced conflicting colors on {p} and {q}")
            }
            CoreError::SolverPanic(msg) => {
                write!(f, "solver panicked on this instance: {msg}")
            }
            CoreError::BackendUnsupported { backend, reason } => {
                write!(f, "pinned backend {backend} does not apply: {reason}")
            }
            CoreError::NoApplicableBackend => {
                write!(f, "no portfolio member applies to this instance")
            }
            CoreError::BackendInvalid { backend } => {
                write!(
                    f,
                    "backend {backend} produced a coloring that failed certification"
                )
            }
            CoreError::UnknownPath(id) => {
                write!(f, "no live dipath with id {id} in this workspace")
            }
            CoreError::InvalidPath(reason) => {
                write!(f, "dipath is not valid on the workspace graph: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::NotADag(vec![VertexId(0), VertexId(1)]);
        assert!(e.to_string().contains("directed cycle"));
        let e = CoreError::InternalCycleObstruction {
            chain: vec![PathId(0), PathId(1)],
        };
        assert!(e.to_string().contains("2 dipaths"));
        assert!(CoreError::NotUpp(VertexId(1), VertexId(2))
            .to_string()
            .contains("v1 to v2"));
        assert!(CoreError::WrongInternalCycleCount(3)
            .to_string()
            .contains('3'));
        assert!(CoreError::MergeConflict(PathId(0), PathId(9))
            .to_string()
            .contains("p9"));
        assert!(CoreError::SolverPanic("index out of bounds".into())
            .to_string()
            .contains("index out of bounds"));
        let e = CoreError::BackendUnsupported {
            backend: BackendKind::Theorem6,
            reason: "not UPP".into(),
        };
        assert!(e.to_string().contains("theorem6"));
        assert!(e.to_string().contains("not UPP"));
        assert!(CoreError::NoApplicableBackend
            .to_string()
            .contains("no portfolio member"));
        assert!(CoreError::BackendInvalid {
            backend: BackendKind::Dsatur
        }
        .to_string()
        .contains("dsatur"));
        assert!(CoreError::UnknownPath(PathId(6)).to_string().contains("p6"));
        assert!(CoreError::InvalidPath("arc e9 out of range".into())
            .to_string()
            .contains("e9"));
    }
}
