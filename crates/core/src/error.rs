//! Error types for the core algorithms.

use dagwave_graph::VertexId;
use dagwave_paths::PathId;
use std::fmt;

/// Errors produced by the wavelength-assignment algorithms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The digraph is not acyclic (every algorithm here requires a DAG).
    NotADag(Vec<VertexId>),
    /// Theorem 1 was invoked on a DAG whose recoloring got blocked — the
    /// defining symptom of an internal cycle. Carries the alternating dipath
    /// chain of the failed Kempe cascade (the paper's Figure 4 walk).
    InternalCycleObstruction {
        /// The chain `P1, …, Pp = P0` of alternately-colored dipaths whose
        /// pairwise intersections trace the internal cycle.
        chain: Vec<PathId>,
    },
    /// Theorem 6 requires an UPP-DAG; this digraph has two dipaths between
    /// the witness pair.
    NotUpp(VertexId, VertexId),
    /// Theorem 6 requires exactly one internal cycle; this digraph has the
    /// stated number.
    WrongInternalCycleCount(usize),
    /// Theorem 6's merge produced a conflict that Facts 1–2 should prevent —
    /// indicates the instance violated a precondition undetected.
    MergeConflict(PathId, PathId),
    /// The solver panicked while processing one instance of a batch; the
    /// panic was isolated to that instance and its message captured here.
    SolverPanic(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotADag(cycle) => {
                write!(f, "digraph has a directed cycle through")?;
                for v in cycle.iter().take(4) {
                    write!(f, " {v}")?;
                }
                Ok(())
            }
            CoreError::InternalCycleObstruction { chain } => write!(
                f,
                "recoloring blocked by an internal cycle (chain of {} dipaths)",
                chain.len()
            ),
            CoreError::NotUpp(u, v) => {
                write!(f, "digraph is not UPP: two dipaths from {u} to {v}")
            }
            CoreError::WrongInternalCycleCount(n) => {
                write!(f, "theorem 6 needs exactly one internal cycle, found {n}")
            }
            CoreError::MergeConflict(p, q) => {
                write!(f, "merge produced conflicting colors on {p} and {q}")
            }
            CoreError::SolverPanic(msg) => {
                write!(f, "solver panicked on this instance: {msg}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::NotADag(vec![VertexId(0), VertexId(1)]);
        assert!(e.to_string().contains("directed cycle"));
        let e = CoreError::InternalCycleObstruction {
            chain: vec![PathId(0), PathId(1)],
        };
        assert!(e.to_string().contains("2 dipaths"));
        assert!(CoreError::NotUpp(VertexId(1), VertexId(2))
            .to_string()
            .contains("v1 to v2"));
        assert!(CoreError::WrongInternalCycleCount(3)
            .to_string()
            .contains('3'));
        assert!(CoreError::MergeConflict(PathId(0), PathId(9))
            .to_string()
            .contains("p9"));
        assert!(CoreError::SolverPanic("index out of bounds".into())
            .to_string()
            .contains("index out of bounds"));
    }
}
