//! # dagwave-core
//!
//! The algorithms of Bermond & Cosnard, *"Minimum number of wavelengths
//! equals load in a DAG without internal cycle"* (IPDPS 2007).
//!
//! Given a DAG `G` and a family of dipaths `P`, the **load** `π(G, P)` is
//! the maximum number of dipaths through any arc and the **wavelength
//! number** `w(G, P)` is the chromatic number of the conflict graph. Always
//! `π ≤ w`. The paper proves:
//!
//! * **Theorem 1** — if `G` has no *internal cycle* then `w = π` for every
//!   family, constructively: [`theorem1::color_optimal`] produces an optimal
//!   assignment in polynomial time.
//! * **Theorem 2 / Main Theorem** — with an internal cycle there is always a
//!   family with `π = 2 < 3 = w`, so the absence of internal cycles exactly
//!   characterizes `w = π` universality ([`internal`] detects and counts
//!   them, and `dagwave-gen` builds the witness families).
//! * **Property 3 / Corollary 5** — on UPP-DAGs (unique dipath between any
//!   pair) the load equals the clique number of the conflict graph
//!   ([`upp`]).
//! * **Theorem 6 / 7** — on an UPP-DAG with exactly one internal cycle,
//!   `w ≤ ⌈4π/3⌉`, and the bound is tight ([`theorem6`]).
//!
//! The solving surface is pluggable: every method above (plus the
//! exact/heuristic fallbacks from `dagwave-color`) is a named
//! [`backend::ColoringBackend`], and a [`solver::SolveSession`] — built
//! with [`solver::SolverBuilder`] — dispatches to them under a
//! [`backend::Policy`]: `Auto` (classify and pick the strongest method),
//! `Pinned` (one named backend), or `Portfolio` (race several on the rayon
//! pool, keep the fewest colors deterministically).
//!
//! ```
//! use dagwave_graph::builder::from_edges;
//! use dagwave_graph::VertexId;
//! use dagwave_paths::{Dipath, DipathFamily};
//! use dagwave_core::SolveSession;
//!
//! // A rooted tree (no internal cycle): w must equal π.
//! let g = from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
//! let v = |i| VertexId::from_index(i);
//! let mut family = DipathFamily::new();
//! family.push(Dipath::from_vertices(&g, &[v(0), v(1), v(3)]).unwrap());
//! family.push(Dipath::from_vertices(&g, &[v(0), v(1), v(4)]).unwrap());
//! family.push(Dipath::from_vertices(&g, &[v(0), v(2)]).unwrap());
//!
//! let solution = SolveSession::auto().solve(&g, &family).unwrap();
//! assert_eq!(solution.num_colors, solution.load); // w == π
//! ```
//!
//! A portfolio session races named backends and records per-backend
//! provenance on the [`Solution`]:
//!
//! ```
//! # use dagwave_graph::builder::from_edges;
//! # use dagwave_graph::VertexId;
//! # use dagwave_paths::{Dipath, DipathFamily};
//! use dagwave_core::{BackendKind, SolverBuilder};
//!
//! # let g = from_edges(3, &[(0, 1), (1, 2)]);
//! # let v = |i| VertexId::from_index(i);
//! # let family = DipathFamily::from_paths(vec![
//! #     Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap(),
//! # ]);
//! let session = SolverBuilder::new()
//!     .portfolio(vec![BackendKind::Dsatur, BackendKind::KempeGreedy])
//!     .build();
//! let solution = session.solve(&g, &family).unwrap();
//! assert_eq!(solution.attempts.len(), 2);
//! assert!(solution.attempts.iter().all(|a| a.valid));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod backend;
pub mod bounds;
pub mod certify;
pub mod colortable;
pub mod decompose;
pub mod error;
pub mod internal;
pub mod solver;
pub mod theorem1;
pub mod theorem6;
pub mod upp;
pub mod witness;
pub mod workspace;

pub use assignment::WavelengthAssignment;
pub use backend::{
    BackendAttempt, BackendKind, BackendOutcome, ColoringBackend, InstanceContext, Policy,
    SolveRequest,
};
pub use colortable::ColorTable;
pub use decompose::{DecomposePolicy, Decomposition, ShardOutcome};
pub use error::CoreError;
#[allow(deprecated)]
pub use solver::WavelengthSolver;
pub use solver::{Instance, Solution, SolveSession, SolverBuilder, Strategy};
pub use workspace::{Epoch, Mutation, Resolve, SolutionDelta, Workspace, WorkspaceStats};
