//! Wavelength assignments and their validation.

use dagwave_graph::Digraph;
use dagwave_paths::{DipathFamily, PathId};

/// A wavelength (color) assignment for a dipath family: `colors[p]` is the
/// wavelength of dipath `p`. Valid when dipaths sharing an arc get distinct
/// wavelengths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WavelengthAssignment {
    colors: Vec<usize>,
}

impl WavelengthAssignment {
    /// Wrap a raw color vector (one entry per dipath, in id order).
    pub fn new(colors: Vec<usize>) -> Self {
        WavelengthAssignment { colors }
    }

    /// The wavelength of dipath `p`.
    #[inline]
    pub fn color(&self, p: PathId) -> usize {
        self.colors[p.index()]
    }

    /// Raw color slice.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Number of dipaths covered.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// `true` for the empty assignment.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Number of distinct wavelengths used.
    pub fn num_colors(&self) -> usize {
        let Some(&max) = self.colors.iter().max() else {
            return 0;
        };
        // Colors are almost always dense from 0; a bitmap beats hashing.
        // The guard keeps pathological sparse palettes from over-allocating.
        if max < 2 * self.colors.len() {
            let mut seen = vec![false; max + 1];
            let mut count = 0;
            for &c in &self.colors {
                if !seen[c] {
                    seen[c] = true;
                    count += 1;
                }
            }
            count
        } else {
            let mut seen = std::collections::HashSet::new();
            for &c in &self.colors {
                seen.insert(c);
            }
            seen.len()
        }
    }

    /// Validate against an instance: two dipaths sharing an arc must have
    /// different wavelengths. Checked per arc (the load buckets). This is
    /// the hot path the solving surface stamps every backend attempt with,
    /// so it detects duplicates by sorting each bucket's colors —
    /// `O(Σ L log L)` — instead of the pairwise scan
    /// [`Self::first_violation`] uses to name the offending dipaths.
    pub fn is_valid(&self, g: &Digraph, family: &DipathFamily) -> bool {
        if self.colors.len() != family.len() {
            return false;
        }
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); g.arc_count()];
        for (id, p) in family.iter() {
            for &a in p.arcs() {
                buckets[a.index()].push(self.colors[id.index()]);
            }
        }
        buckets.iter_mut().all(|b| {
            b.sort_unstable();
            b.windows(2).all(|w| w[0] != w[1])
        })
    }

    /// First pair of same-colored conflicting dipaths, if any.
    pub fn first_violation(&self, g: &Digraph, family: &DipathFamily) -> Option<(PathId, PathId)> {
        if self.colors.len() != family.len() {
            // Treat a length mismatch as a violation on the first dipath.
            return Some((PathId(0), PathId(0)));
        }
        let mut buckets: Vec<Vec<PathId>> = vec![Vec::new(); g.arc_count()];
        for (id, p) in family.iter() {
            for &a in p.arcs() {
                buckets[a.index()].push(id);
            }
        }
        for bucket in &buckets {
            for (i, &p) in bucket.iter().enumerate() {
                for &q in &bucket[i + 1..] {
                    if self.colors[p.index()] == self.colors[q.index()] {
                        return Some((p, q));
                    }
                }
            }
        }
        None
    }

    /// Renumber wavelengths to the dense range `0..num_colors()`, preserving
    /// the partition (first-seen order).
    pub fn normalized(&self) -> WavelengthAssignment {
        let mut map = std::collections::HashMap::new();
        let mut next = 0usize;
        let colors = self
            .colors
            .iter()
            .map(|&c| {
                *map.entry(c).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            })
            .collect();
        WavelengthAssignment { colors }
    }

    /// Dipaths per wavelength, indexed by normalized color.
    pub fn classes(&self) -> Vec<Vec<PathId>> {
        let norm = self.normalized();
        let mut classes = vec![Vec::new(); norm.num_colors()];
        for (i, &c) in norm.colors.iter().enumerate() {
            classes[c].push(PathId::from_index(i));
        }
        classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;
    use dagwave_paths::Dipath;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn instance() -> (Digraph, DipathFamily) {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut f = DipathFamily::new();
        f.push(Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap());
        f.push(Dipath::from_vertices(&g, &[v(1), v(2), v(3)]).unwrap());
        f.push(Dipath::from_vertices(&g, &[v(2), v(3)]).unwrap());
        (g, f)
    }

    #[test]
    fn valid_assignment_accepted() {
        let (g, f) = instance();
        // p0 conflicts p1 (arc 1→2); p1 conflicts p2 (arc 2→3); p0 ∥ p2.
        let w = WavelengthAssignment::new(vec![0, 1, 0]);
        assert!(w.is_valid(&g, &f));
        assert_eq!(w.num_colors(), 2);
        assert_eq!(w.color(PathId(1)), 1);
    }

    #[test]
    fn conflicting_assignment_rejected() {
        let (g, f) = instance();
        let w = WavelengthAssignment::new(vec![0, 0, 1]);
        assert!(!w.is_valid(&g, &f));
        assert_eq!(w.first_violation(&g, &f), Some((PathId(0), PathId(1))));
    }

    #[test]
    fn length_mismatch_rejected() {
        let (g, f) = instance();
        let w = WavelengthAssignment::new(vec![0, 1]);
        assert!(!w.is_valid(&g, &f));
    }

    #[test]
    fn normalization_is_dense_and_consistent() {
        let w = WavelengthAssignment::new(vec![7, 3, 7, 9]);
        let n = w.normalized();
        assert_eq!(n.colors(), &[0, 1, 0, 2]);
        assert_eq!(n.num_colors(), 3);
        assert_eq!(w.num_colors(), 3);
    }

    #[test]
    fn classes_partition_paths() {
        let w = WavelengthAssignment::new(vec![5, 2, 5]);
        let classes = w.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![PathId(0), PathId(2)]);
        assert_eq!(classes[1], vec![PathId(1)]);
    }

    #[test]
    fn empty_assignment() {
        let w = WavelengthAssignment::new(vec![]);
        assert!(w.is_empty());
        assert_eq!(w.num_colors(), 0);
        let g = Digraph::new();
        let f = DipathFamily::new();
        assert!(w.is_valid(&g, &f));
    }
}
