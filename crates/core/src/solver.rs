//! The solver facade: classify the instance, run the strongest method.
//!
//! Mirrors the paper's taxonomy (`internal::classify`):
//!
//! | class | method | guarantee |
//! |-------|--------|-----------|
//! | no internal cycle | Theorem 1 | `w = π`, polynomial |
//! | UPP, one internal cycle | Theorem 6 | `w ≤ ⌈4π/3⌉` |
//! | otherwise | exact B&B (small) or DSATUR | best effort, `w ≥ π` |

use crate::assignment::WavelengthAssignment;
use crate::bounds;
use crate::error::CoreError;
use crate::internal::{self, DagClass};
use crate::{theorem1, theorem6};
use dagwave_color::{dsatur, exact, ugraph::UGraph};
use dagwave_paths::{load, ConflictGraph, DipathFamily, PathId};

/// Which method produced a [`Solution`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Theorem 1 (peel/replay): optimal, `w = π`.
    Theorem1,
    /// Theorem 6 (split/merge): `w ≤ ⌈4π/3⌉`.
    Theorem6,
    /// Exact branch-and-bound chromatic number of the conflict graph.
    Exact,
    /// DSATUR heuristic on the conflict graph (upper bound only).
    Dsatur,
    /// Weighted coloring (independent-set covering) of the deduplicated
    /// conflict graph — the method that realizes Theorem 7's `⌈8h/3⌉` on
    /// replicated families.
    Weighted,
}

/// A solved instance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The wavelength assignment.
    pub assignment: WavelengthAssignment,
    /// Number of wavelengths used.
    pub num_colors: usize,
    /// `π(G, P)` — the universal lower bound.
    pub load: usize,
    /// `true` when `num_colors` is provably minimum (`w`).
    pub optimal: bool,
    /// The instance class per the paper's taxonomy.
    pub class: DagClass,
    /// The method used.
    pub strategy: Strategy,
}

/// Configurable solver facade.
#[derive(Clone, Debug)]
pub struct WavelengthSolver {
    /// Largest conflict graph handed to the exact solver (vertices).
    pub exact_limit: usize,
    /// Node budget for the exact solver.
    pub exact_budget: u64,
}

impl Default for WavelengthSolver {
    fn default() -> Self {
        WavelengthSolver {
            exact_limit: 80,
            exact_budget: exact::DEFAULT_NODE_BUDGET,
        }
    }
}

impl WavelengthSolver {
    /// Solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solve the instance, dispatching on its class.
    pub fn solve(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
    ) -> Result<Solution, CoreError> {
        if let Err(dagwave_graph::GraphError::NotADag(c)) =
            dagwave_graph::topo::topological_order(g)
        {
            return Err(CoreError::NotADag(c));
        }
        let class = internal::classify(g);
        match class {
            DagClass::InternalCycleFree => {
                let res = theorem1::color_optimal(g, family)?;
                Ok(Solution {
                    num_colors: res.assignment.num_colors(),
                    assignment: res.assignment,
                    load: res.load,
                    optimal: true,
                    class,
                    strategy: Strategy::Theorem1,
                })
            }
            DagClass::UppSingleCycle => {
                let res = theorem6::color_single_cycle_upp(g, family)?;
                let num = res.assignment.num_colors();
                // Optimal iff it matched the lower bound π.
                let optimal = num == res.load || res.load == 0;
                let primary = Solution {
                    num_colors: num,
                    assignment: res.assignment,
                    load: res.load,
                    optimal,
                    class,
                    strategy: Strategy::Theorem6,
                };
                // Replicated families sidestep the constructive merge's
                // duplicate penalty via weighted coloring (Theorem 7's
                // ⌈8h/3⌉); keep whichever uses fewer wavelengths.
                Ok(match self.solve_weighted(g, family, class) {
                    Some(weighted) if weighted.num_colors < primary.num_colors => weighted,
                    _ => primary,
                })
            }
            DagClass::UppMultiCycle { .. } | DagClass::General { .. } => {
                let primary = self.solve_general(g, family, class)?;
                if primary.optimal {
                    return Ok(primary);
                }
                Ok(match self.solve_weighted(g, family, class) {
                    Some(weighted) if weighted.num_colors < primary.num_colors => weighted,
                    _ => primary,
                })
            }
        }
    }

    /// Solve many instances in parallel — the batch entry point for
    /// parameter sweeps. Each instance becomes its own task on the rayon
    /// pool (a `scope` spawn, so heterogeneous instance costs load-balance
    /// across workers), panics are isolated per instance and surfaced as
    /// [`CoreError::SolverPanic`], and the output order always matches the
    /// input order regardless of completion order.
    pub fn solve_batch(
        &self,
        instances: &[(&dagwave_graph::Digraph, &DipathFamily)],
    ) -> Vec<Result<Solution, CoreError>> {
        let mut results: Vec<Option<Result<Solution, CoreError>>> =
            instances.iter().map(|_| None).collect();
        rayon::scope(|s| {
            for (slot, &(g, family)) in results.iter_mut().zip(instances) {
                s.spawn(move |_| *slot = Some(solve_isolated(self, g, family)));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("batch task completed"))
            .collect()
    }

    /// Weighted-coloring path for families with duplicated dipaths: group
    /// identical dipaths, multicolor the deduplicated conflict graph, and
    /// expand the color lists back to the copies. Returns `None` when the
    /// family has no duplicates or the base graph exceeds the exact-IS
    /// budget.
    pub fn solve_weighted(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
        class: DagClass,
    ) -> Option<Solution> {
        use std::collections::HashMap;
        let mut groups: HashMap<&[dagwave_graph::ArcId], Vec<PathId>> = HashMap::new();
        for (id, p) in family.iter() {
            groups.entry(p.arcs()).or_default().push(id);
        }
        let base_count = groups.len();
        if base_count == family.len() || base_count > 40 {
            return None; // no duplicates, or base too large for exact IS
        }
        // Deterministic base order: by smallest member id.
        let mut base: Vec<(&[dagwave_graph::ArcId], Vec<PathId>)> = groups.into_iter().collect();
        base.sort_by_key(|(_, members)| members[0]);
        let base_family: DipathFamily = base
            .iter()
            .map(|(_, members)| family.path(members[0]).clone())
            .collect();
        let weights: Vec<usize> = base.iter().map(|(_, m)| m.len()).collect();
        let cg = ConflictGraph::build(g, &base_family);
        let ug = conflict_to_ugraph(&cg);
        // Exact covering only at paper scale; greedy beyond.
        let total_weight: usize = weights.iter().sum();
        let mc = if base_count <= 16 && total_weight <= 64 {
            dagwave_color::multicolor::exact_multicoloring(&ug, &weights)
        } else {
            dagwave_color::multicolor::greedy_multicoloring(&ug, &weights)
        };
        debug_assert!(mc.is_valid(&ug, &weights));
        let mut colors = vec![usize::MAX; family.len()];
        for ((_, members), assigned) in base.iter().zip(&mc.colors) {
            for (member, &c) in members.iter().zip(assigned) {
                colors[member.index()] = c;
            }
        }
        let assignment = WavelengthAssignment::new(colors);
        debug_assert!(assignment.is_valid(g, family));
        let pi = load::max_load(g, family);
        let num = assignment.num_colors();
        Some(Solution {
            num_colors: num,
            assignment,
            load: pi,
            optimal: num == pi,
            class,
            strategy: Strategy::Weighted,
        })
    }

    /// Fallback path: exact chromatic on small conflict graphs, DSATUR
    /// beyond. Also used directly by benches as the baseline.
    pub fn solve_general(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
        class: DagClass,
    ) -> Result<Solution, CoreError> {
        let pi = load::max_load(g, family);
        let cg = ConflictGraph::build(g, family);
        let ug = conflict_to_ugraph(&cg);
        if ug.vertex_count() <= self.exact_limit {
            match exact::chromatic_number_budgeted(&ug, self.exact_budget) {
                exact::ExactResult::Optimal {
                    chromatic,
                    coloring,
                } => {
                    let assignment = WavelengthAssignment::new(coloring);
                    debug_assert!(assignment.is_valid(g, family));
                    return Ok(Solution {
                        num_colors: chromatic,
                        assignment,
                        load: pi,
                        optimal: true,
                        class,
                        strategy: Strategy::Exact,
                    });
                }
                exact::ExactResult::BudgetExceeded { coloring, .. } => {
                    let assignment = WavelengthAssignment::new(coloring);
                    let num = assignment.num_colors();
                    return Ok(Solution {
                        num_colors: num,
                        assignment,
                        load: pi,
                        optimal: num == pi,
                        class,
                        strategy: Strategy::Exact,
                    });
                }
            }
        }
        let coloring = dsatur::dsatur_coloring(&ug);
        let assignment = WavelengthAssignment::new(coloring);
        let num = assignment.num_colors();
        debug_assert!(assignment.is_valid(g, family));
        Ok(Solution {
            num_colors: num,
            assignment,
            load: pi,
            optimal: num == pi,
            class,
            strategy: Strategy::Dsatur,
        })
    }

    /// The a-priori upper bound the paper guarantees for this instance
    /// class (`π` / `⌈4π/3⌉` / `⌈(4/3)^C π⌉`), or `None` for non-UPP DAGs
    /// with internal cycles (unbounded ratio, Figure 1).
    pub fn guaranteed_bound(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
    ) -> Option<usize> {
        let pi = load::max_load(g, family);
        match internal::classify(g) {
            DagClass::InternalCycleFree => Some(pi),
            DagClass::UppSingleCycle => Some(bounds::theorem6_bound(pi)),
            DagClass::UppMultiCycle { cycles } => Some(bounds::multi_cycle_bound(pi, cycles)),
            DagClass::General { .. } => None,
        }
    }
}

/// One batch instance with panic isolation: a panic anywhere inside
/// `solve` is caught and converted to [`CoreError::SolverPanic`] so one
/// poisoned instance cannot take down the rest of the sweep.
fn solve_isolated(
    solver: &WavelengthSolver,
    g: &dagwave_graph::Digraph,
    family: &DipathFamily,
) -> Result<Solution, CoreError> {
    run_isolated(|| solver.solve(g, family))
}

/// The catch_unwind-to-[`CoreError::SolverPanic`] conversion, factored out
/// so the panic path itself is unit-testable.
fn run_isolated(f: impl FnOnce() -> Result<Solution, CoreError>) -> Result<Solution, CoreError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        // `.as_ref()`, not `&payload`: a `&Box<dyn Any>` would itself
        // unsize-coerce to `&dyn Any` and hide the real payload.
        .unwrap_or_else(|payload| Err(CoreError::SolverPanic(panic_message(payload.as_ref()))))
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Adapt a [`ConflictGraph`] to the coloring toolkit's [`UGraph`].
pub fn conflict_to_ugraph(cg: &ConflictGraph) -> UGraph {
    let adj: Vec<Vec<u32>> = (0..cg.vertex_count())
        .map(|i| cg.neighbors(PathId::from_index(i)).to_vec())
        .collect();
    UGraph::from_sorted_adjacency(adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::{Digraph, VertexId};
    use dagwave_paths::Dipath;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn path(g: &Digraph, route: &[usize]) -> Dipath {
        let route: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
        Dipath::from_vertices(g, &route).unwrap()
    }

    #[test]
    fn dispatches_theorem1_on_tree() {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[0, 1, 3]),
            path(&g, &[1, 2]),
        ]);
        let sol = WavelengthSolver::new().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Theorem1);
        assert!(sol.optimal);
        assert_eq!(sol.num_colors, sol.load);
        assert!(sol.assignment.is_valid(&g, &f));
        assert_eq!(
            WavelengthSolver::new().guaranteed_bound(&g, &f),
            Some(sol.load)
        );
    }

    #[test]
    fn dispatches_theorem6_on_single_cycle_upp() {
        // Single-arc dipaths over the crossing pattern.
        let g = from_edges(
            8,
            &[
                (0, 2),
                (1, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 7),
            ],
        );
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 2, 4, 6]),
            path(&g, &[1, 3, 5, 7]),
            path(&g, &[2, 5]),
            path(&g, &[3, 4]),
        ]);
        let sol = WavelengthSolver::new().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Theorem6);
        assert!(sol.assignment.is_valid(&g, &f));
        let bound = WavelengthSolver::new().guaranteed_bound(&g, &f).unwrap();
        assert!(sol.num_colors <= bound);
    }

    #[test]
    fn dispatches_exact_on_general_dag() {
        // Guarded diamond: internal cycle, not UPP.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 4), (1, 3), (3, 4), (4, 5)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2, 4]),
            path(&g, &[1, 3, 4]),
            path(&g, &[3, 4, 5]),
        ]);
        let sol = WavelengthSolver::new().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Exact);
        assert!(sol.optimal);
        assert!(sol.assignment.is_valid(&g, &f));
        assert!(sol.num_colors >= sol.load);
        assert_eq!(WavelengthSolver::new().guaranteed_bound(&g, &f), None);
    }

    #[test]
    fn dsatur_fallback_on_large_conflict_graph() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 4), (1, 3), (3, 4), (4, 5)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2, 4]),
            path(&g, &[1, 3, 4]),
            path(&g, &[3, 4, 5]),
        ])
        .replicate(30); // 120 paths > exact_limit
        let sol = WavelengthSolver::new().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Dsatur);
        assert!(sol.assignment.is_valid(&g, &f));
        assert!(sol.num_colors >= sol.load);
    }

    #[test]
    fn rejects_cyclic_input() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::new();
        assert!(matches!(
            WavelengthSolver::new().solve(&g, &f),
            Err(CoreError::NotADag(_))
        ));
    }

    #[test]
    fn empty_family_on_any_class() {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let sol = WavelengthSolver::new()
            .solve(&g, &DipathFamily::new())
            .unwrap();
        assert_eq!(sol.num_colors, 0);
        assert_eq!(sol.load, 0);
        assert!(sol.optimal);
    }

    #[test]
    fn batch_solving_matches_individual() {
        let g1 = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let f1 = DipathFamily::from_paths(vec![path(&g1, &[0, 1, 2]), path(&g1, &[0, 1, 3])]);
        let g2 = from_edges(3, &[(0, 1), (1, 2)]);
        let f2 = DipathFamily::from_paths(vec![path(&g2, &[0, 1, 2])]).replicate(4);
        let solver = WavelengthSolver::new();
        let batch = solver.solve_batch(&[(&g1, &f1), (&g2, &f2)]);
        assert_eq!(batch.len(), 2);
        let s1 = batch[0].as_ref().unwrap();
        let s2 = batch[1].as_ref().unwrap();
        assert_eq!(s1.num_colors, solver.solve(&g1, &f1).unwrap().num_colors);
        assert_eq!(s2.num_colors, 4);
    }

    #[test]
    fn batch_isolates_panics_per_instance() {
        // A healthy instance passes through untouched...
        let g = from_edges(2, &[(0, 1)]);
        let f = DipathFamily::new();
        let solver = WavelengthSolver::new();
        assert!(super::solve_isolated(&solver, &g, &f).is_ok());
        // ...and an actually panicking solve is converted to SolverPanic
        // (the same run_isolated path solve_batch's tasks go through),
        // for both &str and String payloads.
        match super::run_isolated(|| panic!("poisoned instance")) {
            Err(CoreError::SolverPanic(msg)) => assert_eq!(msg, "poisoned instance"),
            other => panic!("expected SolverPanic, got {other:?}"),
        }
        match super::run_isolated(|| panic!("{} of {}", 3, 7)) {
            Err(CoreError::SolverPanic(msg)) => assert_eq!(msg, "3 of 7"),
            other => panic!("expected SolverPanic, got {other:?}"),
        }
        let payload: Box<dyn std::any::Any + Send> = Box::new(7usize);
        assert_eq!(
            super::panic_message(payload.as_ref()),
            "non-string panic payload"
        );
    }

    #[test]
    fn batch_output_order_matches_input_order() {
        // Many instances with distinct answers: the result vector must line
        // up index-for-index with the inputs however tasks were scheduled.
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let solver = WavelengthSolver::new();
        let families: Vec<DipathFamily> = (1..=12)
            .map(|h| DipathFamily::from_paths(vec![path(&g, &[0, 1, 2])]).replicate(h))
            .collect();
        let instances: Vec<_> = families.iter().map(|f| (&g, f)).collect();
        let batch = solver.solve_batch(&instances);
        for (i, sol) in batch.iter().enumerate() {
            assert_eq!(sol.as_ref().unwrap().num_colors, i + 1, "instance {i}");
        }
    }

    #[test]
    fn batch_reports_errors_per_instance() {
        let good = from_edges(2, &[(0, 1)]);
        let bad = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::new();
        let batch = WavelengthSolver::new().solve_batch(&[(&good, &f), (&bad, &f)]);
        assert!(batch[0].is_ok());
        assert!(matches!(batch[1], Err(CoreError::NotADag(_))));
    }

    #[test]
    fn conflict_to_ugraph_preserves_structure() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2, 3]),
            path(&g, &[2, 3]),
        ]);
        let cg = ConflictGraph::build(&g, &f);
        let ug = conflict_to_ugraph(&cg);
        assert_eq!(ug.vertex_count(), 3);
        assert_eq!(ug.edge_count(), cg.edge_count());
        assert!(ug.has_edge(0, 1));
    }
}
