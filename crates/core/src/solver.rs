//! The solving surface: sessions, policies, batch and streaming entry
//! points.
//!
//! A [`SolveSession`] (built with [`SolverBuilder`]) carries a
//! [`SolveRequest`] — every budget and threshold, plus a [`Policy`]:
//!
//! * [`Policy::Auto`] — classify the instance and dispatch to the strongest
//!   applicable method (the paper's taxonomy, the historical behavior):
//!
//!   | class | method | guarantee |
//!   |-------|--------|-----------|
//!   | no internal cycle | Theorem 1 | `w = π`, polynomial |
//!   | UPP, one internal cycle | Theorem 6 (+ weighted rescue) | `w ≤ ⌈4π/3⌉` |
//!   | otherwise | exact B&B (small) or DSATUR (+ weighted rescue) | best effort, `w ≥ π` |
//!
//! * [`Policy::Pinned`] — run exactly one named [`BackendKind`].
//! * [`Policy::Portfolio`] — race several backends on the rayon pool and
//!   keep the fewest-colors result deterministically.
//!
//! Instances can be solved one at a time ([`SolveSession::solve`]), as a
//! materialized batch ([`SolveSession::solve_batch`]), or from an iterator
//! that is fed onto the pool incrementally without ever materializing the
//! whole family ([`SolveSession::solve_stream`]).

use crate::assignment::WavelengthAssignment;
use crate::backend::{
    backend, BackendAttempt, BackendKind, BackendOutcome, InstanceContext, Policy, SolveRequest,
};
use crate::bounds;
use crate::certify;
use crate::decompose::{DecomposePolicy, Decomposition, ShardOutcome};
use crate::error::CoreError;
use crate::internal::DagClass;
use dagwave_color::ugraph::UGraph;
use dagwave_paths::{
    conflict_components, ConflictGraph, DipathFamily, ExtractScratch, PathId, SubInstance,
};
use std::collections::VecDeque;

/// How many in-flight instances [`SolveSession::solve_stream`] keeps per
/// pool thread. A few windows of slack keep every worker busy across the
/// tail of one window and the head of the next without materializing an
/// unbounded prefix of the source iterator.
const STREAM_WINDOW_PER_THREAD: usize = 4;

/// Which backend produced a [`Solution`] — an alias for [`BackendKind`],
/// kept so pre-portfolio code (`Strategy::Theorem1`, …) reads unchanged.
pub type Strategy = BackendKind;

/// One shard result awaiting merge: the shard's original path ids plus its
/// solution (or the error that shard produced).
type ShardSlot = Option<Result<(Vec<PathId>, Solution), CoreError>>;

/// A solved instance, with full provenance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// The wavelength assignment.
    pub assignment: WavelengthAssignment,
    /// Number of wavelengths used.
    pub num_colors: usize,
    /// `π(G, P)` — the universal lower bound.
    pub load: usize,
    /// `true` when `num_colors` is provably minimum (`w`).
    pub optimal: bool,
    /// The instance class per the paper's taxonomy.
    pub class: DagClass,
    /// The backend that produced the kept assignment. For a decomposed
    /// solve this is the winning backend of the shard that determined the
    /// merged span (the first shard attaining the maximum).
    pub strategy: Strategy,
    /// Every backend consulted for this solve, in consultation order, with
    /// its bounds and `certify`-backed validity verdict. For a decomposed
    /// solve: the shards' attempts concatenated in shard order (the
    /// per-shard split lives in [`Solution::decomposition`]).
    pub attempts: Vec<BackendAttempt>,
    /// Present when the instance was sharded by conflict-graph components
    /// (decompose-solve-merge): one [`ShardOutcome`] per component, in
    /// deterministic shard order. `None` for monolithic solves. Behind an
    /// [`Arc`](std::sync::Arc) because the provenance is immutable and can
    /// be large (one record per shard): cloning a solution — which the
    /// incremental engine does on every query of its merged cache — bumps
    /// a refcount instead of deep-copying every shard report.
    pub decomposition: Option<std::sync::Arc<Decomposition>>,
    /// Present when this solution came out of an incremental
    /// [`crate::workspace::Workspace`] re-solve: how many shards were
    /// served from cache vs. actually recomputed. Always `None` for the
    /// one-shot entry points — the assignment itself is bit-identical
    /// either way, this field only records how it was obtained.
    pub resolve: Option<crate::workspace::Resolve>,
}

/// An owned instance, the item type of [`SolveSession::solve_stream`].
#[derive(Clone, Debug)]
pub struct Instance {
    /// The DAG.
    pub graph: dagwave_graph::Digraph,
    /// The dipath family to color.
    pub family: DipathFamily,
}

impl Instance {
    /// Bundle a graph and family into a streamable instance.
    pub fn new(graph: dagwave_graph::Digraph, family: DipathFamily) -> Self {
        Instance { graph, family }
    }
}

/// Fluent constructor for a [`SolveSession`].
///
/// ```
/// use dagwave_core::{BackendKind, Policy, SolverBuilder};
///
/// let session = SolverBuilder::new()
///     .policy(Policy::Portfolio(vec![
///         BackendKind::Dsatur,
///         BackendKind::KempeGreedy,
///     ]))
///     .exact_limit(120)
///     .build();
/// # let _ = session;
/// ```
#[derive(Clone, Debug, Default)]
pub struct SolverBuilder {
    request: SolveRequest,
}

impl SolverBuilder {
    /// Builder with default budgets and [`Policy::Auto`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the backend-selection policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.request.policy = policy;
        self
    }

    /// Shorthand for [`Policy::Pinned`].
    pub fn pinned(self, kind: BackendKind) -> Self {
        self.policy(Policy::Pinned(kind))
    }

    /// Shorthand for [`Policy::Portfolio`] (empty = all applicable).
    pub fn portfolio(self, kinds: Vec<BackendKind>) -> Self {
        self.policy(Policy::Portfolio(kinds))
    }

    /// Set the decompose-solve-merge policy: when to shard the instance by
    /// conflict-graph connected components and solve the shards
    /// concurrently (see [`DecomposePolicy`]).
    pub fn decompose(mut self, policy: DecomposePolicy) -> Self {
        self.request.decompose = policy;
        self
    }

    /// Enable per-shard backend *selection*: under [`Policy::Auto`], each
    /// shard of a decomposed solve is dispatched straight to the one
    /// backend its own class pins (Theorem 1 / Theorem 6 /
    /// exact-or-DSATUR) instead of re-running the full Auto dispatch —
    /// see [`SolveRequest::per_shard_backend`].
    pub fn per_shard_backend(mut self, enabled: bool) -> Self {
        self.request.per_shard_backend = enabled;
        self
    }

    /// Largest conflict graph (vertices) handed to the exact solver.
    pub fn exact_limit(mut self, limit: usize) -> Self {
        self.request.exact_limit = limit;
        self
    }

    /// Branch-node budget for the exact solver.
    pub fn exact_budget(mut self, budget: u64) -> Self {
        self.request.exact_budget = budget;
        self
    }

    /// Largest deduplicated base family the weighted backend accepts.
    pub fn weighted_dedup_limit(mut self, limit: usize) -> Self {
        self.request.weighted_dedup_limit = limit;
        self
    }

    /// Base-size threshold below which weighted coloring is exact.
    pub fn weighted_exact_base_limit(mut self, limit: usize) -> Self {
        self.request.weighted_exact_base_limit = limit;
        self
    }

    /// Total-weight threshold below which weighted coloring is exact.
    pub fn weighted_exact_weight_limit(mut self, limit: usize) -> Self {
        self.request.weighted_exact_weight_limit = limit;
        self
    }

    /// Finalize into a session.
    pub fn build(self) -> SolveSession {
        SolveSession {
            request: self.request,
        }
    }
}

/// A configured solving surface: policy + budgets, reusable across any
/// number of instances (it is `Sync`, so one session can serve a whole
/// parameter sweep).
#[derive(Clone, Debug, Default)]
pub struct SolveSession {
    request: SolveRequest,
}

impl SolveSession {
    /// Session from an explicit request.
    pub fn new(request: SolveRequest) -> Self {
        SolveSession { request }
    }

    /// Session with default budgets and [`Policy::Auto`] — the drop-in
    /// replacement for the old `WavelengthSolver::new()`, except that the
    /// default [`DecomposePolicy::Auto`] additionally shards large
    /// multi-component instances (the deprecated shim itself keeps
    /// decomposition pinned off).
    pub fn auto() -> Self {
        Self::default()
    }

    /// Start building a customized session.
    pub fn builder() -> SolverBuilder {
        SolverBuilder::new()
    }

    /// The request this session runs.
    pub fn request(&self) -> &SolveRequest {
        &self.request
    }

    /// Solve one instance under this session's policy.
    ///
    /// Runs the decompose-solve-merge pipeline when the session's
    /// [`DecomposePolicy`] elects to shard (the instance is cut by
    /// conflict-graph connected components, each shard is classified and
    /// solved independently on the rayon pool, and the shard colorings are
    /// merged with a shared palette); otherwise solves monolithically.
    pub fn solve(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
    ) -> Result<Solution, CoreError> {
        // One context serves both paths: DAG validation, classification,
        // and the load are computed exactly once per solve, whether the
        // decompose stage elects to shard or falls through.
        let ctx = InstanceContext::new(g, family, &self.request)?;
        match self.decomposition_plan(&ctx) {
            Some(components) => self.solve_decomposed(&ctx, components),
            None => self.dispatch(&ctx),
        }
    }

    /// One undecomposed solve — the per-shard engine of the decomposed
    /// path (shards build their own shard-local contexts).
    ///
    /// When [`SolveRequest::per_shard_backend`] is set and the policy is
    /// [`Policy::Auto`], the shard is dispatched straight to the one
    /// backend its class pins (Theorem 1 / Theorem 6 /
    /// exact-or-DSATUR) instead of the full Auto dispatch with its
    /// weighted-rescue consult — shards re-classify independently, so the
    /// class decides the backend once and for all.
    fn solve_monolithic(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
    ) -> Result<Solution, CoreError> {
        let ctx = InstanceContext::new(g, family, &self.request)?;
        if self.request.per_shard_backend && self.request.policy == Policy::Auto {
            return self.solve_pinned(auto_shard_backend(&ctx), &ctx);
        }
        self.dispatch(&ctx)
    }

    /// Route one instance context to the configured backend policy.
    pub(crate) fn dispatch(&self, ctx: &InstanceContext<'_>) -> Result<Solution, CoreError> {
        match &self.request.policy {
            Policy::Auto => self.solve_auto(ctx),
            Policy::Pinned(kind) => self.solve_pinned(*kind, ctx),
            Policy::Portfolio(kinds) => self.solve_portfolio(kinds, ctx),
        }
    }

    /// The decompose stage: decide whether to shard and, if so, return the
    /// conflict-graph components in deterministic shard order.
    ///
    /// The component scan never builds the conflict graph — dipaths are
    /// unioned through the arc buckets directly
    /// ([`dagwave_paths::conflict_components`]), so deciding costs
    /// `O(Σ|P| · α)` even when the conflict graph would be enormous.
    /// Checks run cheapest-first against the already-validated context
    /// (no graph pass is duplicated on the fall-through).
    fn decomposition_plan(&self, ctx: &InstanceContext<'_>) -> Option<Vec<Vec<PathId>>> {
        self.decomposition_plan_with(ctx, || conflict_components(ctx.graph, ctx.family))
    }

    /// [`SolveSession::decomposition_plan`] with the component scan
    /// injected: the one-shot path scans from scratch, the incremental
    /// [`crate::workspace::Workspace`] supplies its cached components —
    /// both run through this one gate, so the shard/monolithic decision
    /// can never diverge between the two paths.
    pub(crate) fn decomposition_plan_with<F>(
        &self,
        ctx: &InstanceContext<'_>,
        components: F,
    ) -> Option<Vec<Vec<PathId>>>
    where
        F: FnOnce() -> Vec<Vec<PathId>>,
    {
        let auto = match self.request.decompose {
            DecomposePolicy::Off => return None,
            DecomposePolicy::Auto { min_paths } => {
                if ctx.family.len() < min_paths.max(1) {
                    return None;
                }
                true
            }
            DecomposePolicy::Always => {
                if ctx.family.is_empty() {
                    return None;
                }
                false
            }
        };
        // Auto declines when the Auto backend policy would take the
        // Theorem 1 fast path anyway: on an internal-cycle-free host the
        // monolithic solve is already optimal (`w = π`) in near-linear
        // time, so sharding could only add overhead, never save colors.
        // Pinned/Portfolio policies still shard (smaller per-shard graphs
        // genuinely help heuristic and exact backends), as does `Always`.
        if auto && self.request.policy == Policy::Auto && ctx.class == DagClass::InternalCycleFree {
            return None;
        }
        let components = components();
        if auto && components.len() <= 1 {
            // Auto only pays the shard machinery when it actually splits.
            return None;
        }
        Some(components)
    }

    /// Solve the shards concurrently and merge with a shared palette.
    ///
    /// Each component is extracted into a [`SubInstance`] (dense local ids,
    /// host graph restricted to the arcs the shard uses) and solved with
    /// this session's policy and budgets — but with decomposition off, a
    /// shard is never re-sharded. Shard tasks run on the rayon pool;
    /// results are merged in deterministic shard order regardless of
    /// completion order, so the output is bit-identical at every thread
    /// budget.
    fn solve_decomposed(
        &self,
        ctx: &InstanceContext<'_>,
        components: Vec<Vec<PathId>>,
    ) -> Result<Solution, CoreError> {
        // First shard error wins, in shard order — deterministic.
        let shards: Vec<(Vec<PathId>, Solution)> = self
            .shard_session()
            .solve_components(ctx.graph, ctx.family, &components)
            .into_iter()
            .collect::<Result<_, _>>()?;
        Ok(merge_shards(ctx, shards))
    }

    /// The session a shard is solved under: same policy and budgets, but
    /// with decomposition pinned off — a shard is never re-sharded.
    pub(crate) fn shard_session(&self) -> SolveSession {
        SolveSession::new(SolveRequest {
            decompose: DecomposePolicy::Off,
            ..self.request.clone()
        })
    }

    /// Solve each component of `family` as an independent shard on the
    /// rayon pool under this session (callers pass the
    /// [`SolveSession::shard_session`]). Each shard is extracted into a
    /// [`SubInstance`] and solved with its original ids recorded; results
    /// come back in component order regardless of completion order, so the
    /// caller's merge is bit-identical at every thread budget. Shared by
    /// the one-shot decomposed solve and the incremental workspace (which
    /// passes only its dirty components).
    pub(crate) fn solve_components(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
        components: &[Vec<PathId>],
    ) -> Vec<Result<(Vec<PathId>, Solution), CoreError>> {
        // Extraction is a near-linear renumbering pass; it runs sequentially
        // through ONE shared scratch (flat host-indexed tables, stamped per
        // shard — see [`ExtractScratch`]) so every shard reuses the same
        // buffers instead of sorting and binary-searching its own. Only the
        // solves — the actual work — fan out onto the pool.
        let mut scratch = ExtractScratch::new();
        let subs: Vec<SubInstance> = components
            .iter()
            .map(|members| SubInstance::extract_with(g, family, members, &mut scratch))
            .collect();
        let mut slots: Vec<ShardSlot> = components.iter().map(|_| None).collect();
        rayon::scope(|s| {
            for (slot, sub) in slots.iter_mut().zip(&subs) {
                s.spawn(move |_| {
                    *slot = Some(
                        self.solve_monolithic(&sub.graph, &sub.family)
                            .map(|sol| (sub.original_ids().to_vec(), sol)),
                    );
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("shard task completed")) // lint: allow(no-panic): the scope barrier filled every shard slot
            .collect()
    }

    /// Solve many instances in parallel — the batch entry point for
    /// parameter sweeps. Each instance becomes its own task on the rayon
    /// pool (a `scope` spawn, so heterogeneous instance costs load-balance
    /// across workers), panics are isolated per instance and surfaced as
    /// [`CoreError::SolverPanic`], and the output order always matches the
    /// input order regardless of completion order.
    pub fn solve_batch(
        &self,
        instances: &[(&dagwave_graph::Digraph, &DipathFamily)],
    ) -> Vec<Result<Solution, CoreError>> {
        let mut results: Vec<Option<Result<Solution, CoreError>>> =
            instances.iter().map(|_| None).collect();
        rayon::scope(|s| {
            for (slot, &(g, family)) in results.iter_mut().zip(instances) {
                s.spawn(move |_| *slot = Some(solve_isolated(self, g, family)));
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("batch task completed")) // lint: allow(no-panic): the scope barrier filled every batch slot
            .collect()
    }

    /// Solve a *stream* of instances: the iterator is pulled one bounded
    /// window at a time, each window's instances are fanned out onto the
    /// rayon pool, and results are yielded in input order as windows
    /// complete. Memory stays bounded by the window (a few multiples of
    /// the thread count) no matter how many instances the iterator yields —
    /// the entry point for million-path instance families that must never
    /// be materialized as a slice.
    ///
    /// Output is exactly what [`SolveSession::solve_batch`] would return on
    /// the materialized slice, including per-instance panic isolation.
    pub fn solve_stream<I>(&self, instances: I) -> SolveStream<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Instance>,
    {
        SolveStream {
            session: self,
            source: instances.into_iter(),
            window: rayon::current_num_threads().max(1) * STREAM_WINDOW_PER_THREAD,
            ready: VecDeque::new(),
        }
    }

    /// The a-priori upper bound the paper guarantees for this instance
    /// class (`π` / `⌈4π/3⌉` / `⌈(4/3)^C π⌉`), or `None` for non-UPP DAGs
    /// with internal cycles (unbounded ratio, Figure 1).
    pub fn guaranteed_bound(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
    ) -> Option<usize> {
        let pi = dagwave_paths::load::max_load(g, family);
        bounds::class_bound(crate::internal::classify(g), pi)
    }

    /// The historical classify-and-dispatch.
    fn solve_auto(&self, ctx: &InstanceContext<'_>) -> Result<Solution, CoreError> {
        match ctx.class {
            DagClass::InternalCycleFree => {
                let (attempt, outcome) = run_required(BackendKind::Theorem1, ctx)?;
                Ok(build_solution(
                    ctx,
                    BackendKind::Theorem1,
                    outcome,
                    vec![attempt],
                ))
            }
            DagClass::UppSingleCycle => {
                let (attempt, outcome) = run_required(BackendKind::Theorem6, ctx)?;
                // Replicated families sidestep the constructive merge's
                // duplicate penalty via weighted coloring (Theorem 7's
                // ⌈8h/3⌉); keep whichever uses fewer wavelengths.
                Ok(self.improve_with_weighted(ctx, BackendKind::Theorem6, attempt, outcome))
            }
            DagClass::UppMultiCycle { .. } | DagClass::General { .. } => {
                let primary = if backend(BackendKind::Exact).unsupported(ctx).is_none() {
                    BackendKind::Exact
                } else {
                    BackendKind::Dsatur
                };
                let (attempt, outcome) = run_required(primary, ctx)?;
                if outcome.optimal {
                    return Ok(build_solution(ctx, primary, outcome, vec![attempt]));
                }
                Ok(self.improve_with_weighted(ctx, primary, attempt, outcome))
            }
        }
    }

    /// Consult the weighted backend and keep whichever of the two outcomes
    /// uses fewer wavelengths (primary wins ties). The weighted result can
    /// only displace the primary when its certify verdict passed — an
    /// uncertified improvement is no improvement.
    fn improve_with_weighted(
        &self,
        ctx: &InstanceContext<'_>,
        primary_kind: BackendKind,
        primary_attempt: BackendAttempt,
        primary: BackendOutcome,
    ) -> Solution {
        let weighted = consult(BackendKind::Weighted, ctx);
        let weighted_valid = weighted.attempt.valid;
        let attempts = vec![primary_attempt, weighted.attempt];
        match weighted.outcome {
            Some(w)
                if weighted_valid
                    && w.assignment.num_colors() < primary.assignment.num_colors() =>
            {
                build_solution(ctx, BackendKind::Weighted, w, attempts)
            }
            _ => build_solution(ctx, primary_kind, primary, attempts),
        }
    }

    fn solve_pinned(
        &self,
        kind: BackendKind,
        ctx: &InstanceContext<'_>,
    ) -> Result<Solution, CoreError> {
        if let Some(reason) = backend(kind).unsupported(ctx) {
            return Err(CoreError::BackendUnsupported {
                backend: kind,
                reason,
            });
        }
        let (attempt, outcome) = run_required(kind, ctx)?;
        // Same gate the portfolio applies to its winner: an assignment that
        // fails certification is an error, not a result.
        if !attempt.valid {
            return Err(CoreError::BackendInvalid { backend: kind });
        }
        Ok(build_solution(ctx, kind, outcome, vec![attempt]))
    }

    /// Race the portfolio members on the rayon pool; keep the
    /// fewest-colors valid result, ties breaking toward the earlier list
    /// entry — a deterministic choice independent of scheduling.
    fn solve_portfolio(
        &self,
        kinds: &[BackendKind],
        ctx: &InstanceContext<'_>,
    ) -> Result<Solution, CoreError> {
        let kinds: Vec<BackendKind> = if kinds.is_empty() {
            BackendKind::ALL
                .into_iter()
                .filter(|&k| backend(k).unsupported(ctx).is_none())
                .collect()
        } else {
            kinds.to_vec()
        };
        if kinds.is_empty() {
            return Err(CoreError::NoApplicableBackend);
        }
        let mut slots: Vec<Option<Attempted>> = kinds.iter().map(|_| None).collect();
        rayon::scope(|s| {
            for (slot, &kind) in slots.iter_mut().zip(&kinds) {
                s.spawn(move |_| *slot = Some(consult(kind, ctx)));
            }
        });
        let mut attempted: Vec<Attempted> = slots
            .into_iter()
            .map(|s| s.expect("portfolio member completed")) // lint: allow(no-panic): the scope barrier filled every portfolio slot
            .collect();
        let best = attempted
            .iter()
            .enumerate()
            .filter(|(_, a)| a.attempt.valid)
            .filter_map(|(i, a)| a.outcome.as_ref().map(|o| (o.assignment.num_colors(), i)))
            .min()
            .map(|(_, i)| i);
        let attempts: Vec<BackendAttempt> = attempted.iter().map(|a| a.attempt.clone()).collect();
        match best {
            Some(i) => {
                let winner = attempted[i].attempt.backend;
                let outcome = attempted
                    .swap_remove(i)
                    .outcome
                    .expect("winner has an outcome"); // lint: allow(no-panic): the winner was selected among attempts that all carry outcomes
                Ok(build_solution(ctx, winner, outcome, attempts))
            }
            // No member produced a valid coloring: surface the first
            // runtime error, or report that nothing was applicable.
            None => Err(attempted
                .into_iter()
                .find_map(|a| a.error)
                .unwrap_or(CoreError::NoApplicableBackend)),
        }
    }
}

/// Lazily solving iterator returned by [`SolveSession::solve_stream`].
pub struct SolveStream<'s, I: Iterator<Item = Instance>> {
    session: &'s SolveSession,
    source: I,
    window: usize,
    ready: VecDeque<Result<Solution, CoreError>>,
}

impl<I: Iterator<Item = Instance>> SolveStream<'_, I> {
    /// Pull one window from the source and fan it out onto the pool.
    fn refill(&mut self) {
        let window: Vec<Instance> = self.source.by_ref().take(self.window).collect();
        if window.is_empty() {
            return;
        }
        let mut slots: Vec<Option<Result<Solution, CoreError>>> =
            window.iter().map(|_| None).collect();
        let session = self.session;
        rayon::scope(|s| {
            for (slot, inst) in slots.iter_mut().zip(&window) {
                s.spawn(move |_| *slot = Some(solve_isolated(session, &inst.graph, &inst.family)));
            }
        });
        self.ready
            // lint: allow(no-panic): the scope barrier filled every stream slot
            .extend(slots.into_iter().map(|r| r.expect("stream task completed")));
    }
}

impl<I: Iterator<Item = Instance>> Iterator for SolveStream<'_, I> {
    type Item = Result<Solution, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.ready.is_empty() {
            self.refill();
        }
        self.ready.pop_front()
    }
}

// ---------------------------------------------------------------------------
// Backend orchestration internals
// ---------------------------------------------------------------------------

/// One consulted backend: the provenance record plus (when it ran to
/// completion) its outcome or (when it failed) its error.
struct Attempted {
    attempt: BackendAttempt,
    outcome: Option<BackendOutcome>,
    error: Option<CoreError>,
}

/// Consult a backend with full isolation: declines and failures (including
/// panics) become provenance records instead of propagating.
fn consult(kind: BackendKind, ctx: &InstanceContext<'_>) -> Attempted {
    let b = backend(kind);
    if let Some(reason) = b.unsupported(ctx) {
        return Attempted {
            attempt: BackendAttempt {
                backend: kind,
                lower_bound: ctx.load,
                upper_bound: None,
                valid: false,
                note: Some(reason),
            },
            outcome: None,
            error: None,
        };
    }
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.run(ctx)))
        .unwrap_or_else(|payload| Err(CoreError::SolverPanic(panic_message(payload.as_ref()))));
    match run {
        Ok(outcome) => Attempted {
            attempt: record(kind, ctx, &outcome),
            outcome: Some(outcome),
            error: None,
        },
        Err(e) => Attempted {
            attempt: BackendAttempt {
                backend: kind,
                lower_bound: ctx.load,
                upper_bound: None,
                valid: false,
                note: Some(e.to_string()),
            },
            outcome: None,
            error: Some(e),
        },
    }
}

/// Run a backend whose errors should propagate (Auto / Pinned paths).
fn run_required(
    kind: BackendKind,
    ctx: &InstanceContext<'_>,
) -> Result<(BackendAttempt, BackendOutcome), CoreError> {
    let outcome = backend(kind).run(ctx)?;
    Ok((record(kind, ctx, &outcome), outcome))
}

/// Provenance record for a completed run, including the `certify`-backed
/// validity re-check (independent of the backend's own bookkeeping).
fn record(
    kind: BackendKind,
    ctx: &InstanceContext<'_>,
    outcome: &BackendOutcome,
) -> BackendAttempt {
    let valid = certify::is_conflict_free(ctx.graph, ctx.family, &outcome.assignment);
    BackendAttempt {
        backend: kind,
        lower_bound: outcome.lower_bound.max(ctx.load),
        upper_bound: Some(outcome.assignment.num_colors()),
        valid,
        note: None,
    }
}

/// Assemble the final [`Solution`], pooling lower bounds across every
/// attempt (each is a valid bound on `w`, whichever backend proved it).
fn build_solution(
    ctx: &InstanceContext<'_>,
    winner: BackendKind,
    outcome: BackendOutcome,
    attempts: Vec<BackendAttempt>,
) -> Solution {
    let num_colors = outcome.assignment.num_colors();
    let best_lower = attempts
        .iter()
        .map(|a| a.lower_bound)
        .chain([outcome.lower_bound, ctx.load])
        .max()
        .unwrap_or(ctx.load);
    Solution {
        num_colors,
        assignment: outcome.assignment,
        load: ctx.load,
        optimal: outcome.optimal || num_colors == best_lower,
        class: ctx.class,
        strategy: winner,
        attempts,
        decomposition: None,
        resolve: None,
    }
}

/// The single backend [`Policy::Auto`] would lead with for this context's
/// class — the per-shard-selection shortcut
/// ([`SolveRequest::per_shard_backend`]): a shard's class pins its backend
/// directly, skipping the full Auto dispatch.
fn auto_shard_backend(ctx: &InstanceContext<'_>) -> BackendKind {
    match ctx.class {
        DagClass::InternalCycleFree => BackendKind::Theorem1,
        DagClass::UppSingleCycle => BackendKind::Theorem6,
        DagClass::UppMultiCycle { .. } | DagClass::General { .. } => {
            if backend(BackendKind::Exact).unsupported(ctx).is_none() {
                BackendKind::Exact
            } else {
                BackendKind::Dsatur
            }
        }
    }
}

/// Merge per-shard solutions into one whole-instance [`Solution`] with a
/// shared palette.
///
/// Shard palettes are normalized to dense `0..k` before writing back, so
/// the merged span is exactly the maximum over shard spans (the chromatic
/// number of a disjoint union is the max over its components — merging
/// loses nothing). Properness is structural: colors can only collide
/// across shards, and cross-shard dipaths never conflict.
///
/// Generic over [`Borrow<Solution>`] so the incremental engine can merge
/// its cached shard solutions by reference — a re-merge after a mutation
/// batch never deep-clones the clean shards.
pub(crate) fn merge_shards<S: std::borrow::Borrow<Solution>>(
    ctx: &InstanceContext<'_>,
    shards: Vec<(Vec<PathId>, S)>,
) -> Solution {
    let mut colors = vec![usize::MAX; ctx.family.len()];
    let mut span = 0usize;
    let mut best_lower = 0usize;
    let mut strategy: Option<Strategy> = None;
    let mut all_optimal = true;
    let mut attempts = Vec::new();
    let mut reports = Vec::with_capacity(shards.len());
    // One palette map reused across shards (cleared per shard): same
    // first-appearance numbering as `WavelengthAssignment::normalized`,
    // without materializing a normalized copy per shard.
    let mut palette: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (original_ids, sol) in shards {
        let sol = sol.borrow();
        palette.clear();
        for (local, &orig) in original_ids.iter().enumerate() {
            let raw = sol.assignment.color(PathId::from_index(local));
            let next = palette.len();
            colors[orig.index()] = *palette.entry(raw).or_insert(next);
        }
        // The merged strategy tag: winner of the first shard attaining the
        // merged span (strictly-greater update keeps the earliest).
        if strategy.is_none() || sol.num_colors > span {
            strategy = Some(sol.strategy);
        }
        span = span.max(sol.num_colors);
        // Each shard's lower bound is a bound on the whole chromatic
        // number (the union contains the shard as an induced subgraph).
        let shard_lower = sol
            .attempts
            .iter()
            .map(|a| a.lower_bound)
            .max()
            .unwrap_or(sol.load);
        best_lower = best_lower.max(shard_lower);
        all_optimal &= sol.optimal;
        attempts.extend(sol.attempts.iter().cloned());
        reports.push(ShardOutcome {
            paths: original_ids.len(),
            class: sol.class,
            strategy: sol.strategy,
            num_colors: sol.num_colors,
            load: sol.load,
            optimal: sol.optimal,
            attempts: sol.attempts.clone(),
            members: original_ids,
        });
    }
    debug_assert!(
        colors.iter().all(|&c| c != usize::MAX),
        "components partition the family"
    );
    let assignment = WavelengthAssignment::new(colors);
    // Shadow re-certification (debug builds only): audit the *merged*
    // assignment with the same independent oracle tests use, so a bad
    // merge (palette collision across shards, rank/id mix-up) dies here
    // with a certificate instead of surfacing as a wrong answer later.
    // `cfg!` keeps the block type-checked; release builds compile it out.
    if cfg!(debug_assertions) {
        let cert = crate::certify::certify_assignment(ctx.graph, ctx.family, &assignment);
        debug_assert!(
            cert.conflict_free,
            "merged assignment has an arc conflict: {cert:?}"
        );
        debug_assert_eq!(
            cert.colors_used, span,
            "merged span diverged from max shard span: {cert:?}"
        );
    }
    Solution {
        assignment,
        num_colors: span,
        // Every arc's users live in exactly one shard, so the whole-
        // instance load (already on the context) is the max shard load.
        load: ctx.load,
        // Max of per-shard optima is the optimum of the union.
        optimal: all_optimal || span == best_lower,
        class: ctx.class,
        strategy: strategy.expect("decomposed solve has at least one shard"), // lint: allow(no-panic): decomposition plans always contain at least one shard
        attempts,
        decomposition: Some(std::sync::Arc::new(Decomposition { shards: reports })),
        resolve: None,
    }
}

/// One batch/stream instance with panic isolation: a panic anywhere inside
/// `solve` is caught and converted to [`CoreError::SolverPanic`] so one
/// poisoned instance cannot take down the rest of the sweep.
fn solve_isolated(
    session: &SolveSession,
    g: &dagwave_graph::Digraph,
    family: &DipathFamily,
) -> Result<Solution, CoreError> {
    run_isolated(|| session.solve(g, family))
}

/// The catch_unwind-to-[`CoreError::SolverPanic`] conversion, factored out
/// so the panic path itself is unit-testable.
fn run_isolated(f: impl FnOnce() -> Result<Solution, CoreError>) -> Result<Solution, CoreError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
        // `.as_ref()`, not `&payload`: a `&Box<dyn Any>` would itself
        // unsize-coerce to `&dyn Any` and hide the real payload.
        .unwrap_or_else(|payload| Err(CoreError::SolverPanic(panic_message(payload.as_ref()))))
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Adapt a [`ConflictGraph`] to the coloring toolkit's [`UGraph`].
pub fn conflict_to_ugraph(cg: &ConflictGraph) -> UGraph {
    let adj: Vec<Vec<u32>> = (0..cg.vertex_count())
        .map(|i| cg.neighbors(PathId::from_index(i)).to_vec())
        .collect();
    UGraph::from_sorted_adjacency(adj)
}

// ---------------------------------------------------------------------------
// Deprecated facade
// ---------------------------------------------------------------------------

/// The pre-portfolio solver facade, retained as a thin shim.
///
/// `WavelengthSolver::new().solve(..)` behaves exactly like
/// `SolveSession::auto().solve(..)`; the two public budget fields map to
/// [`SolverBuilder::exact_limit`] and [`SolverBuilder::exact_budget`].
#[deprecated(
    since = "0.3.0",
    note = "use SolverBuilder/SolveSession (SolveSession::auto() matches the old behavior)"
)]
#[derive(Clone, Debug)]
pub struct WavelengthSolver {
    /// Largest conflict graph handed to the exact solver (vertices).
    pub exact_limit: usize,
    /// Node budget for the exact solver.
    pub exact_budget: u64,
}

#[allow(deprecated)]
impl Default for WavelengthSolver {
    fn default() -> Self {
        let req = SolveRequest::default();
        WavelengthSolver {
            exact_limit: req.exact_limit,
            exact_budget: req.exact_budget,
        }
    }
}

#[allow(deprecated)]
impl WavelengthSolver {
    /// Solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    fn session(&self) -> SolveSession {
        SolveSession::new(self.request())
    }

    /// The shim's request: the old facade predates decompose-solve-merge,
    /// so decomposition is pinned off to honor the "identical behavior"
    /// contract above.
    fn request(&self) -> SolveRequest {
        SolveRequest {
            exact_limit: self.exact_limit,
            exact_budget: self.exact_budget,
            decompose: DecomposePolicy::Off,
            ..SolveRequest::default()
        }
    }

    /// Solve the instance, dispatching on its class.
    pub fn solve(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
    ) -> Result<Solution, CoreError> {
        self.session().solve(g, family)
    }

    /// Solve many instances in parallel; see [`SolveSession::solve_batch`].
    pub fn solve_batch(
        &self,
        instances: &[(&dagwave_graph::Digraph, &DipathFamily)],
    ) -> Vec<Result<Solution, CoreError>> {
        self.session().solve_batch(instances)
    }

    /// Weighted-coloring path for families with duplicated dipaths; returns
    /// `None` when the weighted backend does not apply (no duplicates, or
    /// base larger than the dedup limit).
    pub fn solve_weighted(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
        class: DagClass,
    ) -> Option<Solution> {
        let request = self.request();
        let ctx = InstanceContext::new(g, family, &request).ok()?;
        if backend(BackendKind::Weighted).unsupported(&ctx).is_some() {
            return None;
        }
        let (attempt, outcome) = run_required(BackendKind::Weighted, &ctx).ok()?;
        let mut sol = build_solution(&ctx, BackendKind::Weighted, outcome, vec![attempt]);
        sol.class = class; // historical signature: caller supplies the class
        Some(sol)
    }

    /// Fallback path: exact chromatic on small conflict graphs, DSATUR
    /// beyond. Also used directly by benches as the baseline.
    pub fn solve_general(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
        class: DagClass,
    ) -> Result<Solution, CoreError> {
        let request = self.request();
        let ctx = InstanceContext::new(g, family, &request)?;
        let kind = if backend(BackendKind::Exact).unsupported(&ctx).is_none() {
            BackendKind::Exact
        } else {
            BackendKind::Dsatur
        };
        let (attempt, outcome) = run_required(kind, &ctx)?;
        let mut sol = build_solution(&ctx, kind, outcome, vec![attempt]);
        sol.class = class;
        Ok(sol)
    }

    /// See [`SolveSession::guaranteed_bound`].
    pub fn guaranteed_bound(
        &self,
        g: &dagwave_graph::Digraph,
        family: &DipathFamily,
    ) -> Option<usize> {
        self.session().guaranteed_bound(g, family)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::{Digraph, VertexId};
    use dagwave_paths::Dipath;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn path(g: &Digraph, route: &[usize]) -> Dipath {
        let route: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
        Dipath::from_vertices(g, &route).unwrap()
    }

    fn general_instance() -> (Digraph, DipathFamily) {
        // Guarded diamond: internal cycle, not UPP.
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 4), (1, 3), (3, 4), (4, 5)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2, 4]),
            path(&g, &[1, 3, 4]),
            path(&g, &[3, 4, 5]),
        ]);
        (g, f)
    }

    #[test]
    fn dispatches_theorem1_on_tree() {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[0, 1, 3]),
            path(&g, &[1, 2]),
        ]);
        let sol = SolveSession::auto().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Theorem1);
        assert!(sol.optimal);
        assert_eq!(sol.num_colors, sol.load);
        assert!(sol.assignment.is_valid(&g, &f));
        assert_eq!(sol.attempts.len(), 1);
        assert_eq!(sol.attempts[0].backend, BackendKind::Theorem1);
        assert!(sol.attempts[0].valid);
        assert_eq!(sol.attempts[0].upper_bound, Some(sol.num_colors));
        assert_eq!(
            SolveSession::auto().guaranteed_bound(&g, &f),
            Some(sol.load)
        );
    }

    #[test]
    fn dispatches_theorem6_on_single_cycle_upp() {
        // Single-arc dipaths over the crossing pattern.
        let g = from_edges(
            8,
            &[
                (0, 2),
                (1, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 7),
            ],
        );
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 2, 4, 6]),
            path(&g, &[1, 3, 5, 7]),
            path(&g, &[2, 5]),
            path(&g, &[3, 4]),
        ]);
        let sol = SolveSession::auto().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Theorem6);
        assert!(sol.assignment.is_valid(&g, &f));
        // Provenance: theorem6 ran, weighted was consulted and declined
        // (no duplicated dipaths in this family).
        assert_eq!(sol.attempts.len(), 2);
        assert_eq!(sol.attempts[1].backend, BackendKind::Weighted);
        assert!(sol.attempts[1].note.is_some());
        let bound = SolveSession::auto().guaranteed_bound(&g, &f).unwrap();
        assert!(sol.num_colors <= bound);
    }

    #[test]
    fn dispatches_exact_on_general_dag() {
        let (g, f) = general_instance();
        let sol = SolveSession::auto().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Exact);
        assert!(sol.optimal);
        assert!(sol.assignment.is_valid(&g, &f));
        assert!(sol.num_colors >= sol.load);
        assert_eq!(SolveSession::auto().guaranteed_bound(&g, &f), None);
    }

    #[test]
    fn dsatur_fallback_on_large_conflict_graph() {
        let (g, f) = general_instance();
        let f = f.replicate(30); // 120 paths > exact_limit
        let sol = SolveSession::auto().solve(&g, &f).unwrap();
        assert_eq!(sol.strategy, Strategy::Dsatur);
        assert!(sol.assignment.is_valid(&g, &f));
        assert!(sol.num_colors >= sol.load);
    }

    #[test]
    fn pinned_runs_exactly_that_backend() {
        let (g, f) = general_instance();
        for kind in [
            BackendKind::Dsatur,
            BackendKind::GreedyNatural,
            BackendKind::GreedyLargestFirst,
            BackendKind::GreedySmallestLast,
            BackendKind::KempeGreedy,
            BackendKind::Exact,
        ] {
            let sol = SolveSession::builder()
                .pinned(kind)
                .build()
                .solve(&g, &f)
                .unwrap();
            assert_eq!(sol.strategy, kind);
            assert!(sol.assignment.is_valid(&g, &f), "{kind}");
            assert_eq!(sol.attempts.len(), 1);
            assert!(sol.attempts[0].valid, "{kind}");
        }
    }

    #[test]
    fn pinned_unsupported_backend_errors() {
        let (g, f) = general_instance();
        let err = SolveSession::builder()
            .pinned(BackendKind::Theorem1)
            .build()
            .solve(&g, &f)
            .unwrap_err();
        match err {
            CoreError::BackendUnsupported { backend, reason } => {
                assert_eq!(backend, BackendKind::Theorem1);
                assert!(reason.contains("internal-cycle-free"), "{reason}");
            }
            other => panic!("expected BackendUnsupported, got {other:?}"),
        }
    }

    #[test]
    fn portfolio_keeps_fewest_colors_deterministically() {
        let (g, f) = general_instance();
        let session = SolveSession::builder()
            .portfolio(vec![
                BackendKind::GreedyNatural,
                BackendKind::Dsatur,
                BackendKind::KempeGreedy,
                BackendKind::Exact,
            ])
            .build();
        let sol = session.solve(&g, &f).unwrap();
        assert!(sol.assignment.is_valid(&g, &f));
        assert_eq!(sol.attempts.len(), 4);
        // The winner's color count is the minimum over every attempt.
        let min = sol
            .attempts
            .iter()
            .filter_map(|a| a.upper_bound)
            .min()
            .unwrap();
        assert_eq!(sol.num_colors, min);
        // Every member of this portfolio produced a certified coloring.
        assert!(sol.attempts.iter().all(|a| a.valid));
        // Deterministic: repeated runs pick the same winner & assignment.
        let again = session.solve(&g, &f).unwrap();
        assert_eq!(again.strategy, sol.strategy);
        assert_eq!(again.assignment.colors(), sol.assignment.colors());
    }

    #[test]
    fn empty_portfolio_races_all_applicable_backends() {
        let (g, f) = general_instance();
        let sol = SolveSession::builder()
            .portfolio(vec![])
            .build()
            .solve(&g, &f)
            .unwrap();
        assert!(sol.assignment.is_valid(&g, &f));
        // Theorem1/Theorem6/Weighted don't apply here; the six others do.
        assert_eq!(sol.attempts.len(), 6);
        assert!(
            sol.optimal,
            "exact is in the pool, so the result is optimal"
        );
    }

    #[test]
    fn portfolio_of_unsupported_members_reports_no_applicable_backend() {
        let (g, f) = general_instance();
        let err = SolveSession::builder()
            .portfolio(vec![BackendKind::Theorem1, BackendKind::Theorem6])
            .build()
            .solve(&g, &f)
            .unwrap_err();
        assert_eq!(err, CoreError::NoApplicableBackend);
    }

    #[test]
    fn rejects_cyclic_input() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::new();
        assert!(matches!(
            SolveSession::auto().solve(&g, &f),
            Err(CoreError::NotADag(_))
        ));
    }

    #[test]
    fn empty_family_on_any_class() {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let sol = SolveSession::auto()
            .solve(&g, &DipathFamily::new())
            .unwrap();
        assert_eq!(sol.num_colors, 0);
        assert_eq!(sol.load, 0);
        assert!(sol.optimal);
    }

    #[test]
    fn batch_solving_matches_individual() {
        let g1 = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let f1 = DipathFamily::from_paths(vec![path(&g1, &[0, 1, 2]), path(&g1, &[0, 1, 3])]);
        let g2 = from_edges(3, &[(0, 1), (1, 2)]);
        let f2 = DipathFamily::from_paths(vec![path(&g2, &[0, 1, 2])]).replicate(4);
        let session = SolveSession::auto();
        let batch = session.solve_batch(&[(&g1, &f1), (&g2, &f2)]);
        assert_eq!(batch.len(), 2);
        let s1 = batch[0].as_ref().unwrap();
        let s2 = batch[1].as_ref().unwrap();
        assert_eq!(s1.num_colors, session.solve(&g1, &f1).unwrap().num_colors);
        assert_eq!(s2.num_colors, 4);
    }

    #[test]
    fn batch_isolates_panics_per_instance() {
        // A healthy instance passes through untouched...
        let g = from_edges(2, &[(0, 1)]);
        let f = DipathFamily::new();
        let session = SolveSession::auto();
        assert!(super::solve_isolated(&session, &g, &f).is_ok());
        // ...and an actually panicking solve is converted to SolverPanic
        // (the same run_isolated path solve_batch's tasks go through),
        // for both &str and String payloads.
        match super::run_isolated(|| panic!("poisoned instance")) {
            Err(CoreError::SolverPanic(msg)) => assert_eq!(msg, "poisoned instance"),
            other => panic!("expected SolverPanic, got {other:?}"),
        }
        match super::run_isolated(|| panic!("{} of {}", 3, 7)) {
            Err(CoreError::SolverPanic(msg)) => assert_eq!(msg, "3 of 7"),
            other => panic!("expected SolverPanic, got {other:?}"),
        }
        let payload: Box<dyn std::any::Any + Send> = Box::new(7usize);
        assert_eq!(
            super::panic_message(payload.as_ref()),
            "non-string panic payload"
        );
    }

    #[test]
    fn batch_output_order_matches_input_order() {
        // Many instances with distinct answers: the result vector must line
        // up index-for-index with the inputs however tasks were scheduled.
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let session = SolveSession::auto();
        let families: Vec<DipathFamily> = (1..=12)
            .map(|h| DipathFamily::from_paths(vec![path(&g, &[0, 1, 2])]).replicate(h))
            .collect();
        let instances: Vec<_> = families.iter().map(|f| (&g, f)).collect();
        let batch = session.solve_batch(&instances);
        for (i, sol) in batch.iter().enumerate() {
            assert_eq!(sol.as_ref().unwrap().num_colors, i + 1, "instance {i}");
        }
    }

    #[test]
    fn batch_reports_errors_per_instance() {
        let good = from_edges(2, &[(0, 1)]);
        let bad = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::new();
        let batch = SolveSession::auto().solve_batch(&[(&good, &f), (&bad, &f)]);
        assert!(batch[0].is_ok());
        assert!(matches!(batch[1], Err(CoreError::NotADag(_))));
    }

    #[test]
    fn stream_matches_batch_and_is_windowed() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let session = SolveSession::auto();
        let families: Vec<DipathFamily> = (1..=25)
            .map(|h| DipathFamily::from_paths(vec![path(&g, &[0, 1, 2])]).replicate(h))
            .collect();
        let slice: Vec<_> = families.iter().map(|f| (&g, f)).collect();
        let batch = session.solve_batch(&slice);
        let streamed: Vec<_> = session
            .solve_stream(families.iter().map(|f| Instance::new(g.clone(), f.clone())))
            .collect();
        assert_eq!(streamed.len(), batch.len());
        for (i, (s, b)) in streamed.iter().zip(&batch).enumerate() {
            let (s, b) = (s.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(s.num_colors, b.num_colors, "instance {i}");
            assert_eq!(s.assignment.colors(), b.assignment.colors());
        }
    }

    #[test]
    fn stream_is_lazy() {
        // The source iterator must not be exhausted up-front: pulling one
        // result consumes at most one window.
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let session = SolveSession::auto();
        let pulled = std::cell::Cell::new(0usize);
        let source = (0..1_000_000).map(|_| {
            pulled.set(pulled.get() + 1);
            Instance::new(
                g.clone(),
                DipathFamily::from_paths(vec![path(&g, &[0, 1, 2])]),
            )
        });
        let mut stream = session.solve_stream(source);
        assert!(stream.next().unwrap().is_ok());
        let window = rayon::current_num_threads().max(1) * 4;
        assert!(
            pulled.get() <= window,
            "pulled {} instances for one result (window {window})",
            pulled.get()
        );
    }

    #[test]
    fn deprecated_facade_still_matches_the_session() {
        #[allow(deprecated)]
        let old = WavelengthSolver::new();
        let (g, f) = general_instance();
        #[allow(deprecated)]
        let a = old.solve(&g, &f).unwrap();
        let b = SolveSession::auto().solve(&g, &f).unwrap();
        assert_eq!(a.num_colors, b.num_colors);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.assignment.colors(), b.assignment.colors());
        #[allow(deprecated)]
        let w = old
            .solve_general(&g, &f, crate::internal::classify(&g))
            .unwrap();
        assert!(w.assignment.is_valid(&g, &f));
        #[allow(deprecated)]
        let none = old.solve_weighted(&g, &f, crate::internal::classify(&g));
        assert!(none.is_none(), "family has no duplicates");
    }

    /// Three conflict components: the guarded diamond family splits in two
    /// ({p0,p1} and {p2,p3} share no arc) and a disjoint chain part adds a
    /// third. Every shard's restricted graph is internal-cycle-free even
    /// though the whole DAG is general — the reclassification win the
    /// decompose stage exists for.
    fn three_component_instance() -> (Digraph, DipathFamily) {
        let (d, df) = general_instance(); // vertices 0..6, arcs 0..6
        let mut g = d.clone();
        // Second part: disjoint chain 6→7→8 with three overlapping paths.
        let v6 = g.add_vertex();
        let v7 = g.add_vertex();
        let v8 = g.add_vertex();
        let a67 = g.add_arc(v6, v7);
        let a78 = g.add_arc(v7, v8);
        let mut paths: Vec<Dipath> = df.iter().map(|(_, p)| p.clone()).collect();
        paths.push(Dipath::from_arcs(&g, vec![a67, a78]).unwrap());
        paths.push(Dipath::from_arcs(&g, vec![a67]).unwrap());
        paths.push(Dipath::from_arcs(&g, vec![a78]).unwrap());
        (g, DipathFamily::from_paths(paths))
    }

    #[test]
    fn decomposed_solve_merges_with_shared_palette() {
        let (g, f) = three_component_instance();
        let session = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Always)
            .build();
        let sol = session.solve(&g, &f).unwrap();
        assert!(sol.assignment.is_valid(&g, &f));
        let d = sol.decomposition.as_ref().expect("decomposed solve");
        assert_eq!(d.shard_count(), 3);
        // Merged span = max over shards (shared palette).
        let max_shard = d.shards.iter().map(|s| s.num_colors).max().unwrap();
        assert_eq!(sol.num_colors, max_shard);
        assert_eq!(sol.num_colors, sol.assignment.num_colors());
        // Every shard's restricted graph drops the arcs that made the
        // whole DAG general: all three reclassify as internal-cycle-free
        // and solve via Theorem 1, so the merged solve is provably optimal.
        assert_eq!(d.class_histogram(), vec![(DagClass::InternalCycleFree, 3)]);
        assert!(d
            .shards
            .iter()
            .all(|s| s.strategy == Strategy::Theorem1 && s.optimal));
        assert!(sol.optimal);
        // Whole-instance stats survive the merge.
        assert_eq!(sol.load, dagwave_paths::load::max_load(&g, &f));
        assert_eq!(sol.class, crate::internal::classify(&g));
        // Flattened provenance matches the per-shard records.
        let flat: usize = d.shards.iter().map(|s| s.attempts.len()).sum();
        assert_eq!(sol.attempts.len(), flat);
        assert_eq!(d.largest_shard(), 3);
    }

    #[test]
    fn decomposed_never_worse_than_monolithic_auto() {
        let (g, f) = three_component_instance();
        let mono = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Off)
            .build()
            .solve(&g, &f)
            .unwrap();
        assert!(mono.decomposition.is_none());
        let dec = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Always)
            .build()
            .solve(&g, &f)
            .unwrap();
        assert!(dec.num_colors <= mono.num_colors);
    }

    #[test]
    fn decomposition_composes_with_pinned_and_portfolio() {
        let (g, f) = three_component_instance();
        for policy in [
            Policy::Pinned(BackendKind::Dsatur),
            Policy::Portfolio(vec![BackendKind::Dsatur, BackendKind::KempeGreedy]),
        ] {
            let sol = SolveSession::builder()
                .policy(policy)
                .decompose(crate::DecomposePolicy::Always)
                .build()
                .solve(&g, &f)
                .unwrap();
            assert!(sol.assignment.is_valid(&g, &f));
            assert_eq!(sol.decomposition.unwrap().shard_count(), 3);
        }
    }

    #[test]
    fn auto_decompose_respects_threshold_and_split() {
        let (g, f) = three_component_instance();
        // Above the threshold and split: decomposes.
        let on = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Auto { min_paths: 2 })
            .build()
            .solve(&g, &f)
            .unwrap();
        assert!(on.decomposition.is_some());
        // Threshold above the family size: monolithic.
        let off = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Auto { min_paths: 100 })
            .build()
            .solve(&g, &f)
            .unwrap();
        assert!(off.decomposition.is_none());
        // Single-component instance: Auto stays monolithic at any size.
        let g1 = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let f1 = DipathFamily::from_paths(vec![
            path(&g1, &[0, 1, 2]),
            path(&g1, &[0, 1, 3]),
            path(&g1, &[1, 2]),
        ]);
        let single = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Auto { min_paths: 1 })
            .build()
            .solve(&g1, &f1)
            .unwrap();
        assert!(single.decomposition.is_none());
        // ...but Always shards even a single component.
        let forced = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Always)
            .build()
            .solve(&g1, &f1)
            .unwrap();
        assert_eq!(forced.decomposition.unwrap().shard_count(), 1);
        assert_eq!(forced.num_colors, single.num_colors);
    }

    #[test]
    fn auto_decompose_skips_the_theorem1_fast_path() {
        // Two disjoint chains: multi-component but internal-cycle-free, so
        // the monolithic Auto solve is already optimal and near-linear.
        let g = from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2]),
            path(&g, &[3, 4, 5]),
            path(&g, &[4, 5]),
        ]);
        // Auto backend policy: stays monolithic despite the split.
        let auto = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Auto { min_paths: 1 })
            .build()
            .solve(&g, &f)
            .unwrap();
        assert!(auto.decomposition.is_none());
        assert_eq!(auto.strategy, Strategy::Theorem1);
        // A pinned heuristic backend still shards (smaller graphs help it).
        let pinned = SolveSession::builder()
            .pinned(BackendKind::Dsatur)
            .decompose(crate::DecomposePolicy::Auto { min_paths: 1 })
            .build()
            .solve(&g, &f)
            .unwrap();
        assert_eq!(pinned.decomposition.unwrap().shard_count(), 2);
        // And Always overrides the fast-path skip.
        let always = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Always)
            .build()
            .solve(&g, &f)
            .unwrap();
        assert_eq!(always.decomposition.unwrap().shard_count(), 2);
        assert_eq!(always.num_colors, auto.num_colors, "both hit π");
    }

    #[test]
    fn decomposed_solve_rejects_cyclic_input_like_monolithic() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::from_paths(vec![Dipath::single(g.find_arc(v(0), v(1)).unwrap())]);
        let err = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Always)
            .build()
            .solve(&g, &f)
            .unwrap_err();
        assert!(matches!(err, CoreError::NotADag(_)));
    }

    #[test]
    fn decomposed_empty_family_falls_back_to_monolithic() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let sol = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Always)
            .build()
            .solve(&g, &DipathFamily::new())
            .unwrap();
        assert_eq!(sol.num_colors, 0);
        assert!(sol.decomposition.is_none());
    }

    #[test]
    fn decomposition_flows_through_batch_and_stream() {
        let (g, f) = three_component_instance();
        let session = SolveSession::builder()
            .decompose(crate::DecomposePolicy::Always)
            .build();
        let single = session.solve(&g, &f).unwrap();
        let batch = session.solve_batch(&[(&g, &f), (&g, &f)]);
        let streamed: Vec<_> = session
            .solve_stream([
                Instance::new(g.clone(), f.clone()),
                Instance::new(g.clone(), f.clone()),
            ])
            .collect();
        for sol in batch.iter().chain(&streamed) {
            let sol = sol.as_ref().unwrap();
            assert_eq!(sol.num_colors, single.num_colors);
            assert_eq!(sol.assignment.colors(), single.assignment.colors());
            assert_eq!(
                sol.decomposition.as_ref().unwrap().shard_count(),
                single.decomposition.as_ref().unwrap().shard_count()
            );
        }
    }

    #[test]
    fn conflict_to_ugraph_preserves_structure() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2, 3]),
            path(&g, &[2, 3]),
        ]);
        let cg = ConflictGraph::build(&g, &f);
        let ug = conflict_to_ugraph(&cg);
        assert_eq!(ug.vertex_count(), 3);
        assert_eq!(ug.edge_count(), cg.edge_count());
        assert!(ug.has_edge(0, 1));
    }
}
