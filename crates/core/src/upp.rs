//! UPP-DAGs: the Unique diPath Property (paper, Sections 2 and 4).
//!
//! A DAG is **UPP** when between any two vertices there is at most one
//! dipath. The paper proves structural properties of their conflict graphs:
//!
//! * **Property 3 (Helly)** — pairwise-intersecting dipaths have a common
//!   dipath intersection; consequently the load `π` equals the clique number
//!   of the conflict graph ([`clique_number_via_load`]).
//! * **Lemma 4 (Crossing)** and **Corollary 5** — the conflict graph
//!   contains no `K_{2,3}` (checked in property tests with
//!   `dagwave_color::forbidden`).

use dagwave_graph::pathcount;
use dagwave_graph::{ArcId, Digraph, VertexId};
use dagwave_paths::conflict::Intersection;
use dagwave_paths::{load, Dipath, DipathFamily, PathId};

/// `true` if `g` has the Unique diPath Property.
pub fn is_upp(g: &Digraph) -> bool {
    pathcount::is_upp(g)
}

/// A witness pair `(u, v)` with two distinct dipaths `u → v`, or `None`.
pub fn upp_violation(g: &Digraph) -> Option<(VertexId, VertexId)> {
    pathcount::upp_violation(g)
}

/// The unique dipath from `u` to `v` in an UPP-DAG, or `None` when
/// unreachable or `u == v`. (On a non-UPP digraph this returns *a* shortest
/// dipath; callers that need the UPP guarantee validate with [`is_upp`].)
pub fn unique_dipath(g: &Digraph, u: VertexId, v: VertexId) -> Option<Dipath> {
    let arcs = dagwave_graph::reach::shortest_dipath(g, u, v)?;
    if arcs.is_empty() {
        return None;
    }
    Some(Dipath::from_arcs(g, arcs).expect("BFS output is contiguous")) // lint: allow(no-panic): BFS emits consecutive arcs, so the dipath is contiguous
}

/// Property 3, first step: the intersection of two conflicting dipaths in an
/// UPP-DAG is a single sub-dipath. Returns the shared run as
/// `(start, end)` positions in `p`'s arc sequence, or `None` if disjoint.
///
/// # Panics
/// Debug-asserts single-interval structure — a violation means the host
/// digraph was not UPP.
pub fn helly_intersection(p: &Dipath, q: &Dipath) -> Option<(usize, usize)> {
    let ix = Intersection::of(p, q);
    if ix.is_empty() {
        return None;
    }
    debug_assert!(
        ix.is_single_interval(),
        "UPP violated: intersection in {} pieces",
        ix.intervals.len()
    );
    Some(ix.intervals[0])
}

/// Property 3's consequence: on an UPP-DAG, `π(G, P)` equals the clique
/// number of the conflict graph. This function returns `π` (computing it
/// from loads) — which *is* the clique number; tests cross-validate against
/// Bron–Kerbosch on the explicit conflict graph.
pub fn clique_number_via_load(g: &Digraph, family: &DipathFamily) -> usize {
    load::max_load(g, family)
}

/// Check the full Helly property on a set of pairwise-conflicting dipaths:
/// their common intersection is non-empty (shares at least one arc among
/// all). Used by property tests on random UPP instances.
pub fn helly_holds(family: &DipathFamily, clique: &[PathId]) -> bool {
    if clique.len() < 2 {
        return true;
    }
    // Intersect arc sets progressively.
    let mut common: std::collections::HashSet<ArcId> =
        family.path(clique[0]).arcs().iter().copied().collect();
    for &p in &clique[1..] {
        let arcs: std::collections::HashSet<ArcId> =
            family.path(p).arcs().iter().copied().collect();
        common.retain(|a| arcs.contains(a));
        if common.is_empty() {
            return false;
        }
    }
    true
}

/// Lemma 4 (Crossing lemma) checker, used by property tests: given disjoint
/// dipaths `p1, p2` and disjoint `q1, q2` each intersecting both, if `q1`
/// meets `p1` before `q2` (by position on `p1`), then `q2` must meet `p2`
/// before `q1`. Returns `true` when the configuration is consistent with
/// the lemma (or not applicable).
pub fn crossing_lemma_holds(
    family: &DipathFamily,
    p1: PathId,
    p2: PathId,
    q1: PathId,
    q2: PathId,
) -> bool {
    let (p1d, p2d) = (family.path(p1), family.path(p2));
    let (q1d, q2d) = (family.path(q1), family.path(q2));
    if p1d.conflicts_with(p2d) || q1d.conflicts_with(q2d) {
        return true; // not applicable: the pairs must be disjoint
    }
    let pos = |host: &Dipath, guest: &Dipath| -> Option<usize> {
        Intersection::of(host, guest)
            .intervals
            .first()
            .map(|&(s, _)| s)
    };
    let (Some(a11), Some(a12), Some(a21), Some(a22)) =
        (pos(p1d, q1d), pos(p1d, q2d), pos(p2d, q1d), pos(p2d, q2d))
    else {
        return true; // not applicable: each q must meet each p
    };
    if a11 < a12 {
        // q1 before q2 on p1 ⇒ q2 before q1 on p2.
        a22 < a21
    } else if a12 < a11 {
        a21 < a22
    } else {
        true // met at the same position: degenerate, lemma silent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_paths::ConflictGraph;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn path(g: &Digraph, route: &[usize]) -> Dipath {
        let route: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
        Dipath::from_vertices(g, &route).unwrap()
    }

    #[test]
    fn unique_dipath_on_tree() {
        let g = from_edges(5, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert!(is_upp(&g));
        let p = unique_dipath(&g, v(0), v(3)).unwrap();
        assert_eq!(p.vertices(&g), vec![v(0), v(1), v(3)]);
        assert!(unique_dipath(&g, v(3), v(0)).is_none());
        assert!(unique_dipath(&g, v(2), v(2)).is_none());
    }

    #[test]
    fn helly_intersection_single_run() {
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let p = path(&g, &[0, 1, 2, 3, 4]);
        let q = path(&g, &[2, 3, 4, 5]);
        assert_eq!(helly_intersection(&p, &q), Some((2, 4)));
        let r = path(&g, &[4, 5]);
        assert_eq!(helly_intersection(&p, &r), None);
    }

    #[test]
    fn clique_number_equals_load_on_upp_chain() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(is_upp(&g));
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2, 3]),
            path(&g, &[1, 2, 3, 4]),
            path(&g, &[2, 3]),
            path(&g, &[0, 1]),
        ]);
        let pi = clique_number_via_load(&g, &f);
        assert_eq!(pi, 3);
        // Cross-validate with Bron–Kerbosch on the explicit conflict graph.
        let cg = ConflictGraph::build(&g, &f);
        let adj: Vec<Vec<u32>> = (0..cg.vertex_count())
            .map(|i| cg.neighbors(PathId::from_index(i)).to_vec())
            .collect();
        let ug = dagwave_color::UGraph::from_sorted_adjacency(adj);
        assert_eq!(dagwave_color::clique::clique_number(&ug), pi);
    }

    #[test]
    fn helly_holds_on_upp_clique() {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2, 3]),
            path(&g, &[1, 2, 3, 4]),
            path(&g, &[2, 3]),
        ]);
        let ids: Vec<PathId> = f.ids().collect();
        assert!(helly_holds(&f, &ids));
        assert!(helly_holds(&f, &ids[..1]), "trivial cliques pass");
        assert!(helly_holds(&f, &[]));
    }

    #[test]
    fn helly_fails_on_non_upp_configuration() {
        // Three dipaths pairwise intersecting without a common arc — only
        // possible when UPP fails (a detour around the middle arc).
        let g = from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (5, 2)]);
        assert!(!is_upp(&g), "detour 1→5→2 breaks UPP");
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),       // arcs {0→1, 1→2}
            path(&g, &[1, 2, 3]),       // arcs {1→2, 2→3}
            path(&g, &[0, 1, 5, 2, 3]), // arcs {0→1, …detour…, 2→3}
        ]);
        // Pairwise in conflict: p0∩p1 = {1→2}, p1∩p2 = {2→3}, p0∩p2 = {0→1}.
        for (i, p) in f.iter() {
            for (j, q) in f.iter() {
                if i < j {
                    assert!(p.conflicts_with(q), "{i} vs {j}");
                }
            }
        }
        let ids: Vec<PathId> = f.ids().collect();
        assert!(!helly_holds(&f, &ids), "no common arc: Helly fails");
    }

    #[test]
    fn crossing_lemma_on_figure8_configuration() {
        // Figure 8: the only legal crossing pattern in an UPP-DAG — Q1 goes
        // P1-then-P2, Q2 goes P2-then-P1, with the meeting orders reversed.
        let g = from_edges(
            10,
            &[
                (0, 1),
                (1, 2),
                (2, 3), // P1 spine
                (4, 5),
                (5, 6),
                (6, 7), // P2 spine
                (8, 0), // Q1 feed
                (1, 6), // Q1 bridge: leaves P1 early, joins P2 late
                (9, 4), // Q2 feed
                (5, 2), // Q2 bridge: leaves P2 early, joins P1 late
            ],
        );
        assert!(is_upp(&g));
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2, 3]),    // P1
            path(&g, &[4, 5, 6, 7]),    // P2
            path(&g, &[8, 0, 1, 6, 7]), // Q1: shares 0→1 (P1 pos 0), 6→7 (P2 pos 2)
            path(&g, &[9, 4, 5, 2, 3]), // Q2: shares 4→5 (P2 pos 0), 2→3 (P1 pos 2)
        ]);
        assert!(crossing_lemma_holds(
            &f,
            PathId(0),
            PathId(1),
            PathId(2),
            PathId(3)
        ));
        assert!(crossing_lemma_holds(
            &f,
            PathId(1),
            PathId(0),
            PathId(2),
            PathId(3)
        ));
        // The conflict graph of {P1, P2, Q1, Q2} is exactly C4 (Figure 8).
        let cg = ConflictGraph::build(&g, &f);
        assert_eq!(cg.edge_count(), 4);
        assert!(!cg.are_adjacent(PathId(0), PathId(1)));
        assert!(!cg.are_adjacent(PathId(2), PathId(3)));
        assert!(cg.are_adjacent(PathId(0), PathId(2)));
        assert!(cg.are_adjacent(PathId(1), PathId(3)));
    }

    #[test]
    fn crossing_lemma_not_applicable_cases() {
        let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2, 3]),
            path(&g, &[2, 3]),
            path(&g, &[0, 1]),
        ]);
        // p1, p2 conflict ⇒ lemma silent ⇒ holds.
        assert!(crossing_lemma_holds(
            &f,
            PathId(0),
            PathId(1),
            PathId(2),
            PathId(3)
        ));
    }

    #[test]
    fn violation_reported_on_diamond() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(!is_upp(&g));
        let (u, w) = upp_violation(&g).unwrap();
        assert_eq!((u, w), (v(0), v(3)));
    }
}
