//! Decompose-solve-merge: intra-instance sharding by conflict-graph
//! connected components.
//!
//! Two dipaths in different connected components of the conflict graph
//! share no arc, so the chromatic number of the whole conflict graph is the
//! **maximum** over its components — per-component coloring with a shared
//! palette is exact, not a heuristic. The solving surface exploits this:
//! under a [`DecomposePolicy`] the instance is cut into
//! [`dagwave_paths::SubInstance`] shards (one per component), each shard is
//! classified and solved independently on the rayon pool under the
//! session's [`crate::Policy`], and the shard colorings are merged back
//! with a shared palette. Shards frequently land in a friendlier
//! [`DagClass`] than the whole instance — a component that never touches
//! the internal cycle is solved by Theorem 1 exactly even when the host
//! DAG is general — and a shard small enough for the exact solver gets a
//! certified optimum the monolithic solve could not afford.
//!
//! The merged [`crate::Solution`] carries a [`Decomposition`] record with
//! one [`ShardOutcome`] per shard (size, class, winning backend, span, and
//! the full per-backend attempt provenance), in deterministic shard order
//! (components ordered by smallest original path id).

use crate::backend::BackendAttempt;
use crate::internal::DagClass;
use crate::solver::Strategy;
use dagwave_paths::PathId;

/// When the solving surface shards an instance by conflict-graph
/// components before solving.
///
/// Decomposition is correctness-preserving (disjoint components never
/// conflict), deterministic (shards are ordered by smallest original path
/// id and each shard solve is deterministic), and composes with every
/// [`crate::Policy`] and with `solve_batch`/`solve_stream`.
///
/// ```
/// use dagwave_core::{DecomposePolicy, SolverBuilder};
///
/// // Shard unconditionally: every connected component becomes its own
/// // sub-solve, and the merged span is the max over shards.
/// let session = SolverBuilder::new()
///     .decompose(DecomposePolicy::Always)
///     .build();
/// # let _ = session;
///
/// // The default only pays the component scan on large instances:
/// assert_eq!(
///     DecomposePolicy::default(),
///     DecomposePolicy::Auto { min_paths: DecomposePolicy::DEFAULT_MIN_PATHS },
/// );
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecomposePolicy {
    /// Never decompose: always one monolithic solve (the pre-decomposition
    /// behavior).
    Off,
    /// Decompose only when it can plausibly pay off: the family has at
    /// least `min_paths` dipaths, the conflict graph actually splits into
    /// ≥ 2 components, and — under the Auto backend policy — the host is
    /// *not* internal-cycle-free (there the monolithic Theorem 1 solve is
    /// already optimal in near-linear time, so sharding could only add
    /// overhead). Below the size threshold the component scan is skipped
    /// entirely, so small instances pay nothing.
    Auto {
        /// Smallest family size worth scanning for components.
        min_paths: usize,
    },
    /// Decompose every non-empty instance, even single-component ones
    /// (the shard still benefits from graph restriction: arcs no dipath
    /// uses are dropped, which can land the shard in a friendlier class).
    Always,
}

impl DecomposePolicy {
    /// Default [`DecomposePolicy::Auto`] threshold: instances below this
    /// size solve monolithically without even scanning for components.
    pub const DEFAULT_MIN_PATHS: usize = 512;
}

impl Default for DecomposePolicy {
    fn default() -> Self {
        DecomposePolicy::Auto {
            min_paths: Self::DEFAULT_MIN_PATHS,
        }
    }
}

/// What one shard of a decomposed solve produced.
#[derive(Clone, Debug)]
pub struct ShardOutcome {
    /// Number of dipaths in the shard.
    pub paths: usize,
    /// The shard's members — the [`PathId`]s (in the solved instance's id
    /// space) this shard colored, in ascending order. This is the
    /// shard→path attribution callers (and the incremental engine) need
    /// without re-running the component union-find.
    pub members: Vec<PathId>,
    /// The shard's own class (often friendlier than the whole instance's).
    pub class: DagClass,
    /// The backend that produced the kept shard coloring.
    pub strategy: Strategy,
    /// Wavelengths the shard uses (the merged span is the max of these).
    pub num_colors: usize,
    /// The shard's own load `π`.
    pub load: usize,
    /// `true` when the shard coloring is provably minimum for the shard.
    pub optimal: bool,
    /// Per-backend provenance of the shard solve, as
    /// [`crate::Solution::attempts`] would carry for a standalone solve.
    pub attempts: Vec<BackendAttempt>,
}

/// Provenance of a decomposed solve: one [`ShardOutcome`] per
/// conflict-graph component, in deterministic shard order (smallest
/// original path id first).
#[derive(Clone, Debug, Default)]
pub struct Decomposition {
    /// The shards, in solve order.
    pub shards: Vec<ShardOutcome>,
}

impl Decomposition {
    /// Number of shards the instance split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Size (dipath count) of the largest shard — the critical path of the
    /// parallel solve.
    pub fn largest_shard(&self) -> usize {
        self.shards.iter().map(|s| s.paths).max().unwrap_or(0)
    }

    /// The shard containing dipath `p`, if any — a linear scan over the
    /// recorded memberships (shards partition the family, so the first hit
    /// is the only hit).
    pub fn shard_of(&self, p: PathId) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.members.binary_search(&p).is_ok())
    }

    /// Histogram of shard classes, ordered by first appearance: how many
    /// shards landed in each [`DagClass`].
    pub fn class_histogram(&self) -> Vec<(DagClass, usize)> {
        let mut hist: Vec<(DagClass, usize)> = Vec::new();
        for s in &self.shards {
            match hist.iter_mut().find(|(c, _)| *c == s.class) {
                Some((_, n)) => *n += 1,
                None => hist.push((s.class, 1)),
            }
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;

    fn shard(paths: usize, class: DagClass, num_colors: usize) -> ShardOutcome {
        ShardOutcome {
            paths,
            members: (0..paths).map(PathId::from_index).collect(),
            class,
            strategy: BackendKind::Dsatur,
            num_colors,
            load: num_colors,
            optimal: true,
            attempts: Vec::new(),
        }
    }

    #[test]
    fn default_policy_is_auto_with_threshold() {
        assert_eq!(
            DecomposePolicy::default(),
            DecomposePolicy::Auto {
                min_paths: DecomposePolicy::DEFAULT_MIN_PATHS
            }
        );
    }

    #[test]
    fn empty_decomposition_stats() {
        let d = Decomposition::default();
        assert_eq!(d.shard_count(), 0);
        assert_eq!(d.largest_shard(), 0);
        assert!(d.class_histogram().is_empty());
    }

    #[test]
    fn shard_of_attributes_paths_to_shards() {
        let mut a = shard(2, DagClass::InternalCycleFree, 1);
        a.members = vec![PathId(0), PathId(3)];
        let mut b = shard(2, DagClass::InternalCycleFree, 1);
        b.members = vec![PathId(1), PathId(2)];
        let d = Decomposition { shards: vec![a, b] };
        assert_eq!(d.shard_of(PathId(3)), Some(0));
        assert_eq!(d.shard_of(PathId(1)), Some(1));
        assert_eq!(d.shard_of(PathId(7)), None);
    }

    #[test]
    fn stats_over_mixed_shards() {
        let d = Decomposition {
            shards: vec![
                shard(5, DagClass::InternalCycleFree, 2),
                shard(12, DagClass::General { cycles: 1 }, 3),
                shard(3, DagClass::InternalCycleFree, 1),
            ],
        };
        assert_eq!(d.shard_count(), 3);
        assert_eq!(d.largest_shard(), 12);
        assert_eq!(
            d.class_histogram(),
            vec![
                (DagClass::InternalCycleFree, 2),
                (DagClass::General { cycles: 1 }, 1),
            ]
        );
    }
}
