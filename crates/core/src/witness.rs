//! Figure 4 — turning a blocked recoloring into an internal-cycle witness.
//!
//! When the Theorem-1 replay fails (case C of the proof), it returns the
//! alternating chain `P1, …, Pp = P0` of dipaths whose pairwise
//! intersections trace a closed walk. The proof extracts an internal cycle
//! from that walk; this module implements the extraction: the union of the
//! chain dipaths' arcs, restricted to vertices internal in `G`, must
//! contain an underlying cycle, which is internal.

use dagwave_graph::undirected::{self, OrientedCycle};
use dagwave_graph::{Digraph, SubgraphView};
use dagwave_paths::{DipathFamily, PathId};

/// Extract an explicit internal cycle from a blocked recoloring chain.
///
/// `chain` is the dipath sequence carried by
/// [`crate::CoreError::InternalCycleObstruction`]. Returns `None` only if
/// the chain does not actually witness an internal cycle (which would
/// indicate a solver bug — the proof guarantees it does).
pub fn internal_cycle_from_chain(
    g: &Digraph,
    family: &DipathFamily,
    chain: &[PathId],
) -> Option<OrientedCycle> {
    // Support of the chain: all arcs of the involved dipaths. The proof's
    // closed walk lives inside this support; every turn vertex of the
    // extracted cycle has a predecessor/successor along the dipaths
    // themselves, so restricting to internal vertices of G is safe.
    let mut arcs = std::collections::HashSet::new();
    for &p in chain {
        for &a in family.path(p).arcs() {
            arcs.insert(a);
        }
    }
    let mut view = SubgraphView::full(g);
    for a in g.arc_ids() {
        if !arcs.contains(&a) {
            view.remove_arc(a);
        }
    }
    for v in g.vertices() {
        if !g.is_internal(v) {
            view.remove_vertex(v);
        }
    }
    let cycle = undirected::find_underlying_cycle(&view)?;
    debug_assert!(crate::internal::is_internal_cycle(g, &cycle));
    Some(cycle)
}

/// Convenience: run Theorem 1 and, on obstruction, return the explicit
/// internal cycle (the full Figure-4 pipeline).
pub fn explain_obstruction(
    g: &Digraph,
    family: &DipathFamily,
) -> Result<crate::theorem1::Theorem1Result, Box<OrientedCycle>> {
    match crate::theorem1::color_optimal(g, family) {
        Ok(res) => Ok(res),
        Err(crate::CoreError::InternalCycleObstruction { chain }) => {
            let cycle = internal_cycle_from_chain(g, family, &chain)
                .or_else(|| crate::internal::find_internal_cycle(g))
                .expect("case C implies an internal cycle exists"); // lint: allow(no-panic): case C of Theorem 1 only arises when an internal cycle exists
            Err(Box::new(cycle))
        }
        Err(other) => panic!("unexpected theorem-1 error: {other}"), // lint: allow(no-panic): color_optimal's only failure mode is the cycle obstruction; anything else is a logic bug worth a loud stop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;
    use dagwave_paths::Dipath;

    /// Figure 3's instance blocks the Theorem-1 replay; the witness must be
    /// the b-c-d internal cycle.
    fn figure3() -> (Digraph, DipathFamily) {
        let g = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let v = |i: usize| VertexId::from_index(i);
        let p = |route: &[usize]| {
            let r: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
            Dipath::from_vertices(&g, &r).unwrap()
        };
        let family = DipathFamily::from_paths(vec![
            p(&[0, 1, 2]),
            p(&[1, 2, 3]),
            p(&[2, 3, 4]),
            p(&[1, 3, 4]),
            p(&[0, 1, 3]),
        ]);
        (g, family)
    }

    #[test]
    fn obstruction_yields_internal_cycle() {
        let (g, family) = figure3();
        match explain_obstruction(&g, &family) {
            Err(cycle) => {
                assert!(crate::internal::is_internal_cycle(&g, &cycle));
                // The only internal cycle is b(1), c(2), d(3).
                let mut vs: Vec<usize> = cycle.vertices.iter().map(|v| v.index()).collect();
                vs.sort_unstable();
                assert_eq!(vs, vec![1, 2, 3]);
            }
            Ok(res) => panic!(
                "C5 family must block at π = 2, got {} colors",
                res.assignment.num_colors()
            ),
        }
    }

    #[test]
    fn chain_support_extraction() {
        let (g, family) = figure3();
        let Err(crate::CoreError::InternalCycleObstruction { chain }) =
            crate::theorem1::color_optimal(&g, &family)
        else {
            panic!("expected obstruction");
        };
        let cycle = internal_cycle_from_chain(&g, &family, &chain).expect("witness");
        assert!(cycle.validate(&g));
        assert!(cycle.vertices.iter().all(|&v| g.is_internal(v)));
    }

    #[test]
    fn clean_instances_pass_through() {
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let v = |i: usize| VertexId::from_index(i);
        let family =
            DipathFamily::from_paths(vec![Dipath::from_vertices(&g, &[v(0), v(1), v(2)]).unwrap()]);
        let res = explain_obstruction(&g, &family).expect("no obstruction on a chain");
        assert_eq!(res.assignment.num_colors(), 1);
    }
}
