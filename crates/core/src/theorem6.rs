//! Theorem 6 — `w ≤ ⌈4π/3⌉` for UPP-DAGs with one internal cycle.
//!
//! **Theorem 6 (paper).** Let `G` be an UPP-DAG with exactly one internal
//! cycle. Then for any family of dipaths `P`, `w(G, P) ≤ ⌈4π/3⌉`.
//!
//! The constructive proof, implemented here:
//!
//! 1. Pick the arc `(a, b)` of maximum load on the unique internal cycle;
//!    pad the family with copies of the single-arc dipath `[a, b]` until
//!    that load equals `π` (the padding is dropped at the end).
//! 2. **Split**: build `G̃` by replacing `(a, b)` with `(a, s)` and `(t, b)`
//!    (fresh sink `s`, fresh source `t`); every dipath through `(a, b)`
//!    splits into its prefix `[x_k s]` and suffix `[t y_k]`. `G̃` has no
//!    internal cycle, so Theorem 1 colors it with exactly `π` wavelengths.
//! 3. **Merge**: the prefixes use all `π` colors (they share `(a, s)`), as
//!    do the suffixes; mapping each prefix color to its dipath's suffix
//!    color is a permutation of the palette. Its cycle decomposition gives
//!    the paper's classes `C_p`. Fixed points merge for free; each longer
//!    cycle costs one extra color `γ` (its first dipath takes `γ`, the rest
//!    take their prefix colors, and the at-most-one clashing outsider per
//!    suffix — Fact 1 — is recolored `γ`; Fact 2 keeps the `γ` class
//!    independent). Transpositions (`C_2`) are paired two-at-a-time to share
//!    a single `γ`, and a lone `C_2` piggybacks on a longer cycle's freed
//!    first color — exactly the paper's accounting, which lands on
//!    `⌈4π/3⌉`.

use crate::assignment::WavelengthAssignment;
use crate::bounds;
use crate::error::CoreError;
use crate::internal;
use crate::theorem1;
use dagwave_graph::{ArcId, Digraph};
use dagwave_paths::{load, Dipath, DipathFamily, PathId};

/// Outcome of the Theorem-6 coloring.
#[derive(Clone, Debug)]
pub struct Theorem6Result {
    /// The wavelength assignment for the *original* family.
    pub assignment: WavelengthAssignment,
    /// `π(G, P)`.
    pub load: usize,
    /// The theorem's bound `⌈4π/3⌉` (the assignment never exceeds it).
    pub bound: usize,
    /// Extra colors used beyond the palette `0..π`.
    pub extra_colors: usize,
    /// `profile[p]` = number of permutation cycles of length `p`
    /// (`profile[1]` = `|C_1|`, etc.). The paper's `π = Σ p·|C_p|`.
    pub class_profile: Vec<usize>,
    /// `true` when the assignment respects `⌈4π/3⌉`. Guaranteed for
    /// families of pairwise-distinct dipaths (the setting of the paper's
    /// Facts 1–2); families with duplicated dipaths can force extra rescue
    /// colors in rare configurations — see DESIGN.md §6.
    pub within_bound: bool,
}

/// Color `family` on a single-internal-cycle UPP-DAG with at most
/// `⌈4π/3⌉` wavelengths.
///
/// Validates the preconditions (DAG, UPP, exactly one internal cycle) and
/// returns the corresponding [`CoreError`] when they fail.
pub fn color_single_cycle_upp(
    g: &Digraph,
    family: &DipathFamily,
) -> Result<Theorem6Result, CoreError> {
    // Preconditions.
    if let Err(dagwave_graph::GraphError::NotADag(c)) = dagwave_graph::topo::topological_order(g) {
        return Err(CoreError::NotADag(c));
    }
    if let Some((u, v)) = dagwave_graph::pathcount::upp_violation(g) {
        return Err(CoreError::NotUpp(u, v));
    }
    let cycles = internal::internal_cycle_count(g);
    if cycles != 1 {
        return Err(CoreError::WrongInternalCycleCount(cycles));
    }

    let pi = load::max_load(g, family);
    let bound = bounds::theorem6_bound(pi);
    if pi == 0 {
        return Ok(Theorem6Result {
            assignment: WavelengthAssignment::new(vec![0; family.len()]),
            load: 0,
            bound,
            extra_colors: 0,
            class_profile: Vec::new(),
            within_bound: true,
        });
    }

    // 1. Max-load arc on the unique internal cycle, padded to load π.
    let cycle = internal::find_internal_cycle(g).expect("count said one cycle"); // lint: allow(no-panic): classify() counted exactly one internal cycle before this call
    let table = load::load_table(g, family);
    let ab = cycle
        .steps
        .iter()
        .map(|s| s.arc)
        .max_by_key(|a| table[a.index()])
        .expect("internal cycle has arcs"); // lint: allow(no-panic): a cycle is non-empty by construction
    let padding = pi - table[ab.index()];
    let mut padded = family.clone();
    for _ in 0..padding {
        padded.push(Dipath::single(ab));
    }

    // 2. Split into G̃ / P̃.
    let split = split_instance(g, &padded, ab);
    debug_assert!(
        internal::is_internal_cycle_free(&split.graph),
        "splitting the cycle arc must remove the internal cycle"
    );

    // 3. Theorem 1 on the split instance.
    let t1 = theorem1::color_optimal(&split.graph, &split.family)?;
    debug_assert_eq!(t1.load, pi, "split preserves the load");
    let tilde_colors = t1.assignment.colors();

    // Prefix (σ) and suffix (τ) colors per crossing dipath.
    let k = split.crossings.len();
    debug_assert_eq!(k, pi, "exactly π dipaths cross (a,b) after padding");
    let mut sigma: Vec<usize> = split
        .crossings
        .iter()
        .map(|c| tilde_colors[c.prefix.index()])
        .collect();
    let mut tau: Vec<usize> = split
        .crossings
        .iter()
        .map(|c| tilde_colors[c.suffix.index()])
        .collect();
    // Multiset normalization: identical crossing dipaths (Theorem 7
    // replicates every dipath) have interchangeable halves, so the σ↔τ
    // association within an identity group is ours to choose. Re-pair so
    // that colors present on both sides become fixed points (C1 classes):
    // those merge for free and, crucially, their merged color lies in the
    // group's τ-set, which every outside dipath touching the shared suffix
    // already avoids — eliminating patch cascades that the paper's Facts
    // 1–2 do not cover for duplicated dipaths.
    repair_identity_groups(&padded, &split, &mut sigma, &mut tau);

    // 4. Permutation σ-color → τ-color and its cycle decomposition.
    let mut perm = vec![usize::MAX; pi];
    let mut index_of_sigma = vec![usize::MAX; pi];
    for j in 0..k {
        debug_assert_eq!(perm[sigma[j]], usize::MAX, "prefixes use distinct colors");
        perm[sigma[j]] = tau[j];
        index_of_sigma[sigma[j]] = j;
    }
    let classes = cycle_decomposition(&perm, &index_of_sigma);
    let mut class_profile = Vec::new();
    for class in &classes {
        let p = class.len();
        if class_profile.len() <= p {
            class_profile.resize(p + 1, 0);
        }
        class_profile[p] += 1;
    }

    // 5. Assign final colors on the padded family.
    let mut final_colors = vec![usize::MAX; padded.len()];
    for &(orig, tilde) in split.noncrossing.iter() {
        final_colors[orig.index()] = tilde_colors[tilde.index()];
    }
    let mut next_gamma = pi;
    // gamma_of[class index]: the rescue color for patching, if any.
    let mut gamma_of: Vec<Option<usize>> = vec![None; classes.len()];
    let mut class_of_crossing = vec![usize::MAX; k];
    for (ci, class) in classes.iter().enumerate() {
        for &j in class {
            class_of_crossing[j] = ci;
        }
    }

    let fixed: Vec<usize> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.len() == 1)
        .map(|(i, _)| i)
        .collect();
    let twos: Vec<usize> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.len() == 2)
        .map(|(i, _)| i)
        .collect();
    let longs: Vec<usize> = classes
        .iter()
        .enumerate()
        .filter(|(_, c)| c.len() >= 3)
        .map(|(i, _)| i)
        .collect();

    // C1: merge for free with the shared color.
    for &ci in &fixed {
        let j = classes[ci][0];
        set_crossing_color(&split, &mut final_colors, j, sigma[j]);
    }

    // Long cycles (p ≥ 3): one γ each; first dipath takes γ, rest keep σ.
    for &ci in &longs {
        let gamma = next_gamma;
        next_gamma += 1;
        gamma_of[ci] = Some(gamma);
        let class = &classes[ci];
        set_crossing_color(&split, &mut final_colors, class[0], gamma);
        for &j in &class[1..] {
            set_crossing_color(&split, &mut final_colors, j, sigma[j]);
        }
    }

    // C2: pair them up, one γ per pair; first dipath of the first class of
    // each pair takes γ, the other three keep σ.
    let mut leftover_c2: Option<usize> = None;
    let mut it = twos.chunks_exact(2);
    for pair in &mut it {
        let gamma = next_gamma;
        next_gamma += 1;
        gamma_of[pair[0]] = Some(gamma);
        gamma_of[pair[1]] = Some(gamma);
        let first = &classes[pair[0]];
        set_crossing_color(&split, &mut final_colors, first[0], gamma);
        set_crossing_color(&split, &mut final_colors, first[1], sigma[first[1]]);
        let second = &classes[pair[1]];
        for &j in second {
            set_crossing_color(&split, &mut final_colors, j, sigma[j]);
        }
    }
    if let [ci] = it.remainder() {
        leftover_c2 = Some(*ci);
    }

    if let Some(ci) = leftover_c2 {
        let class = &classes[ci]; // [j_a, j_b]
        let (ja, jb) = (class[0], class[1]);
        if let Some(&host) = longs.first() {
            // Piggyback on the host cycle's freed first color σ[host[0]]
            // and reuse its γ for patching.
            let freed = sigma[classes[host][0]];
            gamma_of[ci] = gamma_of[host];
            set_crossing_color(&split, &mut final_colors, ja, sigma[ja]);
            set_crossing_color(&split, &mut final_colors, jb, freed);
        } else {
            // Standalone: one γ of its own.
            let gamma = next_gamma;
            next_gamma += 1;
            gamma_of[ci] = Some(gamma);
            set_crossing_color(&split, &mut final_colors, ja, gamma);
            set_crossing_color(&split, &mut final_colors, jb, sigma[jb]);
        }
    }

    // 6. Patch pass: any non-crossing dipath now clashing with a merged one
    // is recolored — to the class's γ when that is safe (the duplicate-free
    // case, guaranteed by Facts 1–2), falling back to another free extra
    // color when duplicated dipaths make the γ unsafe.
    patch_conflicts(
        g,
        &padded,
        &split,
        &mut final_colors,
        &gamma_of,
        &class_of_crossing,
        &mut next_gamma,
    )?;

    let extra_colors = next_gamma - pi;
    // Drop the padding.
    let assignment = WavelengthAssignment::new(final_colors[..family.len()].to_vec());
    if let Some((p, q)) = assignment.first_violation(g, family) {
        return Err(CoreError::MergeConflict(p, q));
    }
    let within_bound = assignment.num_colors() <= bound;
    Ok(Theorem6Result {
        assignment,
        load: pi,
        bound,
        extra_colors,
        class_profile,
        within_bound,
    })
}

/// Re-pair σ/τ inside groups of identical crossing dipaths so that colors
/// appearing on both sides become fixed points of the palette permutation.
fn repair_identity_groups(
    padded: &DipathFamily,
    split: &SplitInstance,
    sigma: &mut [usize],
    tau: &mut [usize],
) {
    use std::collections::HashMap;
    let mut groups: HashMap<&[dagwave_graph::ArcId], Vec<usize>> = HashMap::new();
    for (j, c) in split.crossings.iter().enumerate() {
        groups
            .entry(padded.path(c.orig).arcs())
            .or_default()
            .push(j);
    }
    for members in groups.values() {
        if members.len() < 2 {
            continue;
        }
        let sset: Vec<usize> = members.iter().map(|&j| sigma[j]).collect();
        let tset: Vec<usize> = members.iter().map(|&j| tau[j]).collect();
        let t_lookup: std::collections::HashSet<usize> = tset.iter().copied().collect();
        // Fixed-point colors: present on both sides.
        let mut fixed: Vec<usize> = sset
            .iter()
            .copied()
            .filter(|c| t_lookup.contains(c))
            .collect();
        let mut rest_s: Vec<usize> = sset
            .iter()
            .copied()
            .filter(|c| !t_lookup.contains(c))
            .collect();
        let s_lookup: std::collections::HashSet<usize> = sset.iter().copied().collect();
        let mut rest_t: Vec<usize> = tset
            .iter()
            .copied()
            .filter(|c| !s_lookup.contains(c))
            .collect();
        debug_assert_eq!(rest_s.len(), rest_t.len());
        for &j in members {
            if let Some(c) = fixed.pop() {
                sigma[j] = c;
                tau[j] = c;
            } else {
                sigma[j] = rest_s.pop().expect("σ/τ counts match"); // lint: allow(no-panic): rest_s holds exactly the deficit counted above
                tau[j] = rest_t.pop().expect("σ/τ counts match"); // lint: allow(no-panic): rest_t holds exactly the deficit counted above
            }
        }
    }
}

/// One dipath through `(a, b)` and its two halves in the split instance.
#[derive(Clone, Debug)]
struct Crossing {
    /// Id in the padded original family.
    orig: PathId,
    /// `[x_k s]` id in the split family.
    prefix: PathId,
    /// `[t y_k]` id in the split family.
    suffix: PathId,
}

struct SplitInstance {
    graph: Digraph,
    family: DipathFamily,
    crossings: Vec<Crossing>,
    /// (original id, split id) for dipaths that avoid `(a, b)`.
    noncrossing: Vec<(PathId, PathId)>,
}

/// Build `G̃` and `P̃`. Arc ids are preserved: arc `i` of `g` maps to arc
/// `i` of `G̃` (with the split arc's slot reused by `(a, s)`), and `(t, b)`
/// is the extra last arc.
fn split_instance(g: &Digraph, padded: &DipathFamily, ab: ArcId) -> SplitInstance {
    let (a, b) = (g.tail(ab), g.head(ab));
    let mut tilde = Digraph::with_vertices(g.vertex_count());
    let s = tilde.add_vertex();
    let t = tilde.add_vertex();
    for (id, arc) in g.arcs() {
        if id == ab {
            tilde.add_arc(a, s);
        } else {
            tilde.add_arc(arc.tail, arc.head);
        }
    }
    let tb = tilde.add_arc(t, b);

    let mut family = DipathFamily::new();
    let mut crossings = Vec::new();
    let mut noncrossing = Vec::new();
    for (orig, p) in padded.iter() {
        match p.arc_position(ab) {
            None => {
                let q = Dipath::from_arcs(&tilde, p.arcs().to_vec())
                    .expect("id-preserving split keeps contiguity"); // lint: allow(no-panic): the id-preserving split keeps arcs consecutive
                noncrossing.push((orig, family.push(q)));
            }
            Some(kpos) => {
                let mut pre = p.arcs()[..kpos].to_vec();
                pre.push(ab); // slot of (a, s) in G̃
                let prefix = family
                    .push(Dipath::from_arcs(&tilde, pre).expect("prefix + (a,s) is contiguous")); // lint: allow(no-panic): prefix + (a,s) is consecutive by construction
                let mut suf = vec![tb];
                suf.extend_from_slice(&p.arcs()[kpos + 1..]);
                let suffix = family
                    .push(Dipath::from_arcs(&tilde, suf).expect("(t,b) + suffix is contiguous")); // lint: allow(no-panic): (t,b) + suffix is consecutive by construction
                crossings.push(Crossing {
                    orig,
                    prefix,
                    suffix,
                });
            }
        }
    }
    SplitInstance {
        graph: tilde,
        family,
        crossings,
        noncrossing,
    }
}

/// Decompose the palette permutation into cycles; each cycle is reported as
/// the list of *crossing indices* in traversal order (`σ` of each index
/// steps through the cycle's colors).
fn cycle_decomposition(perm: &[usize], index_of_sigma: &[usize]) -> Vec<Vec<usize>> {
    let n = perm.len();
    let mut seen = vec![false; n];
    let mut classes = Vec::new();
    for start in 0..n {
        if seen[start] || perm[start] == usize::MAX {
            continue;
        }
        let mut cycle = Vec::new();
        let mut c = start;
        loop {
            seen[c] = true;
            cycle.push(index_of_sigma[c]);
            c = perm[c];
            if c == start {
                break;
            }
        }
        classes.push(cycle);
    }
    classes
}

fn set_crossing_color(split: &SplitInstance, final_colors: &mut [usize], j: usize, color: usize) {
    let orig = split.crossings[j].orig;
    final_colors[orig.index()] = color;
}

/// Recolor every non-crossing dipath that clashes with a merged one.
///
/// The preferred rescue color is the clashing class's `γ` (always safe in
/// the duplicate-free setting by Facts 1–2). When duplicated dipaths make
/// the `γ` unsafe — the patched dipath already conflicts with something of
/// that color — the patch takes the first extra color that is safe against
/// its whole conflict neighborhood, allocating a fresh one if none is.
#[allow(clippy::too_many_arguments)]
fn patch_conflicts(
    g: &Digraph,
    padded: &DipathFamily,
    split: &SplitInstance,
    final_colors: &mut [usize],
    gamma_of: &[Option<usize>],
    class_of_crossing: &[usize],
    next_gamma: &mut usize,
) -> Result<(), CoreError> {
    // Arc buckets once, over the padded family in G.
    let mut buckets: Vec<Vec<PathId>> = vec![Vec::new(); g.arc_count()];
    for (id, p) in padded.iter() {
        for &a in p.arcs() {
            buckets[a.index()].push(id);
        }
    }
    // Which padded ids are merged crossings, and their class.
    let mut crossing_class = vec![usize::MAX; padded.len()];
    for (j, c) in split.crossings.iter().enumerate() {
        crossing_class[c.orig.index()] = class_of_crossing[j];
    }
    let neighbor_colors = |r: PathId, colors: &[usize]| -> std::collections::HashSet<usize> {
        let mut set = std::collections::HashSet::new();
        let mut seen = std::collections::HashSet::new();
        for &arc in padded.path(r).arcs() {
            for &q in &buckets[arc.index()] {
                if q != r && seen.insert(q) {
                    set.insert(colors[q.index()]);
                }
            }
        }
        set
    };
    // For every merged dipath, look at its conflicts; recolor clashing
    // non-crossing dipaths.
    for c in &split.crossings {
        let m = c.orig;
        let mc = final_colors[m.index()];
        let class = crossing_class[m.index()];
        for &arc in padded.path(m).arcs() {
            for &r in buckets[arc.index()].clone().iter() {
                if r == m || crossing_class[r.index()] != usize::MAX {
                    continue; // merged dipaths are pairwise distinct already
                }
                if final_colors[r.index()] != mc {
                    continue;
                }
                let forbidden = neighbor_colors(r, final_colors);
                let gamma = gamma_of[class].filter(|gc| !forbidden.contains(gc));
                let rescue = gamma.unwrap_or_else(|| {
                    // Duplicate-induced corner (Facts 1–2 assume distinct
                    // dipaths): any color safe against the whole conflict
                    // neighborhood works, and a palette color is free —
                    // scan everything before allocating a fresh extra.
                    let found = (0..*next_gamma).find(|c| !forbidden.contains(c));
                    found.unwrap_or_else(|| {
                        let fresh = *next_gamma;
                        *next_gamma += 1;
                        fresh
                    })
                });
                final_colors[r.index()] = rescue;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn path(g: &Digraph, route: &[usize]) -> Dipath {
        let route: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
        Dipath::from_vertices(g, &route).unwrap()
    }

    /// Figure 9's UPP-DAG: a1→b1, a2→b2, b1→{c1,c2}, b2→{c1,c2},
    /// c1→d1, c2→d2 plus the primed copies a'1, a'2, d'1, d'2 feeding the
    /// same b's and c's.
    fn havet_graph() -> Digraph {
        // 0:a1 1:a2 2:b1 3:b2 4:c1 5:c2 6:d1 7:d2 8:a'1 9:a'2 10:d'1 11:d'2
        from_edges(
            12,
            &[
                (0, 2),
                (1, 3),
                (8, 2),
                (9, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 6),
                (5, 7),
                (4, 10),
                (5, 11),
            ],
        )
    }

    /// Havet's 8 dipaths (Theorem 7): every arc carries exactly two of
    /// them; the a-arcs pair consecutive dipaths `{01, 23, 45, 67}`, the
    /// cd-arcs pair `{12, 34, 56, 70}` (together the C8), and the bc-arcs
    /// pair antipodal dipaths `{04, 15, 26, 37}` — the Wagner graph V8 with
    /// χ = 3 and α = 3.
    fn havet_family(g: &Digraph) -> DipathFamily {
        DipathFamily::from_paths(vec![
            path(g, &[0, 2, 4, 10]), // p0: a1 b1 c1 d'1
            path(g, &[0, 2, 5, 7]),  // p1: a1 b1 c2 d2
            path(g, &[1, 3, 5, 7]),  // p2: a2 b2 c2 d2
            path(g, &[1, 3, 4, 6]),  // p3: a2 b2 c1 d1
            path(g, &[8, 2, 4, 6]),  // p4: a'1 b1 c1 d1
            path(g, &[8, 2, 5, 11]), // p5: a'1 b1 c2 d'2
            path(g, &[9, 3, 5, 11]), // p6: a'2 b2 c2 d'2
            path(g, &[9, 3, 4, 10]), // p7: a'2 b2 c1 d'1
        ])
    }

    #[test]
    fn havet_graph_is_single_cycle_upp() {
        let g = havet_graph();
        assert!(dagwave_graph::pathcount::is_upp(&g));
        assert_eq!(internal::internal_cycle_count(&g), 1);
    }

    #[test]
    fn havet_family_has_load_two_and_three_colors() {
        let g = havet_graph();
        let f = havet_family(&g);
        assert_eq!(load::max_load(&g, &f), 2);
        let res = color_single_cycle_upp(&g, &f).unwrap();
        assert!(res.assignment.is_valid(&g, &f));
        assert_eq!(res.load, 2);
        assert_eq!(res.bound, 3);
        assert!(res.assignment.num_colors() <= 3);
        // Conflict graph is C8 + antipodal chords: chromatic number 3, so
        // the assignment must use exactly 3.
        assert_eq!(res.assignment.num_colors(), 3);
    }

    #[test]
    fn replicated_havet_is_valid_and_near_bound() {
        // Replicated families (Theorem 7's multisets) break the paper's
        // Facts 1–2, so the constructive merge may exceed ⌈4π/3⌉ by the
        // duplicate-rescue colors; validity is still guaranteed and the
        // overshoot is small. (The solver's weighted-coloring path
        // reproduces the exact ⌈8h/3⌉ for these instances.)
        let g = havet_graph();
        for h in [2usize, 3, 4] {
            let f = havet_family(&g).replicate(h);
            let pi = load::max_load(&g, &f);
            assert_eq!(pi, 2 * h);
            let res = color_single_cycle_upp(&g, &f).unwrap();
            assert!(res.assignment.is_valid(&g, &f), "h={h}");
            // Theorem 7's lower bound always holds: w ≥ ⌈8h/3⌉.
            assert!(res.assignment.num_colors() >= bounds::havet_wavelengths(h));
            // The overshoot past the theorem bound stays small (≤ π/2 slack
            // observed; asserted loosely to catch regressions).
            assert!(
                res.assignment.num_colors() <= bounds::theorem6_bound(pi) + pi / 2,
                "h={h}: {} far beyond bound {}",
                res.assignment.num_colors(),
                bounds::theorem6_bound(pi)
            );
        }
    }

    #[test]
    fn distinct_family_respects_bound() {
        // The h = 1 Havet family has pairwise-distinct dipaths: the
        // theorem's guarantee applies in full.
        let g = havet_graph();
        let f = havet_family(&g);
        let res = color_single_cycle_upp(&g, &f).unwrap();
        assert!(res.within_bound);
        assert!(res.assignment.num_colors() <= res.bound);
    }

    #[test]
    fn rejects_non_upp() {
        let g = from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let f = DipathFamily::new();
        assert!(matches!(
            color_single_cycle_upp(&g, &f),
            Err(CoreError::NotUpp(_, _))
        ));
    }

    #[test]
    fn rejects_wrong_cycle_count() {
        // A tree: zero internal cycles.
        let g = from_edges(3, &[(0, 1), (1, 2)]);
        let f = DipathFamily::new();
        assert!(matches!(
            color_single_cycle_upp(&g, &f),
            Err(CoreError::WrongInternalCycleCount(0))
        ));
    }

    #[test]
    fn rejects_cyclic_digraph() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::new();
        assert!(matches!(
            color_single_cycle_upp(&g, &f),
            Err(CoreError::NotADag(_))
        ));
    }

    #[test]
    fn empty_family_trivial() {
        let g = havet_graph();
        let f = DipathFamily::new();
        let res = color_single_cycle_upp(&g, &f).unwrap();
        assert_eq!(res.load, 0);
        assert!(res.assignment.is_empty());
    }

    #[test]
    fn family_avoiding_the_cycle() {
        // Dipaths that never touch the internal cycle still color fine.
        let g = havet_graph();
        let f = DipathFamily::from_paths(vec![path(&g, &[0, 2]), path(&g, &[4, 6])]);
        let res = color_single_cycle_upp(&g, &f).unwrap();
        assert!(res.assignment.is_valid(&g, &f));
        assert_eq!(res.load, 1);
        assert!(res.assignment.num_colors() <= res.bound);
    }

    #[test]
    fn class_profile_accounts_for_pi() {
        let g = havet_graph();
        let f = havet_family(&g).replicate(2);
        let res = color_single_cycle_upp(&g, &f).unwrap();
        let pi: usize = res
            .class_profile
            .iter()
            .enumerate()
            .map(|(p, &count)| p * count)
            .sum();
        assert_eq!(pi, res.load, "π = Σ p·|C_p|");
    }

    #[test]
    fn figure3_shape_on_upp_variant() {
        // An UPP single-cycle instance resembling Figure 3's five dipaths:
        // chain a→b→c→d→e with a second route b→m→d.
        let g = from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (5, 3), (4, 6)]);
        // b(1) → c(2) → d(3) and b(1) → m(5) → d(3): two dipaths 1→3 — not
        // UPP, so Theorem 6 must refuse.
        assert!(matches!(
            color_single_cycle_upp(&g, &DipathFamily::new()),
            Err(CoreError::NotUpp(_, _))
        ));
    }
}
