//! Incremental re-solve: a persistent [`Workspace`] with shard-level
//! caching and a mutation API.
//!
//! The one-shot entry points rebuild everything per call, but a production
//! RWA service sees *churn*: lightpaths arrive and depart while most of
//! the instance is unchanged. Because wavelength assignment decomposes
//! exactly over conflict-graph components (the decompose-solve-merge
//! invariant), a mutation can only affect the components it touches — a
//! removed dipath dirties its own component (which may split), an added
//! dipath dirties every component it shares an arc with (which it may
//! bridge) — and every other shard's cached coloring stays valid verbatim.
//!
//! A [`Workspace`] owns the instance (graph + an editable
//! [`PathFamily`] with stable ids), tracks the component partition
//! incrementally, and caches one solved [`Solution`] per shard. The
//! mutation API ([`Workspace::add_path`], [`Workspace::remove_path`],
//! [`Workspace::apply`] with [`Mutation`] batches) re-derives components
//! only over the dirty member pool
//! ([`dagwave_paths::conflict_components_among`], scoped to the dirty arc
//! buckets); [`Workspace::solution`] then re-solves only the unsolved
//! shards and re-merges with the shared normalized palette.
//!
//! Everything heavyweight is O(dirty), not O(instance): the family keeps an
//! incrementally-patched dense view ([`PathFamily::dense_view`]) so the
//! query path never deep-clones, the instance class is computed once (the
//! graph is immutable) and `π(G, P)` is maintained through a per-load
//! histogram patched at each arc-user edit, and each shard carries a
//! content fingerprint so a shard dropped and reconstituted with identical
//! dipaths (e.g. remove + re-add) adopts its old solve from a reuse pool
//! instead of recomputing — [`Resolve::shards_reused`] counts adoptions.
//!
//! The *query* side is O(dirty) too. Every refresh patches a persistent
//! [`ColorTable`] (structurally-shared `Arc` pages keyed by stable id)
//! with only the re-solved shards' colors, so [`Workspace::span`],
//! [`Workspace::color_of`], and [`Workspace::delta_since`] answer without
//! merging — the last returns exactly the `(PathId, color)` pairs that
//! changed since a client's [`Epoch`], the surface `dagwave-serve`'s
//! `QueryDelta` frames ride on. [`Workspace::solution`] remains the
//! bit-identity oracle, but now hands out `Arc<Solution>` snapshots: a
//! cache hit is a refcount bump, and the full merge runs only when a
//! snapshot is actually demanded.
//!
//! **Invariant:** after any mutation sequence, [`Workspace::solution`] is
//! bit-identical to a from-scratch [`SolveSession::solve`] on the mutated
//! instance (the live members in ascending stable-id order), at every
//! thread budget. This holds by construction, not by luck: the workspace
//! runs the *same* decompose gate ([`SolveSession`]'s plan), the same
//! per-shard solver, and the same merge as the one-shot path — only the
//! component scan and the already-solved shards are served from cache. The
//! [`Resolve`] record on the returned solution says how much was reused.
//!
//! ```
//! use dagwave_core::{DecomposePolicy, Mutation, SolverBuilder, Workspace};
//! use dagwave_graph::builder::from_edges;
//! use dagwave_graph::VertexId;
//! use dagwave_paths::{Dipath, DipathFamily};
//!
//! // Two arc-disjoint chains — two conflict components.
//! let g = from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
//! let v = |i| VertexId::from_index(i);
//! let p = |route: &[usize]| {
//!     let r: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
//!     Dipath::from_vertices(&g, &r).unwrap()
//! };
//! let family = DipathFamily::from_paths(vec![
//!     p(&[0, 1, 2]),
//!     p(&[1, 2]),
//!     p(&[3, 4, 5]),
//!     p(&[4, 5]),
//! ]);
//! let session = SolverBuilder::new()
//!     .decompose(DecomposePolicy::Always)
//!     .build();
//! let mut ws = Workspace::new(session, g.clone(), family.clone()).unwrap();
//! let first = ws.solution().unwrap();
//! assert_eq!(first.num_colors, 2);
//!
//! // Admit one more dipath on the second chain: only that shard recolors.
//! ws.apply([Mutation::Add(p(&[3, 4, 5]))]).unwrap();
//! let second = ws.solution().unwrap();
//! let resolve = second.resolve.unwrap();
//! assert_eq!(resolve.shards_reused, 1);
//! assert_eq!(resolve.shards_resolved, 1);
//! assert_eq!(second.num_colors, 3, "arc 4→5 now carries load 3");
//! ```

use crate::backend::InstanceContext;
use crate::colortable::ColorTable;
use crate::error::CoreError;
use crate::internal::DagClass;
use crate::solver::{merge_shards, Solution, SolveSession};
use dagwave_graph::{ArcId, Digraph};
use dagwave_paths::{conflict_components_among, Dipath, DipathFamily, PathFamily, PathId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Refresh generations retained for [`Workspace::delta_since`]: a client
/// further behind than this gets a full resync instead of a delta. Bounds
/// the delta log at ~64 × O(dirty) entries regardless of uptime.
const DELTA_RETAIN: usize = 64;

/// One instance mutation: admit or retire a dipath.
///
/// Batched through [`Workspace::apply`]; a batch is invalidation-minimal —
/// components are re-derived once for the whole batch, not per op.
#[derive(Clone, Debug)]
pub enum Mutation {
    /// Add this dipath to the family (it gets the smallest free stable id;
    /// see [`PathFamily::insert`]).
    Add(Dipath),
    /// Remove the live dipath with this stable id.
    Remove(PathId),
}

/// How an incremental re-solve was obtained: shards served from cache vs.
/// actually recomputed. Attached to [`Solution::resolve`] by
/// [`Workspace::solution`] (monolithic re-solves count as one shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Resolve {
    /// Shards whose cached coloring was reused verbatim.
    pub shards_reused: usize,
    /// Shards (or the single monolithic solve) recomputed this call.
    pub shards_resolved: usize,
}

/// A refresh generation of a [`Workspace`]: advances by one every time the
/// workspace folds pending mutations into its persistent color table.
/// Clients remember the epoch of their last sync and pass it to
/// [`Workspace::delta_since`] to receive only what changed since.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Epoch(pub u64);

/// The answer to a [`Workspace::delta_since`] query: the current epoch and
/// span, plus the changed colors since the client's epoch — O(changed),
/// never O(instance), unless a resync is needed.
///
/// When `full_resync` is true the client's epoch was unknown or too far
/// behind the retained delta log: `changes` then lists **every** live
/// `(id, color)` pair, `removed` is empty, and the client must drop any
/// state not re-listed. Replaying deltas in order reconstructs exactly the
/// color table of [`Workspace::solution`] — the bit-identity oracle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolutionDelta {
    /// The workspace epoch this delta brings the client up to.
    pub epoch: Epoch,
    /// The merged span (number of wavelengths) at that epoch.
    pub span: usize,
    /// `true` when `changes` is a complete snapshot, not a delta.
    pub full_resync: bool,
    /// Members whose color changed (or appeared) since the client's epoch,
    /// with their new colors; ascending stable id.
    pub changes: Vec<(PathId, u32)>,
    /// Members removed since the client's epoch; ascending stable id.
    pub removed: Vec<PathId>,
}

/// One retained refresh generation: what the refresh changed, for
/// [`Workspace::delta_since`] to replay.
#[derive(Clone, Debug)]
struct DeltaRecord {
    epoch: u64,
    changes: Vec<(PathId, u32)>,
    removed: Vec<PathId>,
}

/// Cumulative workspace counters since [`Workspace::new`], exposed by
/// [`Workspace::stats`] — the aggregate twin of the per-solve
/// [`Resolve`] record, so a service `Stats` endpoint (or a report row)
/// reads the totals directly instead of re-deriving them by summing
/// every [`Solution::resolve`] it ever saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Live dipaths in the current family.
    pub live_paths: usize,
    /// Conflict components tracked in the current state.
    pub shard_count: usize,
    /// `π(G, P)` of the current family (maintained per mutation, O(1)).
    pub max_load: usize,
    /// [`Workspace::solution`] cache misses — full recomputations run.
    pub recomputes: usize,
    /// Shards served from cache, summed over every recomputation
    /// (fingerprint-pool adoptions count here, exactly as they do in
    /// [`Resolve::shards_reused`]).
    pub shards_reused: usize,
    /// Shards (or monolithic solves) actually recomputed, summed over
    /// every recomputation.
    pub shards_resolved: usize,
    /// Distinct arc sequences held by the family's append-only interner
    /// (the arena never shrinks; see [`dagwave_paths::ArcListArena`]).
    pub interned_arc_lists: usize,
    /// Interner lookups answered by an existing allocation.
    pub intern_hits: u64,
    /// Interner lookups that stored a new allocation.
    pub intern_misses: u64,
    /// Current refresh generation ([`Workspace::epoch`]).
    pub epoch: u64,
    /// [`Workspace::delta_since`] queries served.
    pub delta_queries: u64,
    /// Delta queries that fell back to a full resync (client epoch unknown
    /// or older than the retained log).
    pub delta_resyncs: u64,
}

/// One tracked component: its live members (stable ids, ascending), the
/// shared handles of their dipaths, a content fingerprint, and, once
/// solved, the cached shard-local solution.
#[derive(Clone, Debug)]
struct CachedShard {
    /// Stable member ids, ascending.
    members: Vec<PathId>,
    /// The members' dipaths (shared handles, parallel to `members`) — kept
    /// so a dropped shard's content outlives the family mutation that
    /// dropped it, which is what lets the fingerprint reuse pool verify an
    /// exact content match instead of trusting a 64-bit hash.
    paths: Vec<Arc<Dipath>>,
    /// Hash of the member dipaths' arc sequences in canonical (ascending
    /// member id) order. Deliberately content-only — ids are excluded — so
    /// a shard whose membership came back under different stable ids but
    /// identical dipaths still matches: the shard-local solve depends only
    /// on content and order, never on the ids themselves.
    fingerprint: u64,
    /// The shard-local solve result; `None` while dirty. Colors are indexed
    /// by the member's *rank* within the shard, which removals elsewhere in
    /// the family never change — that is what makes the cache survive id
    /// compaction in the dense view.
    solved: Option<Result<Solution, CoreError>>,
    /// `true` once the persistent color table reflects this shard's solve
    /// (under its *current* member ids). Fresh and pool-adopted shards
    /// start unpatched — an adopted solve is content-identical but may sit
    /// under different stable ids than when it was banked.
    patched: bool,
}

/// A solved shard banked when a mutation dropped it: if a freshly derived
/// component has the same fingerprint *and* identical dipath contents, the
/// solve is adopted instead of redone (e.g. remove + re-add of the same
/// dipath reconstitutes its old shard verbatim).
#[derive(Clone, Debug)]
struct ReuseEntry {
    fingerprint: u64,
    paths: Vec<Arc<Dipath>>,
    solved: Result<Solution, CoreError>,
}

/// Hash of a shard's member dipath contents in canonical order — see
/// [`CachedShard::fingerprint`]. `DefaultHasher` with default keys is
/// deterministic, which keeps workspaces reproducible across runs.
fn shard_fingerprint(paths: &[Arc<Dipath>]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    paths.len().hash(&mut h);
    for p in paths {
        // Every dipath caches its own content fingerprint (computed once at
        // interning), so a shard fingerprint is O(members), not O(content).
        p.fingerprint().hash(&mut h);
    }
    h.finish()
}

/// Exact content equality between two shards' dipath lists. Pointer
/// equality short-circuits the shared-handle case, and because the family
/// interns every arc list through one arena, a remove + re-add
/// reconstitution hits the `ArcList` pointer check — O(members), no
/// content walk. The exact comparison underneath is what makes fingerprint
/// adoption safe against hash collisions.
fn same_paths(a: &[Arc<Dipath>], b: &[Arc<Dipath>]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| Arc::ptr_eq(x, y) || x.same_arcs(y))
}

/// A persistent solving surface over one mutable instance.
///
/// See the [module docs](self) for the caching model and the bit-identity
/// invariant. The workspace is deliberately *not* `Sync`-shared — it is the
/// single writer a service front-end funnels admissions/retirements
/// through; concurrency lives inside each re-solve (dirty shards still fan
/// out onto the rayon pool).
#[derive(Clone, Debug)]
pub struct Workspace {
    session: SolveSession,
    graph: Digraph,
    family: PathFamily,
    /// arc index → live stable path ids using that arc, ascending — the
    /// mutable arc→paths index (the editable twin of
    /// [`dagwave_paths::ArcIndex`]); `arc_users[a].len()` is arc `a`'s
    /// load, which is what lets the load be patched per mutation below.
    arc_users: Vec<Vec<u32>>,
    /// The component partition, canonical order (smallest member first).
    shards: Vec<CachedShard>,
    /// Cached merged snapshot of the current state (dropped on any
    /// mutation). Queries hand out clones of the `Arc` — a cache hit is a
    /// refcount bump, never an instance-sized copy.
    merged: Option<Arc<Solution>>,
    /// The [`Resolve`] of the last refresh; stamped onto the snapshot when
    /// it is materialized.
    last_resolve: Resolve,
    /// The persistent merged color table, keyed by stable id and patched
    /// per refresh — the O(dirty) query substrate behind
    /// [`Workspace::span`] / [`Workspace::color_of`] /
    /// [`Workspace::delta_since`].
    table: ColorTable,
    /// The merged span at the current epoch (max over shard spans,
    /// maintained per refresh).
    current_span: usize,
    /// Refresh generation: bumped once per refresh that folded mutations
    /// into the table.
    epoch: u64,
    /// The last [`DELTA_RETAIN`] refresh generations, oldest first.
    deltas: VecDeque<DeltaRecord>,
    /// Stable ids removed since the last refresh and not re-occupied by a
    /// later addition — the next refresh clears their table slots.
    pending_removed: BTreeSet<PathId>,
    /// `true` once the table/span/epoch reflect every mutation applied so
    /// far (cleared by [`Workspace::apply`], set by the refresh).
    refreshed: bool,
    /// The error the last refresh surfaced, if any — replayed to every
    /// query until a mutation invalidates it, exactly as the merged cache
    /// used to replay cached errors.
    refresh_error: Option<CoreError>,
    /// The instance class, computed once at open: mutations never touch the
    /// graph, and the class depends on the graph alone.
    class: DagClass,
    /// `load_hist[l]` = number of arcs currently carrying load `l` (`l ≥
    /// 1`) — patched on every arc-user insert/remove so `π(G, P)` is
    /// maintained, never rescanned.
    load_hist: Vec<u32>,
    /// `π(G, P)` of the current family (the top of `load_hist`).
    max_load: usize,
    /// Solved shards dropped by mutations since the last recompute, keyed
    /// by content fingerprint — drained on adoption, cleared per recompute.
    reuse_pool: Vec<ReuseEntry>,
    /// Cumulative counters behind [`Workspace::stats`]: recomputations run
    /// and reused/resolved shard totals (accumulated only on cache misses,
    /// so repeated queries of an unchanged workspace add nothing).
    recomputes: usize,
    total_reused: usize,
    total_resolved: usize,
    delta_queries: u64,
    delta_resyncs: u64,
}

impl Workspace {
    /// Open a workspace over an instance, validating the DAG precondition
    /// once (mutations never touch the graph, so it never re-fails).
    ///
    /// The initial family is adopted as slots `0..len` of the editable
    /// [`PathFamily`]; nothing is solved until the first
    /// [`Workspace::solution`] call.
    pub fn new(
        session: SolveSession,
        graph: Digraph,
        family: DipathFamily,
    ) -> Result<Self, CoreError> {
        // Same rejection the one-shot path performs, hoisted to open time;
        // the class and load it computes seed the patched caches below.
        let ctx = InstanceContext::new(&graph, &family, session.request())?;
        let class = ctx.class;
        let max_load = ctx.load;
        drop(ctx);
        let editable = PathFamily::from_family(&family);
        let mut arc_users: Vec<Vec<u32>> = vec![Vec::new(); graph.arc_count()];
        for (id, p) in editable.iter() {
            for &a in p.arcs() {
                arc_users[a.index()].push(id.0);
            }
        }
        let mut load_hist = vec![0u32; max_load + 1];
        for users in &arc_users {
            if !users.is_empty() {
                load_hist[users.len()] += 1;
            }
        }
        let shards = conflict_components_among(editable.iter())
            .into_iter()
            .map(|members| {
                let paths: Vec<Arc<Dipath>> = members
                    .iter()
                    .map(|&id| {
                        editable
                            .get_shared(id)
                            .expect("component members are live") // lint: allow(no-panic): components are derived from the live family on the previous line
                            .clone()
                    })
                    .collect();
                CachedShard {
                    fingerprint: shard_fingerprint(&paths),
                    members,
                    paths,
                    solved: None,
                    patched: false,
                }
            })
            .collect();
        Ok(Workspace {
            session,
            graph,
            family: editable,
            arc_users,
            shards,
            merged: None,
            last_resolve: Resolve::default(),
            class,
            load_hist,
            max_load,
            table: ColorTable::new(),
            current_span: 0,
            epoch: 0,
            deltas: VecDeque::new(),
            pending_removed: BTreeSet::new(),
            refreshed: false,
            refresh_error: None,
            reuse_pool: Vec::new(),
            recomputes: 0,
            total_reused: 0,
            total_resolved: 0,
            delta_queries: 0,
            delta_resyncs: 0,
        })
    }

    /// The session this workspace solves under.
    pub fn session(&self) -> &SolveSession {
        &self.session
    }

    /// The (immutable) host graph.
    pub fn graph(&self) -> &Digraph {
        &self.graph
    }

    /// The editable family: live members under their stable ids.
    pub fn family(&self) -> &PathFamily {
        &self.family
    }

    /// Number of tracked conflict components in the current state.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current component partition: stable member ids per shard, in
    /// canonical order (ascending within a shard, shards by smallest
    /// member) — without solving anything.
    pub fn components(&self) -> Vec<Vec<PathId>> {
        self.shards.iter().map(|s| s.members.clone()).collect()
    }

    /// `π(G, P)` of the current family — the universal lower bound on the
    /// span, maintained per mutation through the load histogram (O(1), no
    /// rescan).
    pub fn max_load(&self) -> usize {
        self.max_load
    }

    /// Number of live dipaths currently using arc `a` (its load). Admission
    /// policies project the post-admit load from this: adding a dipath
    /// raises every one of its arcs' loads by one.
    pub fn arc_load(&self, a: ArcId) -> usize {
        self.arc_users.get(a.index()).map_or(0, |users| users.len())
    }

    /// Cumulative counters since [`Workspace::new`]: live paths, shard
    /// count, current load, and the reused/resolved shard totals summed
    /// over every recomputation — see [`WorkspaceStats`].
    pub fn stats(&self) -> WorkspaceStats {
        let arena = self.family.arena_stats();
        WorkspaceStats {
            live_paths: self.family.len(),
            shard_count: self.shards.len(),
            max_load: self.max_load,
            recomputes: self.recomputes,
            shards_reused: self.total_reused,
            shards_resolved: self.total_resolved,
            interned_arc_lists: arena.lists,
            intern_hits: arena.hits,
            intern_misses: arena.misses,
            epoch: self.epoch,
            delta_queries: self.delta_queries,
            delta_resyncs: self.delta_resyncs,
        }
    }

    /// The index [`Workspace::solution`]'s assignment uses for the live
    /// member `id` in the current state: its rank among the live stable
    /// ids (the dense view skips tombstones). `None` when `id` is not
    /// live.
    pub fn dense_index_of(&self, id: PathId) -> Option<usize> {
        self.family.dense_rank(id)
    }

    /// Admit one dipath. Returns its stable id.
    pub fn add_path(&mut self, p: Dipath) -> Result<PathId, CoreError> {
        let mut added = self.apply([Mutation::Add(p)])?;
        Ok(added.pop().expect("one add yields one id")) // lint: allow(no-panic): apply() of one Add returns exactly one id
    }

    /// Retire the dipath with this stable id.
    pub fn remove_path(&mut self, id: PathId) -> Result<(), CoreError> {
        self.apply([Mutation::Remove(id)]).map(|_| ())
    }

    /// Apply a mutation batch atomically with one invalidation pass:
    /// the components touched by any removal or addition are re-derived
    /// over the dirty member pool only, every other shard keeps its cached
    /// solution. Returns the stable ids assigned to the batch's additions,
    /// in batch order (an addition the same batch later removes still
    /// reports its id).
    ///
    /// A removal may name an id assigned by an earlier addition *in the
    /// same batch* — id assignment is deterministic (smallest free slot),
    /// so script generators can predict it (see
    /// [`PathFamily::next_id`]).
    ///
    /// On error (unknown id, dipath invalid on this graph) the workspace is
    /// left exactly as before the batch — validation happens up front,
    /// before any state changes.
    pub fn apply(
        &mut self,
        batch: impl IntoIterator<Item = Mutation>,
    ) -> Result<Vec<PathId>, CoreError> {
        let batch: Vec<Mutation> = batch.into_iter().collect();
        // ---- Validate the whole batch against a simulated id state (the
        // exact free-list discipline of `PathFamily`), so a failing batch
        // mutates nothing. The simulation is delta-based — the family's
        // tombstones plus this batch's own removals/additions — so a batch
        // costs O((tombstones + batch) log), never O(live): an id is live
        // iff it was added by an earlier op in the batch, or is live in the
        // family and not removed by an earlier op.
        let mut free: BTreeSet<u32> = self.family.free_slots().into_iter().collect();
        let mut slots = self.family.slot_count() as u32;
        let mut removed_sim: BTreeSet<PathId> = BTreeSet::new();
        let mut added_sim: BTreeSet<PathId> = BTreeSet::new();
        for m in &batch {
            match m {
                Mutation::Remove(id) => {
                    if added_sim.remove(id) {
                        // Un-adds a batch addition; its slot frees again.
                    } else if !(self.family.contains(*id) && removed_sim.insert(*id)) {
                        // Not family-live, or already removed this batch.
                        return Err(CoreError::UnknownPath(*id));
                    }
                    free.insert(id.0);
                }
                Mutation::Add(p) => {
                    // Re-derive the dipath against *this* graph: catches
                    // out-of-range arcs and non-contiguous sequences from
                    // paths built elsewhere. (Bounds first — the contiguity
                    // check indexes the graph's arc tables.)
                    if let Some(&a) = p
                        .arcs()
                        .iter()
                        .find(|a| a.index() >= self.graph.arc_count())
                    {
                        return Err(CoreError::InvalidPath(format!(
                            "arc {a} out of range for this graph ({} arcs)",
                            self.graph.arc_count()
                        )));
                    }
                    Dipath::from_arcs(&self.graph, p.arcs().to_vec())
                        .map_err(|e| CoreError::InvalidPath(e.to_string()))?;
                    // Mirror the insert: smallest free slot, else growth.
                    let id = match free.iter().next().copied() {
                        Some(slot) => {
                            free.remove(&slot);
                            PathId(slot)
                        }
                        None => {
                            slots += 1;
                            PathId(slots - 1)
                        }
                    };
                    added_sim.insert(id);
                }
            }
        }

        // ---- Execute, accumulating the dirty shard set and the added ids.
        let mut dirty_shards: BTreeSet<usize> = BTreeSet::new();
        let mut added: Vec<PathId> = Vec::new();
        for m in batch {
            match m {
                Mutation::Remove(id) => {
                    let p = self.family.remove(id).expect("validated live"); // lint: allow(no-panic): the validation pass above confirmed the id is live
                    self.pending_removed.insert(id);
                    if let Some(s) = self.shard_containing(id) {
                        dirty_shards.insert(s);
                    }
                    for &a in p.arcs() {
                        let users = &mut self.arc_users[a.index()];
                        if let Ok(pos) = users.binary_search(&id.0) {
                            users.remove(pos);
                            let new_load = users.len();
                            self.note_load_dec(new_load + 1);
                        }
                    }
                }
                Mutation::Add(p) => {
                    // Every component sharing an arc with the new dipath is
                    // dirtied — the addition may bridge several. Dedup the
                    // touched users first: a congested arc lists many
                    // dipaths, and each shard lookup is a scan.
                    let touched: BTreeSet<u32> = p
                        .arcs()
                        .iter()
                        .flat_map(|&a| self.arc_users[a.index()].iter().copied())
                        .collect();
                    for &user in &touched {
                        if let Some(s) = self.shard_containing(PathId(user)) {
                            dirty_shards.insert(s);
                        }
                    }
                    let id = self.family.insert(p);
                    // A reused slot is live again: its pending removal (from
                    // this batch or an earlier one) is superseded — the next
                    // refresh reports a color change, not a removal.
                    self.pending_removed.remove(&id);
                    let p = self
                        .family
                        .get_shared(id)
                        .expect("just inserted") // lint: allow(no-panic): the id was inserted on the previous line
                        .clone();
                    for &a in p.arcs() {
                        let users = &mut self.arc_users[a.index()];
                        if let Err(pos) = users.binary_search(&id.0) {
                            users.insert(pos, id.0);
                            let new_load = users.len();
                            self.note_load_inc(new_load);
                        }
                    }
                    added.push(id);
                }
            }
        }

        // ---- Re-derive components over the dirty pool only: members of
        // dirtied shards that are still live, plus the additions (some of
        // which may already be counted via a dirtied shard, or removed
        // again by the same batch).
        let mut pool: BTreeSet<PathId> = added
            .iter()
            .copied()
            .filter(|&id| self.family.contains(id))
            .collect();
        for &s in &dirty_shards {
            pool.extend(
                self.shards[s]
                    .members
                    .iter()
                    .copied()
                    .filter(|&id| self.family.contains(id)),
            );
        }
        // Additions may have landed in a reused slot of a dirtied shard;
        // the BTreeSet above already deduplicates. Drop the dirty shards,
        // banking the solved ones in the reuse pool — a later batch (or this
        // one) may reconstitute a shard with identical content, and its
        // solve is then adopted instead of redone…
        for &s in dirty_shards.iter().rev() {
            let shard = self.shards.remove(s);
            if let Some(solved) = shard.solved {
                self.reuse_pool.push(ReuseEntry {
                    fingerprint: shard.fingerprint,
                    paths: shard.paths,
                    solved,
                });
            }
        }
        // …and re-insert the freshly derived components, checking each
        // against the pool (fingerprint gate, then exact content equality —
        // a hash collision can never adopt a wrong solve).
        let fresh = conflict_components_among(
            pool.iter()
                .map(|&id| (id, self.family.get(id).expect("pool is live"))), // lint: allow(no-panic): shard pools only hold live ids by construction
        );
        let family = &self.family;
        let reuse_pool = &mut self.reuse_pool;
        let fresh_shards: Vec<CachedShard> = fresh
            .into_iter()
            .map(|members| {
                let paths: Vec<Arc<Dipath>> = members
                    .iter()
                    .map(|&id| {
                        family
                            .get_shared(id)
                            .expect("pool is live") // lint: allow(no-panic): shard pools only hold live ids by construction
                            .clone()
                    })
                    .collect();
                let fingerprint = shard_fingerprint(&paths);
                let solved = reuse_pool
                    .iter()
                    .position(|e| e.fingerprint == fingerprint && same_paths(&paths, &e.paths))
                    .map(|i| reuse_pool.swap_remove(i).solved);
                CachedShard {
                    members,
                    paths,
                    fingerprint,
                    solved,
                    // Adopted solves included: the banked solve is content-
                    // identical, but the reconstituted shard may sit under
                    // different stable ids, so the table patch must re-run.
                    patched: false,
                }
            })
            .collect();
        self.shards.extend(fresh_shards);
        // Canonical shard order: by smallest (stable) member. Dense ranks
        // are monotone in stable ids, so this is exactly the order the
        // from-scratch component scan would produce.
        self.shards.sort_by_key(|s| s.members[0]);
        self.merged = None;
        self.refreshed = false;
        self.refresh_error = None;
        Ok(added)
    }

    /// The current solution, recomputing only what the mutations since the
    /// last call dirtied. Bit-identical to
    /// `self.session().solve(graph, dense_family)` on the current live
    /// members (ascending stable-id order), with [`Solution::resolve`]
    /// additionally recording the cache split of the refresh that produced
    /// it.
    ///
    /// Returns a shared snapshot: repeated calls without intervening
    /// mutations hand out the *same* `Arc` (a refcount bump — the
    /// instance-sized clone per cache hit is gone). The delta surface
    /// ([`Workspace::span`] / [`Workspace::color_of`] /
    /// [`Workspace::delta_since`]) answers without materializing a
    /// snapshot at all; this method stays the bit-identity oracle.
    pub fn solution(&mut self) -> Result<Arc<Solution>, CoreError> {
        self.refresh()?;
        if self.merged.is_none() {
            let sol = self.materialize();
            self.merged = Some(Arc::new(sol));
        }
        // lint: allow(no-panic): the branch above just populated self.merged
        Ok(Arc::clone(self.merged.as_ref().expect("just materialized")))
    }

    /// The merged span (number of wavelengths) of the current state —
    /// O(dirty): refreshes the per-shard caches if mutations are pending,
    /// then reads the maintained maximum without merging anything.
    pub fn span(&mut self) -> Result<usize, CoreError> {
        self.refresh()?;
        Ok(self.current_span)
    }

    /// The merged color of live member `id` — O(dirty) for the refresh,
    /// then O(1) from the persistent table. `None` when `id` is not live.
    /// Agrees exactly with [`Workspace::solution`]'s assignment at the
    /// member's dense rank.
    pub fn color_of(&mut self, id: PathId) -> Result<Option<u32>, CoreError> {
        self.refresh()?;
        if !self.family.contains(id) {
            return Ok(None);
        }
        Ok(self.table.get(id.index()))
    }

    /// The current refresh generation, without refreshing — advances once
    /// per refresh that folded mutations into the color table, so a just-
    /// mutated workspace still reports the epoch of its last refresh.
    pub fn epoch(&self) -> Epoch {
        Epoch(self.epoch)
    }

    /// Everything that changed since the client's `since` epoch — the
    /// O(changed) query the serve layer's `QueryDelta` frames ride on.
    ///
    /// Replaying the returned [`SolutionDelta`]s in epoch order (apply
    /// `changes`, drop `removed`, replace wholesale on `full_resync`)
    /// reconstructs exactly the color table of [`Workspace::solution`].
    /// The log retains `DELTA_RETAIN` (64) generations; older (or
    /// unknown, including future) epochs get a full resync.
    pub fn delta_since(&mut self, since: Epoch) -> Result<SolutionDelta, CoreError> {
        self.refresh()?;
        self.delta_queries += 1;
        let epoch = Epoch(self.epoch);
        let span = self.current_span;
        if since.0 == self.epoch {
            return Ok(SolutionDelta {
                epoch,
                span,
                full_resync: false,
                changes: Vec::new(),
                removed: Vec::new(),
            });
        }
        let covered = since.0 < self.epoch
            && self
                .deltas
                .front()
                .is_some_and(|oldest| oldest.epoch <= since.0 + 1);
        if !covered {
            self.delta_resyncs += 1;
            let changes = self
                .family
                .dense_ids()
                .iter()
                .map(|&id| {
                    let color = self
                        .table
                        .get(id.index())
                        .expect("refreshed table covers every live member"); // lint: allow(no-panic): refresh() patched every live member above
                    (id, color)
                })
                .collect();
            return Ok(SolutionDelta {
                epoch,
                span,
                full_resync: true,
                changes,
                removed: Vec::new(),
            });
        }
        // Coalesce the covered generations, newest writer wins per id: a
        // member changed then removed reports only the removal, a removal
        // whose slot was re-added reports only the new color.
        let mut merged: BTreeMap<PathId, Option<u32>> = BTreeMap::new();
        for rec in self.deltas.iter().filter(|r| r.epoch > since.0) {
            for &(id, color) in &rec.changes {
                merged.insert(id, Some(color));
            }
            for &id in &rec.removed {
                merged.insert(id, None);
            }
        }
        let mut changes = Vec::new();
        let mut removed = Vec::new();
        for (id, color) in merged {
            match color {
                Some(c) => changes.push((id, c)),
                None => removed.push(id),
            }
        }
        Ok(SolutionDelta {
            epoch,
            span,
            full_resync: false,
            changes,
            removed,
        })
    }

    /// A snapshot of the persistent merged color table at the current
    /// epoch (refreshing first). O(pages) pointer copies; consecutive
    /// snapshots share every page no refresh in between touched.
    pub fn color_table(&mut self) -> Result<ColorTable, CoreError> {
        self.refresh()?;
        Ok(self.table.clone())
    }

    /// Fold every pending mutation into the per-shard caches, the
    /// persistent color table, the span, and the delta log — O(dirty).
    /// Idempotent until the next mutation; every query path calls it
    /// first.
    fn refresh(&mut self) -> Result<(), CoreError> {
        if self.refreshed {
            return match &self.refresh_error {
                Some(e) => Err(e.clone()),
                None => Ok(()),
            };
        }
        self.refreshed = true;
        self.recomputes += 1;
        // Whatever the pool still holds was not reconstituted by the
        // mutations since the last refresh — drop it so the pool's size
        // stays bounded by the shards dropped between consecutive solves.
        self.reuse_pool.clear();

        // Borrow-heavy stage: plan + dirty-shard solving. Scoped so the
        // dense-view and context borrows end before the table is patched.
        let mono: Option<Result<Solution, CoreError>> = {
            // The family's incrementally-patched dense view, plus the class
            // and load maintained per mutation — nothing rescans the
            // instance.
            let dense = self.family.dense_view();
            let ctx = InstanceContext::from_parts(
                &self.graph,
                dense,
                self.class,
                self.max_load,
                self.session.request(),
            );
            // Stable id → dense rank as a flat table (one pass over the
            // live ids): the plan and the solve translate every shard
            // member, and a table lookup beats a per-member binary search
            // on big instances.
            let mut rank_of: Vec<u32> = vec![u32::MAX; self.family.slot_count()];
            for (rank, &id) in self.family.dense_ids().iter().enumerate() {
                rank_of[id.index()] = rank as u32;
            }
            let to_dense = move |members: &[PathId]| -> Vec<PathId> {
                members
                    .iter()
                    .map(|&id| {
                        let rank = rank_of[id.index()];
                        debug_assert_ne!(rank, u32::MAX, "shard members are live");
                        PathId(rank)
                    })
                    .collect()
            };

            // The shared decompose gate, fed by the cached component
            // partition instead of a from-scratch scan.
            let shards_ref = &self.shards;
            let plan = self.session.decomposition_plan_with(&ctx, || {
                shards_ref.iter().map(|s| to_dense(&s.members)).collect()
            });
            if plan.is_none() {
                // Monolithic path (small instance, no split, or the
                // Theorem-1 fast-path skip): same dispatch as one-shot.
                self.last_resolve = Resolve {
                    shards_reused: 0,
                    shards_resolved: 1,
                };
                self.total_resolved += 1;
                Some(self.session.dispatch(&ctx))
            } else {
                // Solve only the dirty shards, concurrently, through the
                // same per-shard engine as the one-shot decomposed path.
                let shard_session = self.session.shard_session();
                let dirty: Vec<usize> = (0..self.shards.len())
                    .filter(|&i| self.shards[i].solved.is_none())
                    .collect();
                let dirty_components: Vec<Vec<PathId>> = dirty
                    .iter()
                    .map(|&i| to_dense(&self.shards[i].members))
                    .collect();
                let results = shard_session.solve_components(&self.graph, dense, &dirty_components);
                for (&i, result) in dirty.iter().zip(results) {
                    // Cache the shard-local solution only — the dense ids
                    // it was solved under are recomputed per merge, so
                    // later removals elsewhere cannot stale the cache.
                    self.shards[i].solved = Some(result.map(|(_, sol)| sol));
                }
                self.last_resolve = Resolve {
                    shards_reused: self.shards.len() - dirty.len(),
                    shards_resolved: dirty.len(),
                };
                self.total_reused += self.shards.len() - dirty.len();
                self.total_resolved += dirty.len();
                None
            }
        };

        match mono {
            Some(Ok(mut sol)) => {
                sol.resolve = Some(self.last_resolve);
                self.patch_from_full(&sol);
                // The table now holds the *monolithic* coloring, which a
                // later per-shard normalization may disagree with — no
                // shard's entries are trustworthy as shard-normalized.
                for s in &mut self.shards {
                    s.patched = false;
                }
                self.merged = Some(Arc::new(sol));
                Ok(())
            }
            Some(Err(e)) => {
                self.refresh_error = Some(e.clone());
                Err(e)
            }
            None => self.patch_from_shards(),
        }
    }

    /// Patch the persistent table from every shard it does not yet
    /// reflect, normalizing each shard's palette by first appearance —
    /// byte-for-byte the rule [`merge_shards`] applies, and because that
    /// normalization is *per shard* (it never looks across shards), a
    /// clean shard's table entries stay valid verbatim.
    fn patch_from_shards(&mut self) -> Result<(), CoreError> {
        // First error in canonical shard order wins — same rule as the
        // merge. The table, span, epoch, and delta log stay untouched; the
        // error replays to every query until a mutation clears it.
        for shard in &self.shards {
            if let Some(Err(e)) = &shard.solved {
                let e = e.clone();
                self.refresh_error = Some(e.clone());
                return Err(e);
            }
        }
        let mut changes: Vec<(PathId, u32)> = Vec::new();
        let mut palette: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        let mut span = 0usize;
        for shard in self.shards.iter_mut() {
            let sol = match &shard.solved {
                Some(Ok(sol)) => sol,
                // lint: allow(no-panic): refresh() solved every shard, and the error scan above returned on failures
                _ => unreachable!("refresh solved every shard"),
            };
            span = span.max(sol.num_colors);
            if shard.patched {
                continue;
            }
            palette.clear();
            for (local, &orig) in shard.members.iter().enumerate() {
                let raw = sol.assignment.color(PathId::from_index(local));
                let next = palette.len() as u32;
                let color = *palette.entry(raw).or_insert(next);
                if self.table.get(orig.index()) != Some(color) {
                    self.table.set(orig.index(), color);
                    changes.push((orig, color));
                }
            }
            shard.patched = true;
        }
        let removed = self.drain_removed();
        self.current_span = span;
        self.record_delta(changes, removed);
        Ok(())
    }

    /// Monolithic twin of [`Workspace::patch_from_shards`]: diff the full
    /// dispatch solution against the table (O(live) — the monolithic solve
    /// was already O(live), so the diff adds no asymptotic cost).
    fn patch_from_full(&mut self, sol: &Solution) {
        let mut changes: Vec<(PathId, u32)> = Vec::new();
        for (rank, &id) in self.family.dense_ids().iter().enumerate() {
            let color = sol.assignment.color(PathId::from_index(rank)) as u32;
            if self.table.get(id.index()) != Some(color) {
                self.table.set(id.index(), color);
                changes.push((id, color));
            }
        }
        let removed = self.drain_removed();
        self.current_span = sol.num_colors;
        self.record_delta(changes, removed);
    }

    /// Clear the table slots of members removed since the last refresh
    /// (skipping slots a later addition re-occupied — those surface as
    /// changes instead) and report which ids actually left the table.
    fn drain_removed(&mut self) -> Vec<PathId> {
        let pending = std::mem::take(&mut self.pending_removed);
        let mut removed = Vec::new();
        for id in pending {
            if !self.family.contains(id) && self.table.get(id.index()).is_some() {
                self.table.clear(id.index());
                removed.push(id);
            }
        }
        removed
    }

    /// Advance the epoch and append its delta record, trimming the log to
    /// [`DELTA_RETAIN`] generations.
    fn record_delta(&mut self, changes: Vec<(PathId, u32)>, removed: Vec<PathId>) {
        self.epoch += 1;
        self.deltas.push_back(DeltaRecord {
            epoch: self.epoch,
            changes,
            removed,
        });
        while self.deltas.len() > DELTA_RETAIN {
            self.deltas.pop_front();
        }
    }

    /// Merge the (refreshed, all-solved) shard caches into a full
    /// [`Solution`] — the lazy half behind a [`Workspace::solution`] cache
    /// miss; the delta surface never runs this. Only the sharded refresh
    /// path lands here (the monolithic path caches its snapshot directly).
    fn materialize(&mut self) -> Solution {
        let dense = self.family.dense_view();
        let ctx = InstanceContext::from_parts(
            &self.graph,
            dense,
            self.class,
            self.max_load,
            self.session.request(),
        );
        let mut rank_of: Vec<u32> = vec![u32::MAX; self.family.slot_count()];
        for (rank, &id) in self.family.dense_ids().iter().enumerate() {
            rank_of[id.index()] = rank as u32;
        }
        // Merge every shard (cached + fresh) in canonical order — the same
        // merge as the one-shot path, by reference: a re-merge never deep-
        // clones the clean shards' solutions.
        let shards: Vec<(Vec<PathId>, &Solution)> = self
            .shards
            .iter()
            .map(|shard| {
                let members = shard
                    .members
                    .iter()
                    .map(|&id| PathId(rank_of[id.index()]))
                    .collect();
                match shard.solved.as_ref() {
                    Some(Ok(sol)) => (members, sol),
                    // lint: allow(no-panic): refresh() solved every shard and surfaced any error before this runs
                    _ => unreachable!("refresh solved every shard"),
                }
            })
            .collect();
        let mut sol = merge_shards(&ctx, shards);
        sol.resolve = Some(self.last_resolve);
        sol
    }

    /// An arc's load just rose to `new_load`: move it between histogram
    /// buckets and raise `max_load` if it set a new top. O(1).
    fn note_load_inc(&mut self, new_load: usize) {
        if new_load > 1 {
            self.load_hist[new_load - 1] -= 1;
        }
        if new_load >= self.load_hist.len() {
            self.load_hist.resize(new_load + 1, 0);
        }
        self.load_hist[new_load] += 1;
        self.max_load = self.max_load.max(new_load);
    }

    /// An arc's load just fell from `old_load`: move it between histogram
    /// buckets and walk `max_load` down past emptied buckets. Amortized
    /// O(1) — the walk only retraces ground previous increments covered.
    fn note_load_dec(&mut self, old_load: usize) {
        self.load_hist[old_load] -= 1;
        if old_load > 1 {
            self.load_hist[old_load - 1] += 1;
        }
        while self.max_load > 0 && self.load_hist[self.max_load] == 0 {
            self.max_load -= 1;
        }
    }

    /// Index of the shard whose member list contains `id`.
    fn shard_containing(&self, id: PathId) -> Option<usize> {
        self.shards
            .iter()
            .position(|s| s.members.binary_search(&id).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::DecomposePolicy;
    use crate::solver::SolverBuilder;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn path(g: &Digraph, route: &[usize]) -> Dipath {
        let route: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
        Dipath::from_vertices(g, &route).unwrap()
    }

    /// Two arc-disjoint chains (0→1→2 and 3→4→5), two paths each.
    fn two_chain_instance() -> (Digraph, DipathFamily) {
        let g = from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[1, 2]),
            path(&g, &[3, 4, 5]),
            path(&g, &[4, 5]),
        ]);
        (g, f)
    }

    fn sharded_session() -> SolveSession {
        SolverBuilder::new()
            .decompose(DecomposePolicy::Always)
            .build()
    }

    /// From-scratch reference on the workspace's current live members.
    fn from_scratch(ws: &Workspace) -> Result<Solution, CoreError> {
        let (dense, _) = ws.family().to_dense();
        ws.session().solve(ws.graph(), &dense)
    }

    fn assert_matches_scratch(ws: &mut Workspace) {
        let incremental = ws.solution();
        let scratch = from_scratch(ws);
        match (incremental, scratch) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.assignment.colors(), b.assignment.colors());
                assert_eq!(a.num_colors, b.num_colors);
                assert_eq!(a.strategy, b.strategy);
                assert_eq!(a.optimal, b.optimal);
                assert_eq!(a.attempts, b.attempts);
                match (&a.decomposition, &b.decomposition) {
                    (Some(da), Some(db)) => {
                        assert_eq!(da.shard_count(), db.shard_count());
                        for (sa, sb) in da.shards.iter().zip(&db.shards) {
                            assert_eq!(sa.members, sb.members);
                            assert_eq!(sa.num_colors, sb.num_colors);
                            assert_eq!(sa.strategy, sb.strategy);
                        }
                    }
                    (None, None) => {}
                    other => panic!("decomposition presence diverged: {other:?}"),
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            other => panic!("incremental vs from-scratch diverged: {other:?}"),
        }
    }

    #[test]
    fn fresh_workspace_matches_from_scratch() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g, f).unwrap();
        assert_eq!(ws.shard_count(), 2);
        let sol = ws.solution().unwrap();
        let r = sol.resolve.unwrap();
        assert_eq!(r.shards_resolved, 2, "first solve computes everything");
        assert_eq!(r.shards_reused, 0);
        assert_matches_scratch(&mut ws);
    }

    #[test]
    fn cache_hit_returns_the_same_snapshot() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g, f).unwrap();
        let first = ws.solution().unwrap();
        let again = ws.solution().unwrap();
        assert!(
            Arc::ptr_eq(&first, &again),
            "a cache hit is a refcount bump, not a clone"
        );
        let r = again.resolve.unwrap();
        assert_eq!(r.shards_resolved, 2, "snapshot keeps its refresh's split");
        assert_eq!(r.shards_reused, 0);
    }

    #[test]
    fn add_touches_only_its_shard() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        ws.solution().unwrap();
        ws.add_path(path(&g, &[3, 4])).unwrap();
        let sol = ws.solution().unwrap();
        let r = sol.resolve.unwrap();
        assert_eq!(r.shards_reused, 1, "first chain untouched");
        assert_eq!(r.shards_resolved, 1);
        assert_matches_scratch(&mut ws);
    }

    #[test]
    fn remove_unknown_id_is_an_error_and_mutates_nothing() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        let before = ws.components();
        let err = ws.remove_path(PathId(9)).unwrap_err();
        assert_eq!(err, CoreError::UnknownPath(PathId(9)));
        // A failing batch leaves the workspace untouched, even when a valid
        // op precedes the invalid one.
        let err = ws
            .apply([
                Mutation::Remove(PathId(0)),
                Mutation::Remove(PathId(0)), // second removal of the same id
            ])
            .unwrap_err();
        assert_eq!(err, CoreError::UnknownPath(PathId(0)));
        assert_eq!(ws.components(), before);
        assert_eq!(ws.family().len(), 4);
    }

    #[test]
    fn foreign_path_is_rejected() {
        let (g, f) = two_chain_instance();
        // A dipath whose arc ids exceed the workspace graph's arc count —
        // the revalidation must catch it (arc ids are dense indices, so
        // only out-of-range or non-contiguous foreign paths can fail).
        let other = from_edges(
            9,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 8),
            ],
        );
        let foreign = path(&other, &[6, 7, 8]);
        let mut ws = Workspace::new(sharded_session(), g, f).unwrap();
        match ws.add_path(foreign) {
            Err(CoreError::InvalidPath(_)) => {}
            other => panic!("expected InvalidPath, got {other:?}"),
        }
    }

    #[test]
    fn stats_accumulate_across_mutations_and_queries() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        let s0 = ws.stats();
        assert_eq!(s0.live_paths, 4);
        assert_eq!(s0.shard_count, 2);
        assert_eq!(s0.max_load, 2);
        assert_eq!(s0.recomputes, 0, "nothing solved yet");
        ws.solution().unwrap();
        let s1 = ws.stats();
        assert_eq!(s1.recomputes, 1);
        assert_eq!(s1.shards_resolved, 2, "first solve computes both shards");
        assert_eq!(s1.shards_reused, 0);
        // A cache hit adds nothing to the cumulative counters.
        ws.solution().unwrap();
        assert_eq!(ws.stats(), s1);
        // One mutation dirties one shard: totals grow by one reuse and one
        // re-solve, and the maintained load reflects the new path.
        ws.add_path(path(&g, &[4, 5])).unwrap();
        ws.solution().unwrap();
        let s2 = ws.stats();
        assert_eq!(s2.live_paths, 5);
        assert_eq!(s2.recomputes, 2);
        assert_eq!(s2.shards_reused, 1);
        assert_eq!(s2.shards_resolved, 3);
        assert_eq!(s2.max_load, 3, "arc 4→5 now carries load 3");
        assert_eq!(s2.max_load, ws.max_load());
    }

    #[test]
    fn arc_load_tracks_mutations() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        // Arc ids follow from_edges order: 0→1, 1→2, 3→4, 4→5.
        assert_eq!(ws.arc_load(ArcId(0)), 1);
        assert_eq!(ws.arc_load(ArcId(1)), 2);
        let id = ws.add_path(path(&g, &[0, 1, 2])).unwrap();
        assert_eq!(ws.arc_load(ArcId(0)), 2);
        assert_eq!(ws.arc_load(ArcId(1)), 3);
        ws.remove_path(id).unwrap();
        assert_eq!(ws.arc_load(ArcId(1)), 2);
        // Out-of-range arcs report zero load rather than panicking.
        assert_eq!(ws.arc_load(ArcId(99)), 0);
    }

    #[test]
    fn stable_ids_survive_removal_and_slots_are_reused() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        ws.remove_path(PathId(1)).unwrap();
        assert!(ws.family().contains(PathId(0)));
        assert!(!ws.family().contains(PathId(1)));
        assert!(ws.family().contains(PathId(3)));
        let id = ws.add_path(path(&g, &[0, 1])).unwrap();
        assert_eq!(id, PathId(1), "smallest tombstone reused");
        assert_matches_scratch(&mut ws);
    }

    /// The oracle's color of each live member, keyed by stable id.
    fn solution_colors(ws: &mut Workspace) -> BTreeMap<PathId, u32> {
        let sol = ws.solution().unwrap();
        ws.family()
            .dense_ids()
            .iter()
            .enumerate()
            .map(|(rank, &id)| (id, sol.assignment.color(PathId::from_index(rank)) as u32))
            .collect()
    }

    /// Apply one delta to a client-side mirror of the color table.
    fn replay(mirror: &mut BTreeMap<PathId, u32>, delta: &SolutionDelta) {
        if delta.full_resync {
            mirror.clear();
        }
        for &id in &delta.removed {
            mirror.remove(&id);
        }
        for &(id, c) in &delta.changes {
            mirror.insert(id, c);
        }
    }

    #[test]
    fn span_and_color_of_agree_with_solution() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        let expected = solution_colors(&mut ws);
        assert_eq!(ws.span().unwrap(), ws.solution().unwrap().num_colors);
        for (&id, &c) in &expected {
            assert_eq!(ws.color_of(id).unwrap(), Some(c));
        }
        assert_eq!(ws.color_of(PathId(99)).unwrap(), None, "not live");
        ws.add_path(path(&g, &[4, 5])).unwrap();
        let expected = solution_colors(&mut ws);
        assert_eq!(ws.span().unwrap(), 3, "arc 4→5 carries load 3");
        for (&id, &c) in &expected {
            assert_eq!(ws.color_of(id).unwrap(), Some(c));
        }
    }

    #[test]
    fn delta_replay_reconstructs_the_solution_table() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        let mut mirror = BTreeMap::new();
        let mut synced = Epoch::default();
        // Initial sync from epoch 0 delivers the whole table as changes.
        let d0 = ws.delta_since(synced).unwrap();
        assert!(!d0.full_resync);
        replay(&mut mirror, &d0);
        synced = d0.epoch;
        assert_eq!(mirror, solution_colors(&mut ws));

        // Churn: add to one chain, remove from the other, then replay.
        let added = ws.add_path(path(&g, &[4, 5])).unwrap();
        ws.remove_path(PathId(1)).unwrap();
        let d1 = ws.delta_since(synced).unwrap();
        assert!(!d1.full_resync);
        assert!(d1.epoch > synced);
        assert!(d1.removed.contains(&PathId(1)));
        replay(&mut mirror, &d1);
        synced = d1.epoch;
        assert_eq!(mirror, solution_colors(&mut ws));
        assert_eq!(d1.span, ws.span().unwrap());
        assert!(mirror.contains_key(&added));

        // Already synced: the delta is empty and the epoch stands still.
        let d2 = ws.delta_since(synced).unwrap();
        assert_eq!(d2.epoch, synced);
        assert!(d2.changes.is_empty() && d2.removed.is_empty() && !d2.full_resync);
    }

    #[test]
    fn unknown_epoch_gets_a_full_resync() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g, f).unwrap();
        ws.solution().unwrap();
        // A client claiming an epoch from the future is beyond the log.
        let d = ws.delta_since(Epoch(999)).unwrap();
        assert!(d.full_resync);
        assert!(d.removed.is_empty());
        let mut mirror = BTreeMap::new();
        replay(&mut mirror, &d);
        assert_eq!(mirror, solution_colors(&mut ws));
        let s = ws.stats();
        assert_eq!(s.delta_queries, 1);
        assert_eq!(s.delta_resyncs, 1);
    }

    #[test]
    fn epoch_older_than_the_log_gets_a_full_resync() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        let first = ws.delta_since(Epoch::default()).unwrap();
        // Push the log past DELTA_RETAIN generations.
        for _ in 0..DELTA_RETAIN + 1 {
            let id = ws.add_path(path(&g, &[0, 1])).unwrap();
            ws.span().unwrap();
            ws.remove_path(id).unwrap();
            ws.span().unwrap();
        }
        let d = ws.delta_since(first.epoch).unwrap();
        assert!(d.full_resync, "epoch fell off the retained log");
        let mut mirror = BTreeMap::new();
        replay(&mut mirror, &d);
        assert_eq!(mirror, solution_colors(&mut ws));
    }

    #[test]
    fn remove_and_readd_of_identical_path_changes_nothing() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        let synced = ws.delta_since(Epoch::default()).unwrap().epoch;
        // Retire and re-admit the same dipath in one batch: the slot is
        // re-occupied, the shard adopts its pooled solve, and the delta
        // carries neither a change nor a removal.
        ws.apply([
            Mutation::Remove(PathId(1)),
            Mutation::Add(path(&g, &[1, 2])),
        ])
        .unwrap();
        let d = ws.delta_since(synced).unwrap();
        assert!(d.epoch > synced, "the refresh still advances the epoch");
        assert!(!d.full_resync);
        assert!(
            d.changes.is_empty(),
            "same path, same color: {:?}",
            d.changes
        );
        assert!(
            d.removed.is_empty(),
            "slot was re-occupied: {:?}",
            d.removed
        );
        assert_matches_scratch(&mut ws);
    }

    #[test]
    fn color_table_snapshots_share_pages_across_cache_hits() {
        let (g, f) = two_chain_instance();
        let mut ws = Workspace::new(sharded_session(), g.clone(), f).unwrap();
        let t1 = ws.color_table().unwrap();
        let t2 = ws.color_table().unwrap();
        assert_eq!(t1.shared_pages_with(&t2), t1.page_count());
        assert!(t1.page_count() > 0);
        // The old snapshot keeps its colors after further churn.
        ws.add_path(path(&g, &[4, 5])).unwrap();
        ws.span().unwrap();
        assert_eq!(t1.get(0), ws.color_of(PathId(0)).unwrap());
    }
}
