//! Pluggable coloring backends — the named methods behind the solving
//! surface.
//!
//! The paper's taxonomy used to be hard-wired into one `match` inside the
//! solver facade; this module turns every method into a first-class
//! [`ColoringBackend`] that can be pinned, raced in a portfolio, or given
//! its own budgets:
//!
//! | backend | source | applicability |
//! |---------|--------|---------------|
//! | [`BackendKind::Theorem1`] | peel/replay (`w = π`) | internal-cycle-free |
//! | [`BackendKind::Theorem6`] | split/merge (`w ≤ ⌈4π/3⌉`) | UPP, one internal cycle |
//! | [`BackendKind::Weighted`] | dedup + multicoloring | duplicated families |
//! | [`BackendKind::Exact`] | branch-and-bound chromatic | small conflict graphs |
//! | [`BackendKind::Dsatur`] | DSATUR heuristic | any |
//! | [`BackendKind::GreedyNatural`] | first-fit, id order | any |
//! | [`BackendKind::GreedyLargestFirst`] | first-fit, Welsh–Powell | any |
//! | [`BackendKind::GreedySmallestLast`] | first-fit, degeneracy order | any |
//! | [`BackendKind::KempeGreedy`] | greedy + Kempe palette reduction | any |
//!
//! Backends receive a shared [`InstanceContext`] (instance, class, load,
//! budgets, and a lazily-built conflict graph) and return a
//! [`BackendOutcome`]. The [`crate::solver::SolveSession`] orchestrates them
//! according to a [`Policy`] and records one [`BackendAttempt`] per backend
//! consulted, so every `Solution` carries its provenance.

use crate::assignment::WavelengthAssignment;
use crate::error::CoreError;
use crate::internal::{self, DagClass};
use crate::{theorem1, theorem6};
use dagwave_color::ugraph::UGraph;
use dagwave_color::{dsatur, exact, greedy, kempe, multicolor};
use dagwave_graph::Digraph;
use dagwave_paths::{load, ConflictGraph, DipathFamily, PathId};
use std::fmt;
use std::sync::OnceLock;

/// Names every coloring backend reachable through the public API.
///
/// Also used as the `strategy` tag on a solved instance (the legacy name
/// `Strategy` is an alias for this type).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Theorem 1 (peel/replay): optimal, `w = π`, internal-cycle-free DAGs.
    Theorem1,
    /// Theorem 6 (split/merge): `w ≤ ⌈4π/3⌉`, single-cycle UPP-DAGs.
    Theorem6,
    /// Weighted coloring (independent-set covering) of the deduplicated
    /// conflict graph — realizes Theorem 7's `⌈8h/3⌉` on replicated
    /// families.
    Weighted,
    /// Exact branch-and-bound chromatic number of the conflict graph.
    Exact,
    /// DSATUR heuristic on the conflict graph.
    Dsatur,
    /// First-fit greedy along natural vertex order.
    GreedyNatural,
    /// First-fit greedy along decreasing degree (Welsh–Powell).
    GreedyLargestFirst,
    /// First-fit greedy along smallest-last / degeneracy order.
    GreedySmallestLast,
    /// Smallest-last greedy refined by deterministic Kempe-chain palette
    /// reduction ([`dagwave_color::kempe::kempe_reduce`]).
    KempeGreedy,
}

impl BackendKind {
    /// Every backend, in the deterministic order portfolios race them.
    pub const ALL: [BackendKind; 9] = [
        BackendKind::Theorem1,
        BackendKind::Theorem6,
        BackendKind::Weighted,
        BackendKind::Exact,
        BackendKind::Dsatur,
        BackendKind::GreedyNatural,
        BackendKind::GreedyLargestFirst,
        BackendKind::GreedySmallestLast,
        BackendKind::KempeGreedy,
    ];

    /// Stable kebab-case name (what [`fmt::Display`] prints).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Theorem1 => "theorem1",
            BackendKind::Theorem6 => "theorem6",
            BackendKind::Weighted => "weighted",
            BackendKind::Exact => "exact",
            BackendKind::Dsatur => "dsatur",
            BackendKind::GreedyNatural => "greedy-natural",
            BackendKind::GreedyLargestFirst => "greedy-largest-first",
            BackendKind::GreedySmallestLast => "greedy-smallest-last",
            BackendKind::KempeGreedy => "kempe-greedy",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a [`crate::solver::SolveSession`] picks backends.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Policy {
    /// Classify the instance and dispatch to the strongest applicable
    /// method (the historical `WavelengthSolver::solve` behavior).
    #[default]
    Auto,
    /// Run exactly this backend; error with
    /// [`CoreError::BackendUnsupported`] when it does not apply.
    Pinned(BackendKind),
    /// Race several backends on the rayon pool and keep the
    /// fewest-colors result (ties break toward the earlier list entry, so
    /// the outcome is deterministic regardless of scheduling). An empty
    /// list means "every backend that supports the instance".
    Portfolio(Vec<BackendKind>),
}

/// Every budget and threshold the solving surface consults, lifted out of
/// the old hard-coded facade. Carried by [`crate::solver::SolveSession`] and
/// built with [`crate::solver::SolverBuilder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolveRequest {
    /// Backend-selection policy.
    pub policy: Policy,
    /// When to shard the instance by conflict-graph components before
    /// solving (decompose-solve-merge; see [`crate::DecomposePolicy`]).
    pub decompose: crate::decompose::DecomposePolicy,
    /// Per-shard backend *selection*: when `true` and the policy is
    /// [`Policy::Auto`], each shard of a decomposed solve is dispatched to
    /// the single backend its own class pins (Theorem 1 for
    /// internal-cycle-free shards, Theorem 6 for single-cycle UPP shards,
    /// exact-or-DSATUR otherwise) instead of re-running the full Auto
    /// dispatch — in particular the weighted-rescue consult is skipped per
    /// shard. Off by default (full Auto per shard, the historical
    /// behavior); ignored for pinned/portfolio policies and monolithic
    /// solves.
    pub per_shard_backend: bool,
    /// Largest conflict graph (vertices) handed to the exact solver.
    pub exact_limit: usize,
    /// Branch-node budget for the exact solver.
    pub exact_budget: u64,
    /// Largest deduplicated base family the weighted backend accepts
    /// (beyond it the exact independent-set machinery is too expensive).
    pub weighted_dedup_limit: usize,
    /// The weighted backend uses *exact* multicoloring when the base has at
    /// most this many vertices…
    pub weighted_exact_base_limit: usize,
    /// …and the family's total weight (original path count) is at most
    /// this; otherwise it falls back to greedy multicoloring.
    pub weighted_exact_weight_limit: usize,
}

impl SolveRequest {
    /// Default [`SolveRequest::exact_limit`].
    pub const DEFAULT_EXACT_LIMIT: usize = 80;
    /// Default [`SolveRequest::weighted_dedup_limit`] (was the hard-coded
    /// `base_count > 40` guard).
    pub const DEFAULT_WEIGHTED_DEDUP_LIMIT: usize = 40;
    /// Default [`SolveRequest::weighted_exact_base_limit`] (was the
    /// hard-coded `base_count <= 16` guard).
    pub const DEFAULT_WEIGHTED_EXACT_BASE_LIMIT: usize = 16;
    /// Default [`SolveRequest::weighted_exact_weight_limit`] (was the
    /// hard-coded `total_weight <= 64` guard).
    pub const DEFAULT_WEIGHTED_EXACT_WEIGHT_LIMIT: usize = 64;
}

impl Default for SolveRequest {
    fn default() -> Self {
        SolveRequest {
            policy: Policy::Auto,
            decompose: crate::decompose::DecomposePolicy::default(),
            per_shard_backend: false,
            exact_limit: Self::DEFAULT_EXACT_LIMIT,
            exact_budget: exact::DEFAULT_NODE_BUDGET,
            weighted_dedup_limit: Self::DEFAULT_WEIGHTED_DEDUP_LIMIT,
            weighted_exact_base_limit: Self::DEFAULT_WEIGHTED_EXACT_BASE_LIMIT,
            weighted_exact_weight_limit: Self::DEFAULT_WEIGHTED_EXACT_WEIGHT_LIMIT,
        }
    }
}

/// Everything a backend may consult about the instance being solved. Built
/// once per solve and shared (it is `Sync`) across portfolio members; the
/// conflict graph is constructed lazily on first use so cheap backends
/// (Theorem 1/6) never pay for it.
pub struct InstanceContext<'a> {
    /// The DAG.
    pub graph: &'a Digraph,
    /// The dipath family to color.
    pub family: &'a DipathFamily,
    /// The instance class per the paper's taxonomy.
    pub class: DagClass,
    /// `π(G, P)` — the universal lower bound.
    pub load: usize,
    /// Budgets and thresholds.
    pub request: &'a SolveRequest,
    ug: OnceLock<UGraph>,
    dedup: OnceLock<Vec<Vec<PathId>>>,
}

impl<'a> InstanceContext<'a> {
    /// Validate the DAG precondition, classify, and compute the load.
    pub fn new(
        graph: &'a Digraph,
        family: &'a DipathFamily,
        request: &'a SolveRequest,
    ) -> Result<Self, CoreError> {
        if let Err(dagwave_graph::GraphError::NotADag(c)) =
            dagwave_graph::topo::topological_order(graph)
        {
            return Err(CoreError::NotADag(c));
        }
        Ok(InstanceContext {
            graph,
            family,
            class: internal::classify(graph),
            load: load::max_load(graph, family),
            request,
            ug: OnceLock::new(),
            dedup: OnceLock::new(),
        })
    }

    /// Assemble a context from *already-known* class and load, skipping the
    /// DAG validation, classification, and load scans — the incremental
    /// [`crate::Workspace`] patches those per mutation batch and rebuilds
    /// its context in O(1) per query instead of O(instance). The caller
    /// vouches that `graph` validated as a DAG before (the workspace's
    /// graph never mutates) and that `class`/`load` describe exactly this
    /// `(graph, family)` pair; debug builds shadow-check both claims
    /// against a from-scratch recomputation.
    pub(crate) fn from_parts(
        graph: &'a Digraph,
        family: &'a DipathFamily,
        class: DagClass,
        load: usize,
        request: &'a SolveRequest,
    ) -> Self {
        debug_assert_eq!(
            class,
            internal::classify(graph),
            "cached class diverged from a fresh classification"
        );
        debug_assert_eq!(
            load,
            load::max_load(graph, family),
            "cached load diverged from a fresh load scan"
        );
        debug_assert!(
            dagwave_graph::topo::topological_order(graph).is_ok(),
            "cached context built over a non-DAG"
        );
        InstanceContext {
            graph,
            family,
            class,
            load,
            request,
            ug: OnceLock::new(),
            dedup: OnceLock::new(),
        }
    }

    /// The conflict graph as a [`UGraph`], built on first use and cached.
    pub fn conflict_ugraph(&self) -> &UGraph {
        self.ug.get_or_init(|| {
            crate::solver::conflict_to_ugraph(&ConflictGraph::build(self.graph, self.family))
        })
    }

    /// Groups of identical dipaths (by arc sequence), each sorted so the
    /// smallest member id leads and ordered by that leader — the
    /// deterministic base the weighted backend colors. Computed on first
    /// use and cached, so the applicability probe and the run share one
    /// pass.
    pub fn dedup_groups(&self) -> &[Vec<PathId>] {
        self.dedup.get_or_init(|| {
            use std::collections::HashMap;
            let mut groups: HashMap<&[dagwave_graph::ArcId], Vec<PathId>> = HashMap::new();
            for (id, p) in self.family.iter() {
                groups.entry(p.arcs()).or_default().push(id);
            }
            let mut base: Vec<Vec<PathId>> = groups.into_values().collect();
            base.sort_by_key(|members| members[0]);
            base
        })
    }
}

/// What a backend produced for one instance.
#[derive(Clone, Debug)]
pub struct BackendOutcome {
    /// The wavelength assignment (proper by contract; the session
    /// re-validates it through `certify` and records the verdict on the
    /// corresponding [`BackendAttempt`]).
    pub assignment: WavelengthAssignment,
    /// Best lower bound on `w` this backend proved (at least `π`).
    pub lower_bound: usize,
    /// `true` when the backend proved its own assignment optimal.
    pub optimal: bool,
}

/// Provenance record: one backend consulted during a solve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BackendAttempt {
    /// Which backend.
    pub backend: BackendKind,
    /// Best lower bound on `w` known after this attempt (at least `π`).
    pub lower_bound: usize,
    /// Colors used by the produced assignment — `None` when the backend
    /// declined or failed.
    pub upper_bound: Option<usize>,
    /// `certify`-backed validity: the produced assignment was re-checked to
    /// be conflict-free (`false` also when nothing was produced).
    pub valid: bool,
    /// Decline reason or error text, when the backend produced nothing.
    pub note: Option<String>,
}

/// A coloring method that can be pinned or raced by the solving surface.
///
/// Implementations must be deterministic: the same context always yields
/// the same assignment, which is what makes portfolio selection and the
/// parallel batch/stream entry points reproducible across thread budgets.
pub trait ColoringBackend: Send + Sync {
    /// The name tag.
    fn kind(&self) -> BackendKind;

    /// `None` when the backend can run on this instance, otherwise a
    /// human-readable reason it cannot.
    fn unsupported(&self, ctx: &InstanceContext<'_>) -> Option<String>;

    /// Produce a coloring. Only called after [`Self::unsupported`]
    /// returned `None`.
    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError>;
}

/// The static backend for `kind`.
pub fn backend(kind: BackendKind) -> &'static dyn ColoringBackend {
    match kind {
        BackendKind::Theorem1 => &Theorem1Backend,
        BackendKind::Theorem6 => &Theorem6Backend,
        BackendKind::Weighted => &WeightedBackend,
        BackendKind::Exact => &ExactBackend,
        BackendKind::Dsatur => &DsaturBackend,
        BackendKind::GreedyNatural => &GreedyBackend(greedy::Order::Natural),
        BackendKind::GreedyLargestFirst => &GreedyBackend(greedy::Order::LargestFirst),
        BackendKind::GreedySmallestLast => &GreedyBackend(greedy::Order::SmallestLast),
        BackendKind::KempeGreedy => &KempeGreedyBackend,
    }
}

// ---------------------------------------------------------------------------
// Adapted backends
// ---------------------------------------------------------------------------

struct Theorem1Backend;

impl ColoringBackend for Theorem1Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Theorem1
    }

    fn unsupported(&self, ctx: &InstanceContext<'_>) -> Option<String> {
        (ctx.class != DagClass::InternalCycleFree).then(|| {
            format!(
                "requires an internal-cycle-free DAG, instance is {}",
                ctx.class
            )
        })
    }

    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError> {
        let res = theorem1::color_optimal(ctx.graph, ctx.family)?;
        Ok(BackendOutcome {
            assignment: res.assignment,
            lower_bound: ctx.load,
            optimal: true,
        })
    }
}

struct Theorem6Backend;

impl ColoringBackend for Theorem6Backend {
    fn kind(&self) -> BackendKind {
        BackendKind::Theorem6
    }

    fn unsupported(&self, ctx: &InstanceContext<'_>) -> Option<String> {
        (ctx.class != DagClass::UppSingleCycle)
            .then(|| format!("requires a single-cycle UPP-DAG, instance is {}", ctx.class))
    }

    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError> {
        let res = theorem6::color_single_cycle_upp(ctx.graph, ctx.family)?;
        let num = res.assignment.num_colors();
        Ok(BackendOutcome {
            assignment: res.assignment,
            lower_bound: ctx.load,
            // Optimal iff it matched the lower bound π.
            optimal: num == ctx.load || ctx.load == 0,
        })
    }
}

struct WeightedBackend;

impl ColoringBackend for WeightedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Weighted
    }

    fn unsupported(&self, ctx: &InstanceContext<'_>) -> Option<String> {
        let base_count = ctx.dedup_groups().len();
        if base_count == ctx.family.len() {
            return Some("family has no duplicated dipaths".to_string());
        }
        if base_count > ctx.request.weighted_dedup_limit {
            return Some(format!(
                "deduplicated base has {base_count} dipaths, over the weighted_dedup_limit of {}",
                ctx.request.weighted_dedup_limit
            ));
        }
        None
    }

    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError> {
        let base = ctx.dedup_groups();
        let base_family: DipathFamily = base
            .iter()
            .map(|members| ctx.family.path(members[0]).clone())
            .collect();
        let weights: Vec<usize> = base.iter().map(|m| m.len()).collect();
        let cg = ConflictGraph::build(ctx.graph, &base_family);
        let ug = crate::solver::conflict_to_ugraph(&cg);
        // Exact covering only within the configured budget; greedy beyond.
        let total_weight: usize = weights.iter().sum();
        let mc = if base.len() <= ctx.request.weighted_exact_base_limit
            && total_weight <= ctx.request.weighted_exact_weight_limit
        {
            multicolor::exact_multicoloring(&ug, &weights)
        } else {
            multicolor::greedy_multicoloring(&ug, &weights)
        };
        debug_assert!(mc.is_valid(&ug, &weights));
        let mut colors = vec![usize::MAX; ctx.family.len()];
        for (members, assigned) in base.iter().zip(&mc.colors) {
            for (member, &c) in members.iter().zip(assigned) {
                colors[member.index()] = c;
            }
        }
        let assignment = WavelengthAssignment::new(colors);
        let num = assignment.num_colors();
        Ok(BackendOutcome {
            assignment,
            lower_bound: ctx.load,
            optimal: num == ctx.load,
        })
    }
}

struct ExactBackend;

impl ColoringBackend for ExactBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    fn unsupported(&self, ctx: &InstanceContext<'_>) -> Option<String> {
        // The conflict graph has one vertex per dipath, so the probe never
        // needs to build it — declining stays free on huge families.
        let n = ctx.family.len();
        (n > ctx.request.exact_limit).then(|| {
            format!(
                "conflict graph has {n} vertices, over the exact_limit of {}",
                ctx.request.exact_limit
            )
        })
    }

    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError> {
        let ug = ctx.conflict_ugraph();
        match exact::chromatic_number_budgeted(ug, ctx.request.exact_budget) {
            exact::ExactResult::Optimal {
                chromatic,
                coloring,
            } => Ok(BackendOutcome {
                assignment: WavelengthAssignment::new(coloring),
                lower_bound: chromatic.max(ctx.load),
                optimal: true,
            }),
            exact::ExactResult::BudgetExceeded {
                lower, coloring, ..
            } => {
                let assignment = WavelengthAssignment::new(coloring);
                let lower_bound = lower.max(ctx.load);
                let optimal = assignment.num_colors() == lower_bound;
                Ok(BackendOutcome {
                    assignment,
                    lower_bound,
                    optimal,
                })
            }
        }
    }
}

struct DsaturBackend;

impl ColoringBackend for DsaturBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Dsatur
    }

    fn unsupported(&self, _ctx: &InstanceContext<'_>) -> Option<String> {
        None
    }

    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError> {
        let assignment = WavelengthAssignment::new(dsatur::dsatur_coloring(ctx.conflict_ugraph()));
        let optimal = assignment.num_colors() == ctx.load;
        Ok(BackendOutcome {
            assignment,
            lower_bound: ctx.load,
            optimal,
        })
    }
}

struct GreedyBackend(greedy::Order);

impl ColoringBackend for GreedyBackend {
    fn kind(&self) -> BackendKind {
        match self.0 {
            greedy::Order::Natural => BackendKind::GreedyNatural,
            greedy::Order::LargestFirst => BackendKind::GreedyLargestFirst,
            greedy::Order::SmallestLast => BackendKind::GreedySmallestLast,
        }
    }

    fn unsupported(&self, _ctx: &InstanceContext<'_>) -> Option<String> {
        None
    }

    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError> {
        let coloring = greedy::greedy_coloring(ctx.conflict_ugraph(), self.0);
        let assignment = WavelengthAssignment::new(coloring);
        let optimal = assignment.num_colors() == ctx.load;
        Ok(BackendOutcome {
            assignment,
            lower_bound: ctx.load,
            optimal,
        })
    }
}

struct KempeGreedyBackend;

impl ColoringBackend for KempeGreedyBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::KempeGreedy
    }

    fn unsupported(&self, _ctx: &InstanceContext<'_>) -> Option<String> {
        None
    }

    fn run(&self, ctx: &InstanceContext<'_>) -> Result<BackendOutcome, CoreError> {
        let ug = ctx.conflict_ugraph();
        let coloring =
            kempe::kempe_reduce(ug, greedy::greedy_coloring(ug, greedy::Order::SmallestLast));
        let assignment = WavelengthAssignment::new(coloring);
        let optimal = assignment.num_colors() == ctx.load;
        Ok(BackendOutcome {
            assignment,
            lower_bound: ctx.load,
            optimal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_graph::builder::from_edges;
    use dagwave_graph::VertexId;
    use dagwave_paths::Dipath;

    fn v(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    fn path(g: &Digraph, route: &[usize]) -> Dipath {
        let route: Vec<VertexId> = route.iter().map(|&i| v(i)).collect();
        Dipath::from_vertices(g, &route).unwrap()
    }

    fn tree_instance() -> (Digraph, DipathFamily) {
        let g = from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
        let f = DipathFamily::from_paths(vec![
            path(&g, &[0, 1, 2]),
            path(&g, &[0, 1, 3]),
            path(&g, &[1, 2]),
        ]);
        (g, f)
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for kind in BackendKind::ALL {
            assert!(seen.insert(kind.name()), "duplicate name {kind}");
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(BackendKind::KempeGreedy.to_string(), "kempe-greedy");
    }

    #[test]
    fn request_defaults_pin_the_old_magic_numbers() {
        // The historical hard-coded heuristics, now named configuration:
        // exact solver limit 80, weighted dedup guard 40, exact
        // multicoloring guards 16 (base) and 64 (total weight).
        let req = SolveRequest::default();
        assert_eq!(req.exact_limit, 80);
        assert_eq!(req.exact_budget, exact::DEFAULT_NODE_BUDGET);
        assert_eq!(req.weighted_dedup_limit, 40);
        assert_eq!(req.weighted_exact_base_limit, 16);
        assert_eq!(req.weighted_exact_weight_limit, 64);
        assert_eq!(req.policy, Policy::Auto);
        assert!(
            !req.per_shard_backend,
            "per-shard backend selection is opt-in"
        );
        assert_eq!(
            req.decompose,
            crate::decompose::DecomposePolicy::default(),
            "decomposition defaults to Auto above the size threshold"
        );
    }

    #[test]
    fn context_rejects_cyclic_input() {
        let g = from_edges(2, &[(0, 1), (1, 0)]);
        let f = DipathFamily::new();
        let req = SolveRequest::default();
        assert!(matches!(
            InstanceContext::new(&g, &f, &req),
            Err(CoreError::NotADag(_))
        ));
    }

    #[test]
    fn theorem_backends_guard_their_class() {
        let (g, f) = tree_instance();
        let req = SolveRequest::default();
        let ctx = InstanceContext::new(&g, &f, &req).unwrap();
        assert!(backend(BackendKind::Theorem1).unsupported(&ctx).is_none());
        let reason = backend(BackendKind::Theorem6).unsupported(&ctx).unwrap();
        assert!(reason.contains("internal-cycle-free"), "{reason}");
    }

    #[test]
    fn every_universal_backend_colors_the_tree_properly() {
        let (g, f) = tree_instance();
        let req = SolveRequest::default();
        let ctx = InstanceContext::new(&g, &f, &req).unwrap();
        for kind in BackendKind::ALL {
            let b = backend(kind);
            assert_eq!(b.kind(), kind);
            if b.unsupported(&ctx).is_some() {
                continue;
            }
            let out = b.run(&ctx).unwrap();
            assert!(out.assignment.is_valid(&g, &f), "{kind}");
            assert!(out.assignment.num_colors() >= ctx.load, "{kind}");
            assert!(out.lower_bound >= ctx.load, "{kind}");
        }
    }

    #[test]
    fn weighted_declines_without_duplicates_and_over_budget() {
        let (g, f) = tree_instance();
        let req = SolveRequest::default();
        let ctx = InstanceContext::new(&g, &f, &req).unwrap();
        let reason = backend(BackendKind::Weighted).unsupported(&ctx).unwrap();
        assert!(reason.contains("no duplicated"), "{reason}");

        let replicated = f.replicate(3);
        let tight = SolveRequest {
            weighted_dedup_limit: 2,
            ..SolveRequest::default()
        };
        let ctx = InstanceContext::new(&g, &replicated, &tight).unwrap();
        let reason = backend(BackendKind::Weighted).unsupported(&ctx).unwrap();
        assert!(reason.contains("weighted_dedup_limit"), "{reason}");
    }

    #[test]
    fn exact_declines_over_the_vertex_limit() {
        let (g, f) = tree_instance();
        let req = SolveRequest {
            exact_limit: 1,
            ..SolveRequest::default()
        };
        let ctx = InstanceContext::new(&g, &f, &req).unwrap();
        let reason = backend(BackendKind::Exact).unsupported(&ctx).unwrap();
        assert!(reason.contains("exact_limit"), "{reason}");
    }

    #[test]
    fn conflict_ugraph_is_cached() {
        let (g, f) = tree_instance();
        let req = SolveRequest::default();
        let ctx = InstanceContext::new(&g, &f, &req).unwrap();
        let a = ctx.conflict_ugraph() as *const UGraph;
        let b = ctx.conflict_ugraph() as *const UGraph;
        assert_eq!(a, b);
    }
}
