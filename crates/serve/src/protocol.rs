//! The `dagwave-serve` wire protocol: versioned, length-prefixed binary
//! frames, hand-rolled encode/decode (no serde — the registry is
//! unreachable offline, so this module *is* the project's binary
//! serialization story).
//!
//! # Frame layout
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       1     magic      0xDA
//! 1       1     version    0x02 (0x01 accepted; see "Versioning" below)
//! 2       1     opcode     (see the opcode table below)
//! 3       1     flags      0x00 (reserved; nonzero is rejected)
//! 4       4     length     payload byte count, u32 little-endian
//! 8       n     payload    opcode-specific body
//! ```
//!
//! Integers are little-endian throughout. Strings are a `u32` byte count
//! followed by UTF-8 bytes. Vectors are a `u32` element count followed by
//! the elements. Payloads longer than [`MAX_PAYLOAD`] are rejected at the
//! header ([`WireError::Oversized`]) *before* any allocation, so a
//! malicious length prefix cannot balloon memory.
//!
//! # Opcode table
//!
//! | opcode | direction | message |
//! |--------|-----------|---------|
//! | `0x01` | request   | [`Request::Admit`] — tenant `u64`, arc ids `vec<u32>` |
//! | `0x02` | request   | [`Request::Retire`] — tenant `u64`, path id `u32` |
//! | `0x03` | request   | [`Request::Batch`] — tenant `u64`, ops `vec<op>` |
//! | `0x04` | request   | [`Request::Query`] — tenant `u64` |
//! | `0x05` | request   | [`Request::Stats`] — tenant `u64` |
//! | `0x06` | request   | [`Request::Shutdown`] — empty |
//! | `0x07` | request   | [`Request::QueryDelta`] — tenant `u64`, since-epoch `u64` *(v2)* |
//! | `0x81` | response  | [`Response::Admitted`] — path id `u32` |
//! | `0x82` | response  | [`Response::Retired`] — empty |
//! | `0x83` | response  | [`Response::Applied`] — added ids `vec<u32>` |
//! | `0x84` | response  | [`Response::Solution`] — see [`WireSolution`] |
//! | `0x85` | response  | [`Response::Stats`] — see [`WireStats`] |
//! | `0x86` | response  | [`Response::ShuttingDown`] — empty |
//! | `0x87` | response  | [`Response::Delta`] — see [`WireDelta`] *(v2)* |
//! | `0xEE` | response  | [`Response::Error`] — code `u16`, message `string` |
//!
//! A batch op is a `u8` tag: `0x00` add (followed by arc ids `vec<u32>`),
//! `0x01` remove (followed by a path id `u32`).
//!
//! # Versioning
//!
//! The version byte is a *minor* version: v2 adds the `QueryDelta`/`Delta`
//! opcodes and trailing [`WireStats`] counters, and changes nothing
//! that existed in v1. This side emits [`VERSION`] (`0x02`) and accepts
//! any version in `MIN_VERSION..=VERSION`, so v1 frames still decode —
//! including v1 `Stats` payloads, whose missing trailing counters read as
//! zero (the `Stats` payload is length-extensible: 9, 15, and 19-counter
//! stages all decode). Versions outside that range are
//! [`WireError::UnknownVersion`].
//!
//! Unknown versions, unknown opcodes, truncated payloads, trailing bytes,
//! and oversized lengths all decode to typed [`WireError`]s — never a
//! panic — which the server answers with a typed [`Response::Error`]
//! frame (see [`ErrorCode`]) before closing the now-unsynchronized
//! connection.

use std::io::{self, Read, Write};

/// First byte of every frame.
pub const MAGIC: u8 = 0xDA;
/// Protocol version this module emits (v2: delta queries + extended
/// stats).
pub const VERSION: u8 = 0x02;
/// Oldest version this module still accepts (see "Versioning" above).
pub const MIN_VERSION: u8 = 0x01;
/// Hard ceiling on a frame's payload length (16 MiB): anything larger is
/// rejected at the header, before allocation.
pub const MAX_PAYLOAD: u32 = 1 << 24;
/// Frame header size in bytes.
pub const HEADER_LEN: usize = 8;

/// Everything that can go wrong turning bytes into a message. Decoding is
/// total: any input produces either a message or one of these — never a
/// panic.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// First byte was not [`MAGIC`].
    BadMagic(u8),
    /// Version byte this implementation does not speak.
    UnknownVersion(u8),
    /// Opcode outside the table (or a response opcode where a request was
    /// required, and vice versa).
    UnknownOpcode(u8),
    /// Reserved flags byte was nonzero.
    NonZeroFlags(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Input ended before the declared frame did.
    Truncated,
    /// Payload decoded cleanly but left unconsumed bytes.
    Trailing(usize),
    /// Payload structure was invalid (bad tag, bad UTF-8, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(b) => write!(f, "bad magic byte {b:#04x} (want {MAGIC:#04x})"),
            WireError::UnknownVersion(v) => {
                write!(
                    f,
                    "unknown protocol version {v} (this side speaks {MIN_VERSION}..={VERSION})"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::NonZeroFlags(b) => write!(f, "reserved flags byte is {b:#04x}, want 0"),
            WireError::Oversized(n) => {
                write!(f, "payload length {n} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Typed error codes carried by [`Response::Error`] frames.
///
/// `u16` on the wire; codes unknown to this build round-trip through
/// [`ErrorCode::Other`] so newer servers can extend the table without
/// breaking older clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// Request frame carried a version this server does not speak.
    UnknownVersion,
    /// Request frame carried an opcode outside the table.
    UnknownOpcode,
    /// Request frame's payload did not decode.
    Malformed,
    /// Request frame's declared length exceeded [`MAX_PAYLOAD`].
    Oversized,
    /// A retire/batch named a path id that is not live.
    UnknownPath,
    /// An admit/batch carried a dipath invalid on the tenant's graph.
    InvalidPath,
    /// Admission control rejected the mutation: the projected load would
    /// exceed the server's span budget.
    SpanBudgetExceeded,
    /// The solve itself failed (any other solver-side error).
    Solver,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The server is at capacity for this connection or tenant right now
    /// (bounded actor queue or write queue full). Transient: the request
    /// was not applied and may be retried.
    Busy,
    /// A code this build does not know (forward compatibility).
    Other(u16),
}

impl ErrorCode {
    /// Wire representation.
    pub fn to_u16(self) -> u16 {
        match self {
            ErrorCode::UnknownVersion => 1,
            ErrorCode::UnknownOpcode => 2,
            ErrorCode::Malformed => 3,
            ErrorCode::Oversized => 4,
            ErrorCode::UnknownPath => 5,
            ErrorCode::InvalidPath => 6,
            ErrorCode::SpanBudgetExceeded => 7,
            ErrorCode::Solver => 8,
            ErrorCode::ShuttingDown => 9,
            ErrorCode::Busy => 10,
            ErrorCode::Other(raw) => raw,
        }
    }

    /// Inverse of [`ErrorCode::to_u16`]; unknown codes land in
    /// [`ErrorCode::Other`].
    pub fn from_u16(raw: u16) -> Self {
        match raw {
            1 => ErrorCode::UnknownVersion,
            2 => ErrorCode::UnknownOpcode,
            3 => ErrorCode::Malformed,
            4 => ErrorCode::Oversized,
            5 => ErrorCode::UnknownPath,
            6 => ErrorCode::InvalidPath,
            7 => ErrorCode::SpanBudgetExceeded,
            8 => ErrorCode::Solver,
            9 => ErrorCode::ShuttingDown,
            10 => ErrorCode::Busy,
            other => ErrorCode::Other(other),
        }
    }
}

/// One mutation inside a [`Request::Batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireOp {
    /// Admit a dipath given as its arc-id sequence on the tenant's graph.
    Add(Vec<u32>),
    /// Retire the live dipath with this stable id.
    Remove(u32),
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Admit one dipath (arc-id sequence) into `tenant`'s workspace.
    Admit {
        /// Tenant whose workspace is addressed.
        tenant: u64,
        /// The dipath as its arc ids, in path order.
        arcs: Vec<u32>,
    },
    /// Retire the live dipath with stable id `id` from `tenant`.
    Retire {
        /// Tenant whose workspace is addressed.
        tenant: u64,
        /// Stable path id to retire.
        id: u32,
    },
    /// Apply a mutation batch atomically (all-or-nothing, exactly the
    /// semantics of `Workspace::apply`).
    Batch {
        /// Tenant whose workspace is addressed.
        tenant: u64,
        /// Mutations, in application order.
        ops: Vec<WireOp>,
    },
    /// Fetch the current wavelength solution for `tenant`.
    Query {
        /// Tenant whose workspace is addressed.
        tenant: u64,
    },
    /// Fetch service/workspace counters for `tenant`.
    Stats {
        /// Tenant whose workspace is addressed.
        tenant: u64,
    },
    /// Stop the server: every tenant actor is stopped and the listener
    /// closes after acknowledging with [`Response::ShuttingDown`].
    Shutdown,
    /// Fetch everything that changed in `tenant`'s solution since the
    /// client's last synced epoch (v2). Answered with
    /// [`Response::Delta`] — O(changed) bytes, never a full solution.
    QueryDelta {
        /// Tenant whose workspace is addressed.
        tenant: u64,
        /// The epoch the client last synced at (`0` = never synced).
        since: u64,
    },
}

/// The solution summary carried by [`Response::Solution`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireSolution {
    /// Wavelengths used (the span `w`).
    pub num_colors: u32,
    /// `π(G, P)` — the load lower bound.
    pub load: u32,
    /// Whether `num_colors` is provably minimum.
    pub optimal: bool,
    /// Conflict components in the solved decomposition (1 for monolithic).
    pub shard_count: u32,
    /// Winning backend name (kebab-case `Strategy` rendering).
    pub strategy: String,
    /// `(stable path id, wavelength)` per live dipath, ascending by id.
    pub colors: Vec<(u32, u32)>,
}

/// The delta summary carried by [`Response::Delta`] (v2): the changes
/// between the client's last synced epoch and the server's current one.
///
/// Payload layout: epoch `u64`, span `u32`, full-resync flag `u8` (0/1),
/// changes `vec<(u32, u32)>` (stable path id, wavelength), removed
/// `vec<u32>` (stable path ids). Replay in epoch order — clear everything
/// first when `full_resync` is set, then drop `removed`, then apply
/// `changes` — and the client's table equals the server's full solution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireDelta {
    /// The server's current epoch; pass it back as `since` next time.
    pub epoch: u64,
    /// The current span (number of wavelengths in use).
    pub span: u32,
    /// When set, the client's state is too old (or unknown) to patch:
    /// `changes` carries the *entire* live assignment and the client must
    /// replace, not merge.
    pub full_resync: bool,
    /// `(stable path id, wavelength)` per member whose color changed
    /// since `since` (or every live member under `full_resync`).
    pub changes: Vec<(u32, u32)>,
    /// Stable ids retired since `since` (empty under `full_resync`).
    pub removed: Vec<u32>,
}

/// The counters carried by [`Response::Stats`] — the tenant's cumulative
/// `WorkspaceStats`, the actor's service-side tallies, and the serving
/// front-end's transport counters.
///
/// On the wire: 19 `u64`s in field order. The payload is
/// length-extensible in stages: a v1 peer sends 9 counters, early-v2
/// sends 15, current builds send 19 — decoders accept any stage and zero
/// the missing tail, so extending the table is never a version bump.
///
/// The four transport counters are measured at the serving front-end:
/// the whole process under the evented reactor, the serving connection
/// under the threaded model (where no cross-connection aggregation
/// exists by design — there is no shared mutable state to count into).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Live dipaths in the tenant's family.
    pub live_paths: u64,
    /// Conflict components currently tracked.
    pub shard_count: u64,
    /// Current `π(G, P)`.
    pub max_load: u64,
    /// Full recomputations the workspace has run.
    pub recomputes: u64,
    /// Cumulative shards served from cache.
    pub shards_reused: u64,
    /// Cumulative shards actually re-solved.
    pub shards_resolved: u64,
    /// Client mutation batches accepted by the actor.
    pub batches: u64,
    /// `Workspace::apply` calls those batches coalesced into
    /// (`batches / applies` > 1 means coalescing amortized recomputes).
    pub applies: u64,
    /// Solution queries served.
    pub queries: u64,
    /// Distinct arc lists in the tenant's interner arena (v2).
    pub interned_arc_lists: u64,
    /// Arena intern hits — arc lists deduplicated to an existing
    /// allocation (v2).
    pub intern_hits: u64,
    /// Arena intern misses — arc lists stored fresh (v2).
    pub intern_misses: u64,
    /// The workspace's current refresh epoch (v2).
    pub epoch: u64,
    /// Delta queries the workspace answered (v2).
    pub delta_queries: u64,
    /// Delta queries answered with a full resync (v2).
    pub delta_resyncs: u64,
    /// Request bytes read off the wire by the serving front-end.
    pub bytes_in: u64,
    /// Response bytes written to the wire by the serving front-end.
    pub bytes_out: u64,
    /// Requests refused with [`ErrorCode::Busy`] because a bounded queue
    /// (actor command queue) was full at dispatch time.
    pub busy_rejections: u64,
    /// High-water mark of any connection's pending write queue, in bytes
    /// (how far a slow reader ever got behind before backpressure held).
    pub max_write_queue: u64,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Admit succeeded; the new dipath's stable id.
    Admitted {
        /// Stable id assigned to the admitted dipath.
        id: u32,
    },
    /// Retire succeeded.
    Retired,
    /// Batch succeeded; stable ids of its additions, in batch order.
    Applied {
        /// Ids assigned to the batch's `Add` ops, in op order.
        added: Vec<u32>,
    },
    /// Current solution snapshot.
    Solution(WireSolution),
    /// Current counters.
    Stats(WireStats),
    /// Changes since the client's last synced epoch (v2).
    Delta(WireDelta),
    /// Shutdown acknowledged; the connection closes after this frame.
    ShuttingDown,
    /// The request failed; typed code plus a human-readable message.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_u32_slice(buf: &mut Vec<u8>, xs: &[u32]) {
    put_u32(buf, xs.len() as u32);
    for &x in xs {
        put_u32(buf, x);
    }
}

/// Bounded, panic-free reader over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// An element count that still has to fit in the remaining bytes at
    /// `min_size` each — so a forged count cannot trigger a huge
    /// allocation before [`WireError::Truncated`] would fire anyway.
    fn count(&mut self, min_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_size.max(1)) > remaining {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, WireError> {
        let n = self.count(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    fn str(&mut self) -> Result<String, WireError> {
        let n = self.count(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(WireError::Trailing(left));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------------

mod opcode {
    pub const ADMIT: u8 = 0x01;
    pub const RETIRE: u8 = 0x02;
    pub const BATCH: u8 = 0x03;
    pub const QUERY: u8 = 0x04;
    pub const STATS: u8 = 0x05;
    pub const SHUTDOWN: u8 = 0x06;
    pub const QUERY_DELTA: u8 = 0x07;

    pub const ADMITTED: u8 = 0x81;
    pub const RETIRED: u8 = 0x82;
    pub const APPLIED: u8 = 0x83;
    pub const SOLUTION: u8 = 0x84;
    pub const STATS_OK: u8 = 0x85;
    pub const SHUTTING_DOWN: u8 = 0x86;
    pub const DELTA: u8 = 0x87;
    pub const ERROR: u8 = 0xEE;

    pub const OP_ADD: u8 = 0x00;
    pub const OP_REMOVE: u8 = 0x01;
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Build the full frame bytes (header + payload) for an opcode/payload
/// pair.
pub fn encode_frame(op: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(MAGIC);
    out.push(VERSION);
    out.push(op);
    out.push(0); // flags, reserved
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(payload);
    out
}

/// Parse a frame header; returns `(opcode, payload_len)`.
pub fn decode_header(header: &[u8]) -> Result<(u8, u32), WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if header[0] != MAGIC {
        return Err(WireError::BadMagic(header[0]));
    }
    if !(MIN_VERSION..=VERSION).contains(&header[1]) {
        return Err(WireError::UnknownVersion(header[1]));
    }
    if header[3] != 0 {
        return Err(WireError::NonZeroFlags(header[3]));
    }
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    Ok((header[2], len))
}

/// Errors reading a frame off a stream: transport-level I/O failures vs.
/// protocol-level [`WireError`]s (after which the stream is
/// unsynchronized and should be closed).
#[derive(Debug)]
#[non_exhaustive]
pub enum FrameReadError {
    /// The transport failed (or closed mid-frame).
    Io(io::Error),
    /// The bytes did not form a valid frame.
    Wire(WireError),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "i/o: {e}"),
            FrameReadError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl std::error::Error for FrameReadError {}

impl From<io::Error> for FrameReadError {
    fn from(e: io::Error) -> Self {
        FrameReadError::Io(e)
    }
}

impl From<WireError> for FrameReadError {
    fn from(e: WireError) -> Self {
        FrameReadError::Wire(e)
    }
}

/// Read one whole frame off a blocking stream. `Ok(None)` is a clean EOF
/// (the peer closed between frames); EOF mid-frame is an
/// [`FrameReadError::Io`] with `UnexpectedEof`.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameReadError> {
    let mut header = [0u8; HEADER_LEN];
    // Hand-rolled first-byte read so a clean close between frames is
    // distinguishable from a close inside one.
    let mut got = 0usize;
    while got < 1 {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    r.read_exact(&mut header[1..])?;
    let (op, len) = decode_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some((op, payload)))
}

/// Write one whole frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, op: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(op, payload))?;
    w.flush()
}

/// How many bytes one [`FrameDecoder::fill_from`] call asks the transport
/// for. Large enough that a burst of small frames lands in one syscall.
pub const READ_CHUNK: usize = 64 * 1024;

/// Once this many consumed bytes sit in front of the unread region, the
/// decoder memmoves the tail down instead of growing forever.
const COMPACT_THRESHOLD: usize = READ_CHUNK;

/// An incremental frame decoder: feed it bytes in arbitrary slices
/// (single bytes, half frames, three frames at once) and pull complete
/// frames out as they form. This is the nonblocking counterpart of
/// [`read_frame`] — the evented front-end's read path — and the two agree
/// exactly: any byte stream yields the same frame sequence either way.
///
/// Properties:
///
/// * **Total.** Header errors (bad magic, unknown version, oversized
///   length) surface as typed [`WireError`]s the moment the 8 header
///   bytes are present — never a panic, and never after buffering the
///   bogus payload. After an error the stream is unsynchronized and the
///   caller must close it; the decoder keeps returning the error.
/// * **Bounded.** [`MAX_PAYLOAD`] is enforced at the header, so the
///   internal buffer never grows past one maximum frame plus one read
///   chunk, no matter what a peer sends.
/// * **Allocation-free in steady state.** The buffer is retained across
///   frames (and can be handed in from / returned to a pool via
///   [`FrameDecoder::with_buffer`] / [`FrameDecoder::into_buffer`]);
///   consumed bytes are reclaimed by truncation or an occasional compact,
///   not by reallocating.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of the unread region in `buf`.
    start: usize,
}

impl FrameDecoder {
    /// A decoder with a fresh (empty) buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// A decoder reusing `buf`'s allocation (contents are discarded).
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        FrameDecoder { buf, start: 0 }
    }

    /// Dismantle the decoder, handing its buffer back (for a pool).
    pub fn into_buffer(mut self) -> Vec<u8> {
        self.buf.clear();
        self.buf
    }

    /// Bytes buffered but not yet consumed by [`FrameDecoder::next_frame`].
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reclaim consumed bytes: cheap truncate when fully drained, memmove
    /// when the dead prefix got large, nothing otherwise.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Append raw bytes (a test/adversarial entry point; the server path
    /// uses [`FrameDecoder::fill_from`]).
    pub fn push(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Issue one `read` against `r` for up to [`READ_CHUNK`] bytes,
    /// appending whatever arrives. `Ok(0)` is end-of-stream;
    /// `WouldBlock`/`Interrupted` errors pass through untranslated (the
    /// evented loop treats them as "try again on readiness").
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        self.compact();
        let old = self.buf.len();
        self.buf.resize(old + READ_CHUNK, 0);
        match r.read(&mut self.buf[old..]) {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                Err(e)
            }
        }
    }

    /// Pull the next complete frame, if one has fully arrived. Returns
    /// `Ok(None)` when more bytes are needed, `Ok(Some((opcode,
    /// payload)))` for a complete frame (the borrow ends before the next
    /// call — decode the payload immediately), or a typed [`WireError`]
    /// if the buffered bytes cannot be a frame.
    pub fn next_frame(&mut self) -> Result<Option<(u8, &[u8])>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let (op, len) = decode_header(&self.buf[self.start..self.start + HEADER_LEN])?;
        let total = HEADER_LEN + len as usize;
        if avail < total {
            return Ok(None);
        }
        let begin = self.start + HEADER_LEN;
        let end = self.start + total;
        self.start = end;
        Ok(Some((op, &self.buf[begin..end])))
    }
}

// ---------------------------------------------------------------------------
// Request encode/decode
// ---------------------------------------------------------------------------

impl Request {
    /// This request's opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Request::Admit { .. } => opcode::ADMIT,
            Request::Retire { .. } => opcode::RETIRE,
            Request::Batch { .. } => opcode::BATCH,
            Request::Query { .. } => opcode::QUERY,
            Request::Stats { .. } => opcode::STATS,
            Request::Shutdown => opcode::SHUTDOWN,
            Request::QueryDelta { .. } => opcode::QUERY_DELTA,
        }
    }

    /// Encode the payload body (no header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Admit { tenant, arcs } => {
                put_u64(&mut buf, *tenant);
                put_u32_slice(&mut buf, arcs);
            }
            Request::Retire { tenant, id } => {
                put_u64(&mut buf, *tenant);
                put_u32(&mut buf, *id);
            }
            Request::Batch { tenant, ops } => {
                put_u64(&mut buf, *tenant);
                put_u32(&mut buf, ops.len() as u32);
                for op in ops {
                    match op {
                        WireOp::Add(arcs) => {
                            buf.push(opcode::OP_ADD);
                            put_u32_slice(&mut buf, arcs);
                        }
                        WireOp::Remove(id) => {
                            buf.push(opcode::OP_REMOVE);
                            put_u32(&mut buf, *id);
                        }
                    }
                }
            }
            Request::Query { tenant } | Request::Stats { tenant } => {
                put_u64(&mut buf, *tenant);
            }
            Request::Shutdown => {}
            Request::QueryDelta { tenant, since } => {
                put_u64(&mut buf, *tenant);
                put_u64(&mut buf, *since);
            }
        }
        buf
    }

    /// Full framed bytes (header + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        encode_frame(self.opcode(), &self.encode_payload())
    }

    /// Decode a request from an opcode/payload pair (the output of
    /// [`read_frame`]). Response opcodes are [`WireError::UnknownOpcode`]
    /// here.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match op {
            opcode::ADMIT => Request::Admit {
                tenant: r.u64()?,
                arcs: r.u32_vec()?,
            },
            opcode::RETIRE => Request::Retire {
                tenant: r.u64()?,
                id: r.u32()?,
            },
            opcode::BATCH => {
                let tenant = r.u64()?;
                // Each op is at least 1 tag byte + 4 payload bytes.
                let n = r.count(5)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(match r.u8()? {
                        opcode::OP_ADD => WireOp::Add(r.u32_vec()?),
                        opcode::OP_REMOVE => WireOp::Remove(r.u32()?),
                        _ => return Err(WireError::Malformed("unknown batch-op tag")),
                    });
                }
                Request::Batch { tenant, ops }
            }
            opcode::QUERY => Request::Query { tenant: r.u64()? },
            opcode::STATS => Request::Stats { tenant: r.u64()? },
            opcode::SHUTDOWN => Request::Shutdown,
            opcode::QUERY_DELTA => Request::QueryDelta {
                tenant: r.u64()?,
                since: r.u64()?,
            },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }

    /// Decode a request from full frame bytes; returns the message and the
    /// bytes consumed. The exact inverse of [`Request::to_frame`].
    pub fn from_frame(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let (op, len) = decode_header(bytes)?;
        let end = HEADER_LEN + len as usize;
        if bytes.len() < end {
            return Err(WireError::Truncated);
        }
        let req = Self::decode(op, &bytes[HEADER_LEN..end])?;
        Ok((req, end))
    }
}

// ---------------------------------------------------------------------------
// Response encode/decode
// ---------------------------------------------------------------------------

impl Response {
    /// This response's opcode.
    pub fn opcode(&self) -> u8 {
        match self {
            Response::Admitted { .. } => opcode::ADMITTED,
            Response::Retired => opcode::RETIRED,
            Response::Applied { .. } => opcode::APPLIED,
            Response::Solution(_) => opcode::SOLUTION,
            Response::Stats(_) => opcode::STATS_OK,
            Response::Delta(_) => opcode::DELTA,
            Response::ShuttingDown => opcode::SHUTTING_DOWN,
            Response::Error { .. } => opcode::ERROR,
        }
    }

    /// Encode the payload body (no header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_payload_into(&mut buf);
        buf
    }

    /// Encode the payload body (no header) by appending to `buf` — the
    /// allocation-free path: a pooled buffer encodes frame after frame
    /// without ever reallocating in steady state.
    pub fn encode_payload_into(&self, buf: &mut Vec<u8>) {
        match self {
            Response::Admitted { id } => put_u32(buf, *id),
            Response::Retired | Response::ShuttingDown => {}
            Response::Applied { added } => put_u32_slice(buf, added),
            Response::Solution(s) => {
                put_u32(buf, s.num_colors);
                put_u32(buf, s.load);
                buf.push(u8::from(s.optimal));
                put_u32(buf, s.shard_count);
                put_str(buf, &s.strategy);
                put_u32(buf, s.colors.len() as u32);
                for &(id, color) in &s.colors {
                    put_u32(buf, id);
                    put_u32(buf, color);
                }
            }
            Response::Stats(s) => {
                for v in [
                    s.live_paths,
                    s.shard_count,
                    s.max_load,
                    s.recomputes,
                    s.shards_reused,
                    s.shards_resolved,
                    s.batches,
                    s.applies,
                    s.queries,
                    s.interned_arc_lists,
                    s.intern_hits,
                    s.intern_misses,
                    s.epoch,
                    s.delta_queries,
                    s.delta_resyncs,
                    s.bytes_in,
                    s.bytes_out,
                    s.busy_rejections,
                    s.max_write_queue,
                ] {
                    put_u64(buf, v);
                }
            }
            Response::Delta(d) => {
                put_u64(buf, d.epoch);
                put_u32(buf, d.span);
                buf.push(u8::from(d.full_resync));
                put_u32(buf, d.changes.len() as u32);
                for &(id, color) in &d.changes {
                    put_u32(buf, id);
                    put_u32(buf, color);
                }
                put_u32_slice(buf, &d.removed);
            }
            Response::Error { code, message } => {
                put_u16(buf, code.to_u16());
                put_str(buf, message);
            }
        }
    }

    /// Full framed bytes (header + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_frame_into(&mut out);
        out
    }

    /// Encode the full frame (header + payload) into `out`, clearing it
    /// first. The header's length field is back-patched after the payload
    /// is written, so the body is encoded exactly once, straight into the
    /// (typically pooled) output buffer.
    pub fn encode_frame_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.push(MAGIC);
        out.push(VERSION);
        out.push(self.opcode());
        out.push(0); // flags, reserved
        out.extend_from_slice(&[0u8; 4]); // length, patched below
        self.encode_payload_into(out);
        let len = (out.len() - HEADER_LEN) as u32;
        out[4..HEADER_LEN].copy_from_slice(&len.to_le_bytes());
    }

    /// Decode a response from an opcode/payload pair. Request opcodes are
    /// [`WireError::UnknownOpcode`] here.
    pub fn decode(op: u8, payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let resp = match op {
            opcode::ADMITTED => Response::Admitted { id: r.u32()? },
            opcode::RETIRED => Response::Retired,
            opcode::APPLIED => Response::Applied {
                added: r.u32_vec()?,
            },
            opcode::SOLUTION => {
                let num_colors = r.u32()?;
                let load = r.u32()?;
                let optimal = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("optimal flag not 0/1")),
                };
                let shard_count = r.u32()?;
                let strategy = r.str()?;
                let n = r.count(8)?;
                let mut colors = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.u32()?;
                    let color = r.u32()?;
                    colors.push((id, color));
                }
                Response::Solution(WireSolution {
                    num_colors,
                    load,
                    optimal,
                    shard_count,
                    strategy,
                    colors,
                })
            }
            opcode::STATS_OK => {
                let mut s = WireStats {
                    live_paths: r.u64()?,
                    shard_count: r.u64()?,
                    max_load: r.u64()?,
                    recomputes: r.u64()?,
                    shards_reused: r.u64()?,
                    shards_resolved: r.u64()?,
                    batches: r.u64()?,
                    applies: r.u64()?,
                    queries: r.u64()?,
                    ..WireStats::default()
                };
                // v1 payloads end here; the v2 counters read as zero.
                if !r.is_empty() {
                    s.interned_arc_lists = r.u64()?;
                    s.intern_hits = r.u64()?;
                    s.intern_misses = r.u64()?;
                    s.epoch = r.u64()?;
                    s.delta_queries = r.u64()?;
                    s.delta_resyncs = r.u64()?;
                }
                // Early-v2 payloads end here; the transport counters
                // (added with the evented front-end) read as zero.
                if !r.is_empty() {
                    s.bytes_in = r.u64()?;
                    s.bytes_out = r.u64()?;
                    s.busy_rejections = r.u64()?;
                    s.max_write_queue = r.u64()?;
                }
                Response::Stats(s)
            }
            opcode::DELTA => {
                let epoch = r.u64()?;
                let span = r.u32()?;
                let full_resync = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::Malformed("full-resync flag not 0/1")),
                };
                let n = r.count(8)?;
                let mut changes = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = r.u32()?;
                    let color = r.u32()?;
                    changes.push((id, color));
                }
                let removed = r.u32_vec()?;
                Response::Delta(WireDelta {
                    epoch,
                    span,
                    full_resync,
                    changes,
                    removed,
                })
            }
            opcode::SHUTTING_DOWN => Response::ShuttingDown,
            opcode::ERROR => Response::Error {
                code: ErrorCode::from_u16(r.u16()?),
                message: r.str()?,
            },
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }

    /// Decode a response from full frame bytes; returns the message and
    /// the bytes consumed. The exact inverse of [`Response::to_frame`].
    pub fn from_frame(bytes: &[u8]) -> Result<(Self, usize), WireError> {
        let (op, len) = decode_header(bytes)?;
        let end = HEADER_LEN + len as usize;
        if bytes.len() < end {
            return Err(WireError::Truncated);
        }
        let resp = Self::decode(op, &bytes[HEADER_LEN..end])?;
        Ok((resp, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_pin_admit_frame_bytes() {
        // The byte layout documented in the module header, pinned exactly:
        // Admit { tenant: 2, arcs: [7, 300] }.
        let req = Request::Admit {
            tenant: 2,
            arcs: vec![7, 300],
        };
        let bytes = req.to_frame();
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            0xDA, 0x02, 0x01, 0x00,     // magic, version, opcode, flags
            20, 0, 0, 0,                // payload length
            2, 0, 0, 0, 0, 0, 0, 0,     // tenant u64
            2, 0, 0, 0,                 // arc count
            7, 0, 0, 0,                 // arc 7
            44, 1, 0, 0,                // arc 300
        ];
        assert_eq!(bytes, expected);
        let (back, used) = Request::from_frame(&bytes).unwrap();
        assert_eq!(back, req);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn spec_pin_query_delta_frame_bytes() {
        // The v2 delta request, pinned exactly:
        // QueryDelta { tenant: 3, since: 9 }.
        let req = Request::QueryDelta {
            tenant: 3,
            since: 9,
        };
        let bytes = req.to_frame();
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            0xDA, 0x02, 0x07, 0x00,     // magic, version, opcode, flags
            16, 0, 0, 0,                // payload length
            3, 0, 0, 0, 0, 0, 0, 0,     // tenant u64
            9, 0, 0, 0, 0, 0, 0, 0,     // since-epoch u64
        ];
        assert_eq!(bytes, expected);
        let (back, used) = Request::from_frame(&bytes).unwrap();
        assert_eq!(back, req);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn delta_response_round_trips() {
        let resp = Response::Delta(WireDelta {
            epoch: 12,
            span: 4,
            full_resync: false,
            changes: vec![(0, 2), (5, 0)],
            removed: vec![3],
        });
        let bytes = resp.to_frame();
        let (back, used) = Response::from_frame(&bytes).unwrap();
        assert_eq!(back, resp);
        assert_eq!(used, bytes.len());
        // A bad resync flag is a typed error, not a panic.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        put_u32(&mut payload, 1);
        payload.push(7); // flag must be 0/1
        put_u32(&mut payload, 0);
        put_u32(&mut payload, 0);
        let bytes = encode_frame(0x87, &payload);
        assert_eq!(
            Response::from_frame(&bytes),
            Err(WireError::Malformed("full-resync flag not 0/1"))
        );
    }

    #[test]
    fn v1_frames_still_decode() {
        // A v1 peer's frame (version byte 0x01) must keep decoding.
        let mut bytes = Request::Query { tenant: 5 }.to_frame();
        bytes[1] = 0x01;
        let (back, _) = Request::from_frame(&bytes).unwrap();
        assert_eq!(back, Request::Query { tenant: 5 });
        // A v1 stats payload (9 counters) decodes with the v2 tail zeroed.
        let mut payload = Vec::new();
        for v in 1..=9u64 {
            put_u64(&mut payload, v);
        }
        let mut bytes = encode_frame(0x85, &payload);
        bytes[1] = 0x01;
        let (back, _) = Response::from_frame(&bytes).unwrap();
        let Response::Stats(s) = back else {
            panic!("expected stats");
        };
        assert_eq!(s.live_paths, 1);
        assert_eq!(s.queries, 9);
        assert_eq!(s.interned_arc_lists, 0);
        assert_eq!(s.delta_resyncs, 0);
        // Below MIN_VERSION (0) and above VERSION (9) are both rejected.
        let good = Request::Shutdown.to_frame();
        for v in [0u8, 9] {
            let mut bad = good.clone();
            bad[1] = v;
            assert_eq!(Request::from_frame(&bad), Err(WireError::UnknownVersion(v)));
        }
    }

    #[test]
    fn header_rejections_are_typed() {
        let good = Request::Shutdown.to_frame();
        let mut bad = good.clone();
        bad[0] = 0x00;
        assert_eq!(Request::from_frame(&bad), Err(WireError::BadMagic(0)));
        let mut bad = good.clone();
        bad[1] = 9;
        assert_eq!(Request::from_frame(&bad), Err(WireError::UnknownVersion(9)));
        let mut bad = good.clone();
        bad[2] = 0x7F;
        assert_eq!(
            Request::from_frame(&bad),
            Err(WireError::UnknownOpcode(0x7F))
        );
        let mut bad = good.clone();
        bad[3] = 1;
        assert_eq!(Request::from_frame(&bad), Err(WireError::NonZeroFlags(1)));
        let mut bad = good;
        bad[4..8].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            Request::from_frame(&bad),
            Err(WireError::Oversized(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn forged_count_cannot_allocate_past_payload() {
        // A Batch frame claiming u32::MAX ops in a 12-byte payload must
        // fail with Truncated before any element is allocated.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0);
        put_u32(&mut payload, u32::MAX);
        let bytes = encode_frame(0x03, &payload);
        assert_eq!(Request::from_frame(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Request::Query { tenant: 1 }.encode_payload();
        payload.push(0xAB);
        let bytes = encode_frame(0x04, &payload);
        assert_eq!(Request::from_frame(&bytes), Err(WireError::Trailing(1)));
    }

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::UnknownVersion,
            ErrorCode::UnknownOpcode,
            ErrorCode::Malformed,
            ErrorCode::Oversized,
            ErrorCode::UnknownPath,
            ErrorCode::InvalidPath,
            ErrorCode::SpanBudgetExceeded,
            ErrorCode::Solver,
            ErrorCode::ShuttingDown,
            ErrorCode::Busy,
            ErrorCode::Other(700),
        ] {
            assert_eq!(ErrorCode::from_u16(code.to_u16()), code);
        }
        // Busy's octet is pinned: changing it is a wire break.
        assert_eq!(ErrorCode::Busy.to_u16(), 10);
    }

    #[test]
    fn early_v2_stats_payloads_still_decode() {
        // A 15-counter stats payload (pre-transport-counter v2) decodes
        // with the 4-counter tail zeroed; a full 19-counter payload
        // round-trips every field.
        let mut payload = Vec::new();
        for v in 1..=15u64 {
            put_u64(&mut payload, v);
        }
        let bytes = encode_frame(0x85, &payload);
        let (back, _) = Response::from_frame(&bytes).unwrap();
        let Response::Stats(s) = back else {
            panic!("expected stats");
        };
        assert_eq!(s.delta_resyncs, 15);
        assert_eq!(s.bytes_in, 0);
        assert_eq!(s.max_write_queue, 0);

        let full = Response::Stats(WireStats {
            bytes_in: 101,
            bytes_out: 102,
            busy_rejections: 103,
            max_write_queue: 104,
            ..WireStats::default()
        });
        let (back, _) = Response::from_frame(&full.to_frame()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn streaming_decoder_matches_whole_frame_reads() {
        // Three frames delivered one byte at a time come out identical to
        // what from_frame sees, in order, with nothing left over.
        let frames = [
            Request::Admit {
                tenant: 1,
                arcs: vec![3, 4, 5],
            },
            Request::Query { tenant: 2 },
            Request::Shutdown,
        ];
        let bytes: Vec<u8> = frames.iter().flat_map(|f| f.to_frame()).collect();
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &bytes {
            dec.push(std::slice::from_ref(b));
            while let Some((op, payload)) = dec.next_frame().unwrap() {
                got.push(Request::decode(op, payload).unwrap());
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn streaming_decoder_header_errors_are_typed_and_early() {
        // An oversized length is rejected as soon as the header is
        // complete — no payload ever buffers.
        let mut dec = FrameDecoder::new();
        let mut header = vec![MAGIC, VERSION, 0x04, 0x00];
        header.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        dec.push(&header[..7]);
        assert_eq!(dec.next_frame(), Ok(None), "incomplete header waits");
        dec.push(&header[7..]);
        assert_eq!(dec.next_frame(), Err(WireError::Oversized(MAX_PAYLOAD + 1)));
        // Bad magic surfaces the same way.
        let mut dec = FrameDecoder::new();
        dec.push(&[0x00; HEADER_LEN]);
        assert_eq!(dec.next_frame(), Err(WireError::BadMagic(0)));
    }

    #[test]
    fn streaming_decoder_reuses_pooled_buffers() {
        let frame = Request::Stats { tenant: 7 }.to_frame();
        let mut dec = FrameDecoder::with_buffer(Vec::with_capacity(READ_CHUNK));
        dec.push(&frame);
        let (op, payload) = dec.next_frame().unwrap().expect("one frame");
        assert_eq!(
            Request::decode(op, payload),
            Ok(Request::Stats { tenant: 7 })
        );
        let buf = dec.into_buffer();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= READ_CHUNK, "pooled capacity survives");
    }

    #[test]
    fn encode_frame_into_matches_to_frame() {
        let resp = Response::Stats(WireStats {
            live_paths: 3,
            bytes_in: 9,
            ..WireStats::default()
        });
        let mut pooled = vec![0xFF; 64]; // stale pooled contents
        resp.encode_frame_into(&mut pooled);
        assert_eq!(pooled, resp.to_frame());
    }

    #[test]
    fn stream_read_distinguishes_clean_eof_from_mid_frame_eof() {
        let frame = Request::Stats { tenant: 3 }.to_frame();
        let mut cursor = io::Cursor::new(frame.clone());
        let (op, payload) = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(
            Request::decode(op, &payload),
            Ok(Request::Stats { tenant: 3 })
        );
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
        let mut cursor = io::Cursor::new(frame[..frame.len() - 1].to_vec());
        match read_frame(&mut cursor) {
            Err(FrameReadError::Io(e)) => {
                assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected mid-frame EOF error, got {other:?}"),
        }
    }
}
