//! # dagwave-serve
//!
//! The service layer over the incremental [`Workspace`]: a versioned
//! binary wire protocol on TCP, a server with selectable front-ends
//! (thread-per-connection, or a single-threaded `poll(2)` reactor), and a
//! single-writer actor per tenant that coalesces queued mutations into
//! shared recomputations.
//!
//! The `Workspace` (dagwave-core) already makes re-solves O(dirty): only
//! conflict components touched by a mutation are recomputed, the rest are
//! served from shard caches. This crate turns that engine into a
//! long-lived network service without giving up its single-writer design:
//!
//! * [`protocol`] — the frame format: 8-byte header (magic `0xDA`,
//!   version, opcode, u32 length), hand-rolled encode/decode, total
//!   (panic-free) parsing with typed [`protocol::WireError`]s.
//! * [`actor`] — one thread owns one workspace behind an mpsc queue;
//!   queued mutation batches coalesce into a single `Workspace::apply`,
//!   so N writers racing each other share one recomputation instead of
//!   paying N. Admission control (span budget) rejects mutations that
//!   would push any arc's load past a ceiling — load is the paper's lower
//!   bound `π(G, P)`, so on internal-cycle-free DAGs the budget *is* a
//!   wavelength-count guarantee (`w = π`, Theorem 1). The
//!   [`actor::AdmissionPolicy`] decides whether over-budget batches are
//!   rejected immediately or parked until capacity frees.
//! * [`server`] — `std::net` listener, a registry thread that owns the
//!   tenant map (multi-tenant: independent workspaces keyed by a `u64`
//!   tenant id), channel-based shutdown, and two front-ends selected by
//!   [`server::FrontEnd`]: one blocking thread per connection, or a
//!   single-threaded `poll(2)` reactor (unix) whose OS thread count is
//!   independent of connection count.
//! * `reactor` (unix) — the evented front-end: nonblocking sockets,
//!   incremental frame decode, pooled buffers, bounded write queues with
//!   typed `Busy` backpressure.
//! * [`client`] — a blocking request/response client used by the tests,
//!   the demo binary, and the bench harness.
//!
//! ```no_run
//! use dagwave_core::{SolveSession, Workspace};
//! use dagwave_graph::builder::from_edges;
//! use dagwave_paths::DipathFamily;
//! use dagwave_serve::{Client, Server, ServerConfig};
//!
//! let factory = Box::new(|_tenant: u64| {
//!     let g = from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
//!     Workspace::new(SolveSession::auto(), g, DipathFamily::new())
//! });
//! let handle = Server::bind("127.0.0.1:0", factory, ServerConfig::default())?
//!     .spawn();
//!
//! let mut client = Client::connect(handle.addr())?;
//! let id = client.admit(0, vec![0, 1])?; // dipath over arcs 0→1
//! let solution = client.query(0)?;
//! assert_eq!(solution.num_colors, 1);
//! client.retire(0, id)?;
//! client.shutdown()?;
//! handle.join()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Workspace`]: dagwave_core::Workspace

// `deny` rather than `forbid`: the reactor's `sys` module carries the
// crate's only `#[allow(unsafe_code)]`, confining FFI to one reviewed spot.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod client;
pub mod protocol;
#[cfg(unix)]
mod reactor;
pub mod server;

pub use actor::{
    ActorConfig, ActorOp, ActorStats, AdmissionPolicy, ServeError, Snapshot, TenantHandle,
};
pub use client::{Client, ClientError};
pub use protocol::{
    ErrorCode, Request, Response, WireDelta, WireError, WireOp, WireSolution, WireStats,
};
pub use server::{FrontEnd, Server, ServerConfig, ServerHandle, WorkspaceFactory};
