//! The single-writer tenant actor: one thread owns one [`Workspace`]
//! behind a **bounded** mpsc command queue.
//!
//! The `Workspace` is single-writer by design (every mutation rewrites
//! shard caches in place), so the service never shares it behind a lock.
//! Instead each tenant gets an **actor**: a dedicated thread that drains a
//! command channel, and any number of connection threads holding cloneable
//! [`TenantHandle`]s that enqueue commands and block on a per-request
//! reply channel. Ordering within one connection is the order it sends;
//! across connections, the queue order.
//!
//! # Backpressure
//!
//! The command queue is a `sync_channel` bounded at
//! [`ActorConfig::queue_depth`]. Blocking callers ([`TenantHandle`]
//! methods) simply wait when the actor is behind — natural backpressure
//! for the threaded front-end. The evented front-end instead uses the
//! non-blocking crate-internal send and surfaces a full queue to the
//! client as a typed `Busy` error, so the reactor thread never blocks on
//! a saturated actor.
//!
//! # Coalescing
//!
//! When mutations arrive faster than the workspace re-solves, the actor
//! drains every already-queued mutation batch (up to a configurable cap)
//! and applies them as **one** `Workspace::apply` call. Id assignment is
//! deterministic (smallest free slot, in op order), so a coalesced apply
//! assigns exactly the ids a sequential application would — coalescing is
//! invisible to clients except in the [`ActorStats::applies`] counter
//! staying below [`ActorStats::batches`]. Queries and stats are never
//! reordered past the point they were queued: the drain defers the first
//! non-mutation command and handles it right after the combined apply.
//!
//! # Admission control
//!
//! With a span budget configured, each client batch is checked against the
//! projected per-arc load (current load + deltas of batches already
//! accepted in this drain + the batch's own preceding ops) and rejected
//! with [`ServeError::SpanBudgetExceeded`] before anything is applied.
//! Rejected batches contribute no deltas. A `Remove` naming an id admitted
//! earlier in the *same* batch is not credited back (the projection keeps
//! the conservative, higher load); removes of live ids are credited.
//!
//! Under [`AdmissionPolicy::Wait`] an over-budget batch **parks** instead
//! of failing: it waits until retirements free enough capacity, falling
//! back to the same typed rejection when its timeout elapses or the
//! parking queue is full. Batches that fit the budget — retirements in
//! particular — still apply immediately while others are parked:
//! otherwise the capacity a `Remove` would free could never free. Parked
//! batches retry in arrival order after every mutation, and the timeout
//! bounds how long an overtaken batch can wait. Queries are served
//! immediately against the current state either way.

use std::collections::VecDeque;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
// lint: allow(no-wallclock): Wait-admission deadlines are client-visible wall time, not solver timing
use std::time::Instant;

use dagwave_core::{
    CoreError, Epoch, Mutation, Solution, SolutionDelta, Workspace, WorkspaceStats,
};
use dagwave_graph::ArcId;
use dagwave_paths::{Dipath, PathId};

/// One mutation as the service expresses it: arc-id sequences in, stable
/// path ids out. The actor owns the graph, so it (not the connection
/// thread) materializes [`Dipath`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ActorOp {
    /// Admit the dipath with this arc sequence.
    Add(Vec<ArcId>),
    /// Retire this live stable id.
    Remove(PathId),
}

/// Service-layer failures surfaced to clients.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The solver/workspace rejected the request.
    Core(CoreError),
    /// Admission control rejected a mutation batch: applying it would
    /// raise some arc's load past the configured budget (immediately
    /// under [`AdmissionPolicy::Reject`]; after the wait timeout or on
    /// queue overflow under [`AdmissionPolicy::Wait`]).
    SpanBudgetExceeded {
        /// The configured ceiling.
        budget: usize,
        /// The projected post-batch maximum load.
        projected: usize,
    },
    /// The actor has stopped (server shutting down).
    Stopped,
    /// The actor's bounded command queue is full (evented front-end
    /// only — blocking handles wait instead). Transient: retry after
    /// draining responses.
    Busy,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::SpanBudgetExceeded { budget, projected } => write!(
                f,
                "admission rejected: projected span {projected} exceeds budget {budget}"
            ),
            ServeError::Stopped => write!(f, "tenant actor has stopped"),
            ServeError::Busy => write!(f, "tenant actor queue is full; retry"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// What admission control does with a batch whose projected load exceeds
/// the span budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Reject immediately with [`ServeError::SpanBudgetExceeded`].
    Reject,
    /// Park the batch until retirements free capacity, then apply it
    /// (batches that fit the budget still apply immediately meanwhile).
    /// Falls back to the typed rejection when `timeout` elapses or the
    /// parking queue already holds `max_queue` batches.
    Wait {
        /// Most batches the parking queue holds before rejecting
        /// immediately.
        max_queue: usize,
        /// How long one batch may wait before the typed rejection.
        timeout: Duration,
    },
}

/// Per-tenant actor knobs (see [`spawn_tenant`]).
#[derive(Clone, Copy, Debug)]
pub struct ActorConfig {
    /// Admission ceiling on any arc's load (`None` = admit everything).
    pub span_budget: Option<usize>,
    /// Max queued mutation batches one `Workspace::apply` may coalesce.
    pub max_coalesce: usize,
    /// Bound on the actor's command queue; senders beyond it block
    /// (threaded) or get [`ServeError::Busy`] (evented).
    pub queue_depth: usize,
    /// What to do with over-budget batches.
    pub admission: AdmissionPolicy,
}

impl Default for ActorConfig {
    fn default() -> Self {
        ActorConfig {
            span_budget: None,
            max_coalesce: 64,
            queue_depth: 256,
            admission: AdmissionPolicy::Reject,
        }
    }
}

/// Cumulative service-side counters for one tenant actor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActorStats {
    /// Client mutation batches accepted (admission passed, apply
    /// succeeded).
    pub batches: u64,
    /// `Workspace::apply` calls those batches were coalesced into.
    /// `batches / applies` is the coalescing ratio; above 1 means queued
    /// batches shared recomputations.
    pub applies: u64,
    /// Solution queries served.
    pub queries: u64,
    /// Delta queries served ([`TenantHandle::query_delta`]).
    pub delta_queries: u64,
}

/// An immutable view of one solved state: the solution plus the stable id
/// of each dipath, aligned with the assignment's dense ranks
/// (`solution.assignment.colors()[i]` is the wavelength of `ids[i]`).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The solved state.
    pub solution: Arc<Solution>,
    /// Stable path id per dense rank at snapshot time.
    pub ids: Arc<Vec<PathId>>,
}

/// The actor's answer to one command; the variant mirrors the command
/// kind so non-blocking callers can route completions without a typed
/// channel per request.
pub(crate) enum ActorReply {
    /// Answer to [`Command::Apply`].
    Applied(Result<Vec<PathId>, ServeError>),
    /// Answer to [`Command::Query`].
    Snapshot(Result<Snapshot, ServeError>),
    /// Answer to [`Command::QueryDelta`].
    Delta(Result<SolutionDelta, ServeError>),
    /// Answer to [`Command::Stats`].
    Stats(Box<(WorkspaceStats, ActorStats)>),
}

/// Where one command's reply goes: a blocking per-request channel
/// (threaded front-end) or a callback that posts a completion and wakes
/// the reactor (evented front-end). Decouples the actor from reactor
/// types.
pub(crate) enum Responder {
    Blocking(mpsc::Sender<ActorReply>),
    Callback(Box<dyn FnOnce(ActorReply) + Send>),
}

impl Responder {
    fn send(self, reply: ActorReply) {
        match self {
            // A dropped receiver just means the client went away.
            Responder::Blocking(tx) => drop(tx.send(reply)),
            Responder::Callback(f) => f(reply),
        }
    }
}

pub(crate) enum Command {
    Apply {
        ops: Vec<ActorOp>,
        respond: Responder,
    },
    Query {
        respond: Responder,
    },
    QueryDelta {
        since: u64,
        respond: Responder,
    },
    Stats {
        respond: Responder,
    },
    Stop,
}

/// A cloneable client handle to one tenant actor. Every method enqueues a
/// command and blocks for the reply; [`ServeError::Stopped`] means the
/// actor is gone (shutdown). The queue is bounded, so a handle blocks in
/// `send` when the actor is [`ActorConfig::queue_depth`] commands behind.
#[derive(Clone)]
pub struct TenantHandle {
    tx: SyncSender<Command>,
}

impl TenantHandle {
    fn round_trip(
        &self,
        make: impl FnOnce(Responder) -> Command,
    ) -> Result<ActorReply, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(make(Responder::Blocking(reply_tx)))
            .map_err(|_| ServeError::Stopped)?;
        reply_rx.recv().map_err(|_| ServeError::Stopped)
    }

    /// Apply one mutation batch atomically. Returns the stable ids
    /// assigned to the batch's `Add` ops, in op order.
    pub fn apply(&self, ops: Vec<ActorOp>) -> Result<Vec<PathId>, ServeError> {
        match self.round_trip(|respond| Command::Apply { ops, respond })? {
            ActorReply::Applied(r) => r,
            _ => Err(ServeError::Stopped),
        }
    }

    /// Fetch the current solution snapshot (served from the workspace's
    /// shard caches when nothing changed since the last query).
    pub fn query(&self) -> Result<Snapshot, ServeError> {
        match self.round_trip(|respond| Command::Query { respond })? {
            ActorReply::Snapshot(r) => r,
            _ => Err(ServeError::Stopped),
        }
    }

    /// Fetch everything that changed since the client's last synced
    /// epoch — O(changed) on the actor thread, no full solution
    /// materialized. Replaying the deltas in epoch order reconstructs
    /// exactly the color table [`TenantHandle::query`] would report.
    pub fn query_delta(&self, since: u64) -> Result<SolutionDelta, ServeError> {
        match self.round_trip(|respond| Command::QueryDelta { since, respond })? {
            ActorReply::Delta(r) => r,
            _ => Err(ServeError::Stopped),
        }
    }

    /// Fetch the workspace's cumulative counters plus the actor's own.
    pub fn stats(&self) -> Result<(WorkspaceStats, ActorStats), ServeError> {
        match self.round_trip(|respond| Command::Stats { respond })? {
            ActorReply::Stats(pair) => Ok(*pair),
            _ => Err(ServeError::Stopped),
        }
    }

    /// Ask the actor to exit after draining already-queued commands.
    pub fn stop(&self) {
        let _ = self.tx.send(Command::Stop);
    }

    /// Non-blocking enqueue for the evented front-end: a full queue comes
    /// back as `Err` instead of blocking the reactor thread.
    pub(crate) fn try_send(&self, cmd: Command) -> Result<(), TrySendError<Command>> {
        self.tx.try_send(cmd)
    }
}

/// Spawn the actor thread for one tenant workspace.
pub fn spawn_tenant(
    workspace: Workspace,
    config: ActorConfig,
) -> (TenantHandle, thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
    // lint: allow(no-raw-sync): the actor thread IS the synchronization design — one owner per workspace, mpsc the only coupling
    let join = thread::spawn(move || run_actor(workspace, rx, config));
    (TenantHandle { tx }, join)
}

struct PendingBatch {
    ops: Vec<ActorOp>,
    respond: Responder,
}

/// A batch held back by [`AdmissionPolicy::Wait`].
struct Parked {
    ops: Vec<ActorOp>,
    respond: Responder,
    /// When the typed rejection fires.
    // lint: allow(no-wallclock): the Wait deadline is wall time by contract
    deadline: Instant,
    /// The budget/projection pair reported if this batch times out.
    budget: usize,
    projected: usize,
}

enum Wake {
    Cmd(Command),
    /// The head parked batch's deadline passed.
    Tick,
    /// Every handle dropped.
    Closed,
}

fn next_wake(rx: &Receiver<Command>, parked: &VecDeque<Parked>) -> Wake {
    let Some(head) = parked.front() else {
        return match rx.recv() {
            Ok(cmd) => Wake::Cmd(cmd),
            Err(_) => Wake::Closed,
        };
    };
    // lint: allow(no-wallclock): sleeping toward the Wait deadline, not measuring solver time
    let wait = head.deadline.saturating_duration_since(Instant::now());
    match rx.recv_timeout(wait) {
        Ok(cmd) => Wake::Cmd(cmd),
        Err(RecvTimeoutError::Timeout) => Wake::Tick,
        Err(RecvTimeoutError::Disconnected) => Wake::Closed,
    }
}

fn run_actor(mut ws: Workspace, rx: Receiver<Command>, cfg: ActorConfig) {
    let mut stats = ActorStats::default();
    let mut snapshot: Option<Snapshot> = None;
    let mut parked: VecDeque<Parked> = VecDeque::new();
    loop {
        let cmd = match next_wake(&rx, &parked) {
            Wake::Cmd(cmd) => cmd,
            Wake::Tick => {
                expire_overdue(&mut parked);
                // The expired head may have been the only thing blocking a
                // smaller parked batch.
                if retry_parked(&mut ws, &cfg, &mut parked, &mut stats) {
                    snapshot = None;
                }
                continue;
            }
            Wake::Closed => {
                fail_parked(&mut parked);
                return;
            }
        };
        match cmd {
            Command::Apply { ops, respond } => {
                // Drain whatever mutation batches are already queued so one
                // recomputation serves them all; defer the first
                // non-mutation command to preserve queue order.
                let mut pending = vec![PendingBatch { ops, respond }];
                let mut deferred = None;
                while pending.len() < cfg.max_coalesce.max(1) {
                    match rx.try_recv() {
                        Ok(Command::Apply { ops, respond }) => {
                            pending.push(PendingBatch { ops, respond })
                        }
                        Ok(other) => {
                            deferred = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                if handle_mutations(&mut ws, &cfg, pending, &mut parked, &mut stats) {
                    snapshot = None;
                }
                match deferred {
                    Some(Command::Stop) => {
                        fail_parked(&mut parked);
                        return;
                    }
                    Some(cmd) => serve_read(&mut ws, cmd, &mut stats, &mut snapshot),
                    None => {}
                }
            }
            Command::Stop => {
                fail_parked(&mut parked);
                return;
            }
            other => serve_read(&mut ws, other, &mut stats, &mut snapshot),
        }
    }
}

/// Admit, park, or reject each drained batch per policy, apply the
/// admitted ones in one combined `Workspace::apply`, then retry parked
/// batches if capacity changed. Returns whether the workspace mutated.
fn handle_mutations(
    ws: &mut Workspace,
    cfg: &ActorConfig,
    pending: Vec<PendingBatch>,
    parked: &mut VecDeque<Parked>,
    stats: &mut ActorStats,
) -> bool {
    // Per-arc load deltas of the batches accepted so far in this drain.
    let mut accepted_delta: Vec<i64> = Vec::new();
    let mut accepted: Vec<PendingBatch> = Vec::new();
    for batch in pending {
        // Batches that fit the budget apply immediately even while others
        // are parked — a later `Remove` must be able to overtake a parked
        // over-budget `Add`, or the capacity it would free never frees.
        // Parked batches retry in arrival order once something mutates,
        // and their timeout bounds how long an overtaken batch can wait.
        match admission_check(ws, cfg.span_budget, &batch.ops, &mut accepted_delta) {
            Ok(()) => accepted.push(batch),
            Err(e) => match cfg.admission {
                AdmissionPolicy::Reject => {
                    batch.respond.send(ActorReply::Applied(Err(e)));
                }
                AdmissionPolicy::Wait { .. } => park_or_reject(ws, cfg, batch, parked),
            },
        }
    }
    let mut mutated = apply_admitted(ws, accepted, stats);
    if mutated {
        mutated |= retry_parked(ws, cfg, parked, stats);
    }
    mutated
}

/// Park one over-budget batch, or reject it immediately when the parking
/// queue is full.
fn park_or_reject(
    ws: &Workspace,
    cfg: &ActorConfig,
    batch: PendingBatch,
    parked: &mut VecDeque<Parked>,
) {
    let budget = cfg.span_budget.unwrap_or(usize::MAX);
    let projected = batch_projection(ws, &batch.ops);
    let AdmissionPolicy::Wait { max_queue, timeout } = cfg.admission else {
        batch
            .respond
            .send(ActorReply::Applied(Err(ServeError::SpanBudgetExceeded {
                budget,
                projected,
            })));
        return;
    };
    if parked.len() >= max_queue {
        batch
            .respond
            .send(ActorReply::Applied(Err(ServeError::SpanBudgetExceeded {
                budget,
                projected,
            })));
        return;
    }
    parked.push_back(Parked {
        ops: batch.ops,
        respond: batch.respond,
        // lint: allow(no-wallclock): stamping the client-visible Wait deadline
        deadline: Instant::now() + timeout,
        budget,
        projected,
    });
}

/// Reject every parked batch whose deadline has passed. Deadlines are
/// monotone in arrival order (one shared timeout), so checking heads
/// suffices.
fn expire_overdue(parked: &mut VecDeque<Parked>) {
    // lint: allow(no-wallclock): comparing against the client-visible Wait deadline
    let now = Instant::now();
    while parked.front().is_some_and(|p| p.deadline <= now) {
        if let Some(p) = parked.pop_front() {
            p.respond
                .send(ActorReply::Applied(Err(ServeError::SpanBudgetExceeded {
                    budget: p.budget,
                    projected: p.projected,
                })));
        }
    }
}

/// Apply parked batches from the head while they fit the freed capacity
/// (strict FIFO — stop at the first that still does not). Returns whether
/// anything mutated.
fn retry_parked(
    ws: &mut Workspace,
    cfg: &ActorConfig,
    parked: &mut VecDeque<Parked>,
    stats: &mut ActorStats,
) -> bool {
    let mut mutated = false;
    while let Some(head) = parked.front() {
        let mut scratch = Vec::new();
        if admission_check(ws, cfg.span_budget, &head.ops, &mut scratch).is_err() {
            break;
        }
        let Some(p) = parked.pop_front() else { break };
        mutated |= apply_admitted(
            ws,
            vec![PendingBatch {
                ops: p.ops,
                respond: p.respond,
            }],
            stats,
        );
    }
    mutated
}

/// Answer every parked batch with `Stopped` (actor shutting down).
fn fail_parked(parked: &mut VecDeque<Parked>) {
    for p in parked.drain(..) {
        p.respond
            .send(ActorReply::Applied(Err(ServeError::Stopped)));
    }
}

/// Handle a Query/Stats command (never Apply/Stop).
fn serve_read(
    ws: &mut Workspace,
    cmd: Command,
    stats: &mut ActorStats,
    snapshot: &mut Option<Snapshot>,
) {
    match cmd {
        Command::Query { respond } => {
            stats.queries += 1;
            let snap = match snapshot {
                Some(snap) => Ok(snap.clone()),
                None => ws
                    .solution()
                    .map(|solution| {
                        // `solution` is already a shared snapshot — a
                        // repeat query bumps refcounts, nothing more.
                        let snap = Snapshot {
                            solution,
                            ids: Arc::new(ws.family().dense_ids().to_vec()),
                        };
                        *snapshot = Some(snap.clone());
                        snap
                    })
                    .map_err(ServeError::Core),
            };
            respond.send(ActorReply::Snapshot(snap));
        }
        Command::QueryDelta { since, respond } => {
            stats.delta_queries += 1;
            let delta = ws.delta_since(Epoch(since)).map_err(ServeError::Core);
            respond.send(ActorReply::Delta(delta));
        }
        Command::Stats { respond } => {
            respond.send(ActorReply::Stats(Box::new((ws.stats(), *stats))));
        }
        Command::Apply { respond, .. } => {
            // Unreachable by construction; answer rather than panic.
            respond.send(ActorReply::Applied(Err(ServeError::Stopped)));
        }
        Command::Stop => {}
    }
}

/// Apply admission-passed batches in a single `Workspace::apply` and
/// answer every reply channel. Returns whether the workspace mutated.
fn apply_admitted(ws: &mut Workspace, accepted: Vec<PendingBatch>, stats: &mut ActorStats) -> bool {
    if accepted.is_empty() {
        return false;
    }

    // One combined apply; split the returned ids by each batch's Add
    // count. Smallest-free-slot id assignment makes the combined ids
    // identical to what sequential per-batch applies would assign.
    let combined: Vec<Mutation> = match materialize(ws, &accepted) {
        Ok(muts) => muts,
        Err((idx, e)) => {
            // A dipath failed to materialize: fail that batch, retry the
            // rest individually (ids stay sequentialy consistent).
            return fail_one_then_apply_each(ws, accepted, idx, e, stats);
        }
    };
    match ws.apply(combined) {
        Ok(all_ids) => {
            stats.applies += 1;
            let mut cursor = 0usize;
            for batch in accepted {
                stats.batches += 1;
                let adds = batch
                    .ops
                    .iter()
                    .filter(|op| matches!(op, ActorOp::Add(_)))
                    .count();
                let ids = all_ids[cursor..cursor + adds].to_vec();
                cursor += adds;
                batch.respond.send(ActorReply::Applied(Ok(ids)));
            }
            true
        }
        Err(_) => {
            // The combined batch is atomic, so the workspace is untouched:
            // fall back to per-batch applies so one bad batch (e.g. a
            // stale Remove id) only fails its own sender.
            apply_each(ws, accepted, stats)
        }
    }
}

/// Build the dipath for an `Add`'s arc list, range-checking the arc ids
/// first (`Digraph` accessors index by arc id, so an out-of-range id must
/// be rejected here, as a typed error, before the graph ever sees it).
fn build_dipath(ws: &Workspace, arcs: &[ArcId]) -> Result<Dipath, ServeError> {
    let arc_count = ws.graph().arc_count();
    if let Some(bad) = arcs.iter().find(|a| a.index() >= arc_count) {
        return Err(ServeError::Core(CoreError::InvalidPath(format!(
            "arc id {} out of range (graph has {arc_count} arcs)",
            bad.0
        ))));
    }
    Dipath::from_arcs(ws.graph(), arcs.to_vec())
        .map_err(|e| ServeError::Core(CoreError::InvalidPath(e.to_string())))
}

/// Turn every accepted batch's ops into workspace mutations; on a bad
/// dipath, report which batch index failed.
fn materialize(
    ws: &Workspace,
    accepted: &[PendingBatch],
) -> Result<Vec<Mutation>, (usize, ServeError)> {
    let mut out = Vec::new();
    for (idx, batch) in accepted.iter().enumerate() {
        for op in &batch.ops {
            match op {
                ActorOp::Add(arcs) => {
                    out.push(Mutation::Add(build_dipath(ws, arcs).map_err(|e| (idx, e))?))
                }
                ActorOp::Remove(id) => out.push(Mutation::Remove(*id)),
            }
        }
    }
    Ok(out)
}

fn fail_one_then_apply_each(
    ws: &mut Workspace,
    mut accepted: Vec<PendingBatch>,
    bad: usize,
    err: ServeError,
    stats: &mut ActorStats,
) -> bool {
    let batch = accepted.remove(bad);
    batch.respond.send(ActorReply::Applied(Err(err)));
    apply_each(ws, accepted, stats)
}

/// Apply each batch on its own (the non-coalesced slow path after a
/// combined failure); answers every reply channel. Returns whether any
/// batch mutated the workspace.
fn apply_each(ws: &mut Workspace, batches: Vec<PendingBatch>, stats: &mut ActorStats) -> bool {
    let mut mutated = false;
    for batch in batches {
        let result = (|| -> Result<Vec<PathId>, ServeError> {
            let mut muts = Vec::with_capacity(batch.ops.len());
            for op in &batch.ops {
                match op {
                    ActorOp::Add(arcs) => muts.push(Mutation::Add(build_dipath(ws, arcs)?)),
                    ActorOp::Remove(id) => muts.push(Mutation::Remove(*id)),
                }
            }
            Ok(ws.apply(muts)?)
        })();
        if result.is_ok() {
            mutated = true;
            stats.batches += 1;
            stats.applies += 1;
        }
        batch.respond.send(ActorReply::Applied(result));
    }
    mutated
}

/// The projected post-batch maximum load of `ops` alone against the live
/// workspace (what admission would compare to the budget with nothing
/// else accepted). Used to report honest numbers for parked batches.
fn batch_projection(ws: &Workspace, ops: &[ActorOp]) -> usize {
    let accepted: Vec<i64> = vec![0; ws.graph().arc_count()];
    let mut own: Vec<i64> = vec![0; ws.graph().arc_count()];
    projected_span(ws, ops, &accepted, &mut own)
}

/// Project the per-arc load of applying `ops` on top of the already
/// accepted deltas; reject if any arc would exceed the budget, otherwise
/// fold the batch's deltas into `accepted_delta`.
fn admission_check(
    ws: &Workspace,
    span_budget: Option<usize>,
    ops: &[ActorOp],
    accepted_delta: &mut Vec<i64>,
) -> Result<(), ServeError> {
    let Some(budget) = span_budget else {
        return Ok(());
    };
    if accepted_delta.len() < ws.graph().arc_count() {
        accepted_delta.resize(ws.graph().arc_count(), 0);
    }
    let mut own_delta: Vec<i64> = vec![0; accepted_delta.len()];
    let projected_max = projected_span(ws, ops, accepted_delta, &mut own_delta);
    if projected_max > budget {
        return Err(ServeError::SpanBudgetExceeded {
            budget,
            projected: projected_max,
        });
    }
    for (acc, own) in accepted_delta.iter_mut().zip(&own_delta) {
        *acc += own;
    }
    Ok(())
}

/// Walk `ops` accumulating its own per-arc deltas into `own_delta` and
/// return the maximum load any arc is projected to reach (live load +
/// accepted deltas + the batch's own preceding ops).
fn projected_span(
    ws: &Workspace,
    ops: &[ActorOp],
    accepted_delta: &[i64],
    own_delta: &mut [i64],
) -> usize {
    let mut projected_max = 0usize;
    for op in ops {
        match op {
            ActorOp::Add(arcs) => {
                for &a in arcs {
                    let i = a.index();
                    if i >= own_delta.len() {
                        // Out-of-range arc: let `Dipath::from_arcs` produce
                        // the typed InvalidPath error downstream.
                        continue;
                    }
                    own_delta[i] += 1;
                    let accepted = accepted_delta.get(i).copied().unwrap_or(0);
                    let projected = (ws.arc_load(a) as i64) + accepted + own_delta[i];
                    projected_max = projected_max.max(projected.max(0) as usize);
                }
            }
            ActorOp::Remove(id) => {
                // Credit back a live member's arcs. An id admitted earlier
                // in this same drain is not resolvable here; skipping it
                // only keeps the projection conservative (too high, never
                // too low).
                if let Some(p) = ws.family().get(*id) {
                    for &a in p.arcs() {
                        let i = a.index();
                        if i < own_delta.len() {
                            own_delta[i] -= 1;
                        }
                    }
                }
            }
        }
    }
    projected_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_core::SolveSession;
    use dagwave_graph::builder::from_edges;
    use dagwave_paths::DipathFamily;

    fn line_workspace(n: usize) -> Workspace {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = from_edges(n, &edges);
        Workspace::new(SolveSession::auto(), g, DipathFamily::new()).expect("line DAG is valid")
    }

    fn arc_ids(ids: &[u32]) -> Vec<ArcId> {
        ids.iter().map(|&i| ArcId(i)).collect()
    }

    fn config(span_budget: Option<usize>) -> ActorConfig {
        ActorConfig {
            span_budget,
            ..ActorConfig::default()
        }
    }

    #[test]
    fn actor_round_trip_apply_query_stats_stop() {
        let (h, join) = spawn_tenant(line_workspace(5), config(None));
        let ids = h
            .apply(vec![
                ActorOp::Add(arc_ids(&[0, 1])),
                ActorOp::Add(arc_ids(&[1, 2])),
            ])
            .expect("two adds");
        assert_eq!(ids, vec![PathId(0), PathId(1)]);
        let snap = h.query().expect("solution");
        assert_eq!(snap.solution.num_colors, 2);
        assert_eq!(snap.ids.as_slice(), &[PathId(0), PathId(1)]);
        h.apply(vec![ActorOp::Remove(PathId(0))]).expect("remove");
        let snap = h.query().expect("solution after remove");
        assert_eq!(snap.solution.num_colors, 1);
        assert_eq!(snap.ids.as_slice(), &[PathId(1)]);
        let (ws_stats, actor_stats) = h.stats().expect("stats");
        assert_eq!(ws_stats.live_paths, 1);
        assert_eq!(actor_stats.batches, 2);
        assert_eq!(actor_stats.queries, 2);
        h.stop();
        join.join().expect("actor exits cleanly");
        assert!(matches!(h.query(), Err(ServeError::Stopped)));
    }

    #[test]
    fn delta_queries_flow_through_the_actor() {
        let (h, join) = spawn_tenant(line_workspace(5), config(None));
        h.apply(vec![ActorOp::Add(arc_ids(&[0, 1]))]).expect("add");
        let d0 = h.query_delta(0).expect("initial delta");
        assert!(!d0.full_resync);
        assert_eq!(d0.changes.len(), 1, "one live member, one change");
        h.apply(vec![ActorOp::Remove(PathId(0))]).expect("remove");
        let d1 = h.query_delta(d0.epoch.0).expect("second delta");
        assert_eq!(d1.removed, vec![PathId(0)]);
        assert!(d1.changes.is_empty());
        let (_, actor_stats) = h.stats().expect("stats");
        assert_eq!(actor_stats.delta_queries, 2);
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn budget_rejects_without_mutating() {
        let (h, join) = spawn_tenant(line_workspace(3), config(Some(2)));
        h.apply(vec![
            ActorOp::Add(arc_ids(&[0])),
            ActorOp::Add(arc_ids(&[0])),
        ])
        .expect("fills the budget");
        let err = h
            .apply(vec![ActorOp::Add(arc_ids(&[0, 1]))])
            .expect_err("third path through arc 0 exceeds budget 2");
        assert!(matches!(
            err,
            ServeError::SpanBudgetExceeded {
                budget: 2,
                projected: 3
            }
        ));
        // Retiring frees headroom: the credit is visible to admission.
        h.apply(vec![
            ActorOp::Remove(PathId(0)),
            ActorOp::Add(arc_ids(&[0, 1])),
        ])
        .expect("retire then admit inside one batch stays at load 2");
        let (ws_stats, _) = h.stats().expect("stats");
        assert_eq!(ws_stats.live_paths, 2);
        assert_eq!(ws_stats.max_load, 2);
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn stale_remove_fails_only_its_own_batch() {
        let (h, join) = spawn_tenant(line_workspace(4), config(None));
        let err = h
            .apply(vec![ActorOp::Remove(PathId(7))])
            .expect_err("id 7 was never allocated");
        assert!(matches!(
            err,
            ServeError::Core(CoreError::UnknownPath(PathId(7)))
        ));
        let ids = h
            .apply(vec![ActorOp::Add(arc_ids(&[2]))])
            .expect("workspace still healthy");
        assert_eq!(ids, vec![PathId(0)]);
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn invalid_arcs_yield_typed_invalid_path() {
        let (h, join) = spawn_tenant(line_workspace(3), config(None));
        let err = h
            .apply(vec![ActorOp::Add(arc_ids(&[99]))])
            .expect_err("arc 99 is out of range");
        assert!(matches!(err, ServeError::Core(CoreError::InvalidPath(_))));
        let err = h
            .apply(vec![ActorOp::Add(vec![ArcId(1), ArcId(0)])])
            .expect_err("non-contiguous arc order");
        assert!(matches!(err, ServeError::Core(CoreError::InvalidPath(_))));
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn wait_policy_parks_until_capacity_frees() {
        let cfg = ActorConfig {
            span_budget: Some(2),
            admission: AdmissionPolicy::Wait {
                max_queue: 4,
                timeout: Duration::from_secs(10),
            },
            ..ActorConfig::default()
        };
        let (h, join) = spawn_tenant(line_workspace(3), cfg);
        h.apply(vec![
            ActorOp::Add(arc_ids(&[0])),
            ActorOp::Add(arc_ids(&[0])),
        ])
        .expect("fills the budget");
        // The over-budget batch parks, so the blocking apply waits on a
        // helper thread while the main thread frees capacity.
        let h2 = h.clone();
        let waiter = thread::spawn(move || h2.apply(vec![ActorOp::Add(arc_ids(&[0, 1]))]));
        thread::sleep(Duration::from_millis(50));
        h.apply(vec![ActorOp::Remove(PathId(0))])
            .expect("retire frees a slot");
        let ids = waiter
            .join()
            .expect("waiter thread")
            .expect("parked batch applies once capacity frees");
        assert_eq!(ids.len(), 1);
        let (ws_stats, _) = h.stats().expect("stats");
        assert_eq!(ws_stats.live_paths, 2);
        assert_eq!(ws_stats.max_load, 2);
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn wait_policy_times_out_with_typed_error() {
        let cfg = ActorConfig {
            span_budget: Some(1),
            admission: AdmissionPolicy::Wait {
                max_queue: 4,
                timeout: Duration::from_millis(50),
            },
            ..ActorConfig::default()
        };
        let (h, join) = spawn_tenant(line_workspace(3), cfg);
        h.apply(vec![ActorOp::Add(arc_ids(&[0]))])
            .expect("fills the budget");
        let err = h
            .apply(vec![ActorOp::Add(arc_ids(&[0]))])
            .expect_err("no capacity ever frees, so the wait times out");
        assert!(matches!(
            err,
            ServeError::SpanBudgetExceeded {
                budget: 1,
                projected: 2
            }
        ));
        let (ws_stats, _) = h.stats().expect("stats");
        assert_eq!(ws_stats.live_paths, 1, "timed-out batch applied nothing");
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn wait_policy_overflow_rejects_immediately() {
        let cfg = ActorConfig {
            span_budget: Some(1),
            admission: AdmissionPolicy::Wait {
                max_queue: 1,
                timeout: Duration::from_secs(10),
            },
            ..ActorConfig::default()
        };
        let (h, join) = spawn_tenant(line_workspace(3), cfg);
        h.apply(vec![ActorOp::Add(arc_ids(&[0]))])
            .expect("fills the budget");
        // First over-budget batch parks (helper thread blocks on it).
        let h2 = h.clone();
        let waiter = thread::spawn(move || h2.apply(vec![ActorOp::Add(arc_ids(&[0]))]));
        thread::sleep(Duration::from_millis(50));
        // Second over-budget batch finds the queue full: typed rejection
        // without waiting out the 10s timeout.
        let err = h
            .apply(vec![ActorOp::Add(arc_ids(&[0]))])
            .expect_err("parking queue is full");
        assert!(matches!(err, ServeError::SpanBudgetExceeded { .. }));
        // Free capacity so the parked batch (still FIFO head) applies.
        h.apply(vec![ActorOp::Remove(PathId(0))])
            .expect("retire frees a slot");
        waiter
            .join()
            .expect("waiter thread")
            .expect("parked batch applies after the retire");
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn stop_fails_parked_batches_with_stopped() {
        let cfg = ActorConfig {
            span_budget: Some(1),
            admission: AdmissionPolicy::Wait {
                max_queue: 4,
                timeout: Duration::from_secs(10),
            },
            ..ActorConfig::default()
        };
        let (h, join) = spawn_tenant(line_workspace(3), cfg);
        h.apply(vec![ActorOp::Add(arc_ids(&[0]))])
            .expect("fills the budget");
        let h2 = h.clone();
        let waiter = thread::spawn(move || h2.apply(vec![ActorOp::Add(arc_ids(&[0]))]));
        thread::sleep(Duration::from_millis(50));
        h.stop();
        let err = waiter
            .join()
            .expect("waiter thread")
            .expect_err("shutdown fails the parked batch");
        assert!(matches!(err, ServeError::Stopped));
        join.join().expect("clean exit");
    }
}
