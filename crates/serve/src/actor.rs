//! The single-writer tenant actor: one thread owns one [`Workspace`]
//! behind an mpsc command queue.
//!
//! The `Workspace` is single-writer by design (every mutation rewrites
//! shard caches in place), so the service never shares it behind a lock.
//! Instead each tenant gets an **actor**: a dedicated thread that drains a
//! command channel, and any number of connection threads holding cloneable
//! [`TenantHandle`]s that enqueue commands and block on a per-request
//! reply channel. Ordering within one connection is the order it sends;
//! across connections, the queue order.
//!
//! # Coalescing
//!
//! When mutations arrive faster than the workspace re-solves, the actor
//! drains every already-queued mutation batch (up to a configurable cap)
//! and applies them as **one** `Workspace::apply` call. Id assignment is
//! deterministic (smallest free slot, in op order), so a coalesced apply
//! assigns exactly the ids a sequential application would — coalescing is
//! invisible to clients except in the [`ActorStats::applies`] counter
//! staying below [`ActorStats::batches`]. Queries and stats are never
//! reordered past the point they were queued: the drain defers the first
//! non-mutation command and handles it right after the combined apply.
//!
//! # Admission control
//!
//! With a span budget configured, each client batch is checked against the
//! projected per-arc load (current load + deltas of batches already
//! accepted in this drain + the batch's own preceding ops) and rejected
//! with [`ServeError::SpanBudgetExceeded`] before anything is applied.
//! Rejected batches contribute no deltas. A `Remove` naming an id admitted
//! earlier in the *same* batch is not credited back (the projection keeps
//! the conservative, higher load); removes of live ids are credited.

use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread;

use dagwave_core::{
    CoreError, Epoch, Mutation, Solution, SolutionDelta, Workspace, WorkspaceStats,
};
use dagwave_graph::ArcId;
use dagwave_paths::{Dipath, PathId};

/// One mutation as the service expresses it: arc-id sequences in, stable
/// path ids out. The actor owns the graph, so it (not the connection
/// thread) materializes [`Dipath`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ActorOp {
    /// Admit the dipath with this arc sequence.
    Add(Vec<ArcId>),
    /// Retire this live stable id.
    Remove(PathId),
}

/// Service-layer failures surfaced to clients.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The solver/workspace rejected the request.
    Core(CoreError),
    /// Admission control rejected a mutation batch: applying it would
    /// raise some arc's load past the configured budget.
    SpanBudgetExceeded {
        /// The configured ceiling.
        budget: usize,
        /// The projected post-batch maximum load.
        projected: usize,
    },
    /// The actor has stopped (server shutting down).
    Stopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "{e}"),
            ServeError::SpanBudgetExceeded { budget, projected } => write!(
                f,
                "admission rejected: projected span {projected} exceeds budget {budget}"
            ),
            ServeError::Stopped => write!(f, "tenant actor has stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

/// Cumulative service-side counters for one tenant actor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActorStats {
    /// Client mutation batches accepted (admission passed, apply
    /// succeeded).
    pub batches: u64,
    /// `Workspace::apply` calls those batches were coalesced into.
    /// `batches / applies` is the coalescing ratio; above 1 means queued
    /// batches shared recomputations.
    pub applies: u64,
    /// Solution queries served.
    pub queries: u64,
    /// Delta queries served ([`TenantHandle::query_delta`]).
    pub delta_queries: u64,
}

/// An immutable view of one solved state: the solution plus the stable id
/// of each dipath, aligned with the assignment's dense ranks
/// (`solution.assignment.colors()[i]` is the wavelength of `ids[i]`).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The solved state.
    pub solution: Arc<Solution>,
    /// Stable path id per dense rank at snapshot time.
    pub ids: Arc<Vec<PathId>>,
}

enum Command {
    Apply {
        ops: Vec<ActorOp>,
        reply: Sender<Result<Vec<PathId>, ServeError>>,
    },
    Query {
        reply: Sender<Result<Snapshot, ServeError>>,
    },
    QueryDelta {
        since: u64,
        reply: Sender<Result<SolutionDelta, ServeError>>,
    },
    Stats {
        reply: Sender<(WorkspaceStats, ActorStats)>,
    },
    Stop,
}

/// A cloneable client handle to one tenant actor. Every method enqueues a
/// command and blocks for the reply; [`ServeError::Stopped`] means the
/// actor is gone (shutdown).
#[derive(Clone)]
pub struct TenantHandle {
    tx: Sender<Command>,
}

impl TenantHandle {
    /// Apply one mutation batch atomically. Returns the stable ids
    /// assigned to the batch's `Add` ops, in op order.
    pub fn apply(&self, ops: Vec<ActorOp>) -> Result<Vec<PathId>, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Command::Apply { ops, reply })
            .map_err(|_| ServeError::Stopped)?;
        rx.recv().map_err(|_| ServeError::Stopped)?
    }

    /// Fetch the current solution snapshot (served from the workspace's
    /// shard caches when nothing changed since the last query).
    pub fn query(&self) -> Result<Snapshot, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Command::Query { reply })
            .map_err(|_| ServeError::Stopped)?;
        rx.recv().map_err(|_| ServeError::Stopped)?
    }

    /// Fetch everything that changed since the client's last synced
    /// epoch — O(changed) on the actor thread, no full solution
    /// materialized. Replaying the deltas in epoch order reconstructs
    /// exactly the color table [`TenantHandle::query`] would report.
    pub fn query_delta(&self, since: u64) -> Result<SolutionDelta, ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Command::QueryDelta { since, reply })
            .map_err(|_| ServeError::Stopped)?;
        rx.recv().map_err(|_| ServeError::Stopped)?
    }

    /// Fetch the workspace's cumulative counters plus the actor's own.
    pub fn stats(&self) -> Result<(WorkspaceStats, ActorStats), ServeError> {
        let (reply, rx) = mpsc::channel();
        self.tx
            .send(Command::Stats { reply })
            .map_err(|_| ServeError::Stopped)?;
        rx.recv().map_err(|_| ServeError::Stopped)
    }

    /// Ask the actor to exit after draining already-queued commands.
    pub fn stop(&self) {
        let _ = self.tx.send(Command::Stop);
    }
}

/// Spawn the actor thread for one tenant workspace. `span_budget` is the
/// admission ceiling (`None` = unlimited); `max_coalesce` caps how many
/// queued mutation batches one `Workspace::apply` may absorb.
pub fn spawn_tenant(
    workspace: Workspace,
    span_budget: Option<usize>,
    max_coalesce: usize,
) -> (TenantHandle, thread::JoinHandle<()>) {
    let (tx, rx) = mpsc::channel();
    // lint: allow(no-raw-sync): the actor thread IS the synchronization design — one owner per workspace, mpsc the only coupling
    let join = thread::spawn(move || run_actor(workspace, rx, span_budget, max_coalesce));
    (TenantHandle { tx }, join)
}

struct PendingBatch {
    ops: Vec<ActorOp>,
    reply: Sender<Result<Vec<PathId>, ServeError>>,
}

fn run_actor(
    mut ws: Workspace,
    rx: Receiver<Command>,
    span_budget: Option<usize>,
    max_coalesce: usize,
) {
    let mut stats = ActorStats::default();
    let mut snapshot: Option<Snapshot> = None;
    loop {
        let cmd = match rx.recv() {
            Ok(cmd) => cmd,
            Err(_) => return, // every handle dropped
        };
        match cmd {
            Command::Apply { ops, reply } => {
                // Drain whatever mutation batches are already queued so one
                // recomputation serves them all; defer the first
                // non-mutation command to preserve queue order.
                let mut pending = vec![PendingBatch { ops, reply }];
                let mut deferred = None;
                while pending.len() < max_coalesce.max(1) {
                    match rx.try_recv() {
                        Ok(Command::Apply { ops, reply }) => {
                            pending.push(PendingBatch { ops, reply })
                        }
                        Ok(other) => {
                            deferred = Some(other);
                            break;
                        }
                        Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
                    }
                }
                if coalesced_apply(&mut ws, span_budget, pending, &mut stats) {
                    snapshot = None;
                }
                match deferred {
                    Some(Command::Stop) => return,
                    Some(cmd) => serve_read(&mut ws, cmd, &mut stats, &mut snapshot),
                    None => {}
                }
            }
            Command::Stop => return,
            other => serve_read(&mut ws, other, &mut stats, &mut snapshot),
        }
    }
}

/// Handle a Query/Stats command (never Apply/Stop).
fn serve_read(
    ws: &mut Workspace,
    cmd: Command,
    stats: &mut ActorStats,
    snapshot: &mut Option<Snapshot>,
) {
    match cmd {
        Command::Query { reply } => {
            stats.queries += 1;
            let snap = match snapshot {
                Some(snap) => Ok(snap.clone()),
                None => ws
                    .solution()
                    .map(|solution| {
                        // `solution` is already a shared snapshot — a
                        // repeat query bumps refcounts, nothing more.
                        let snap = Snapshot {
                            solution,
                            ids: Arc::new(ws.family().dense_ids().to_vec()),
                        };
                        *snapshot = Some(snap.clone());
                        snap
                    })
                    .map_err(ServeError::Core),
            };
            let _ = reply.send(snap);
        }
        Command::QueryDelta { since, reply } => {
            stats.delta_queries += 1;
            let delta = ws.delta_since(Epoch(since)).map_err(ServeError::Core);
            let _ = reply.send(delta);
        }
        Command::Stats { reply } => {
            let _ = reply.send((ws.stats(), *stats));
        }
        Command::Apply { reply, .. } => {
            // Unreachable by construction; answer rather than panic.
            let _ = reply.send(Err(ServeError::Stopped));
        }
        Command::Stop => {}
    }
}

/// Admission-check each pending batch, apply every accepted one in a
/// single `Workspace::apply`, and answer every reply channel. Returns
/// whether the workspace mutated.
fn coalesced_apply(
    ws: &mut Workspace,
    span_budget: Option<usize>,
    pending: Vec<PendingBatch>,
    stats: &mut ActorStats,
) -> bool {
    // Per-arc load deltas of the batches accepted so far in this drain.
    let mut accepted_delta: Vec<i64> = Vec::new();
    let mut accepted: Vec<PendingBatch> = Vec::new();
    for batch in pending {
        match admission_check(ws, span_budget, &batch.ops, &mut accepted_delta) {
            Ok(()) => accepted.push(batch),
            Err(e) => {
                let _ = batch.reply.send(Err(e));
            }
        }
    }
    if accepted.is_empty() {
        return false;
    }

    // One combined apply; split the returned ids by each batch's Add
    // count. Smallest-free-slot id assignment makes the combined ids
    // identical to what sequential per-batch applies would assign.
    let combined: Vec<Mutation> = match materialize(ws, &accepted) {
        Ok(muts) => muts,
        Err((idx, e)) => {
            // A dipath failed to materialize: fail that batch, retry the
            // rest individually (ids stay sequentialy consistent).
            return fail_one_then_apply_each(ws, accepted, idx, e, stats);
        }
    };
    match ws.apply(combined) {
        Ok(all_ids) => {
            stats.applies += 1;
            let mut cursor = 0usize;
            for batch in accepted {
                stats.batches += 1;
                let adds = batch
                    .ops
                    .iter()
                    .filter(|op| matches!(op, ActorOp::Add(_)))
                    .count();
                let ids = all_ids[cursor..cursor + adds].to_vec();
                cursor += adds;
                let _ = batch.reply.send(Ok(ids));
            }
            true
        }
        Err(_) => {
            // The combined batch is atomic, so the workspace is untouched:
            // fall back to per-batch applies so one bad batch (e.g. a
            // stale Remove id) only fails its own sender.
            apply_each(ws, accepted, stats)
        }
    }
}

/// Build the dipath for an `Add`'s arc list, range-checking the arc ids
/// first (`Digraph` accessors index by arc id, so an out-of-range id must
/// be rejected here, as a typed error, before the graph ever sees it).
fn build_dipath(ws: &Workspace, arcs: &[ArcId]) -> Result<Dipath, ServeError> {
    let arc_count = ws.graph().arc_count();
    if let Some(bad) = arcs.iter().find(|a| a.index() >= arc_count) {
        return Err(ServeError::Core(CoreError::InvalidPath(format!(
            "arc id {} out of range (graph has {arc_count} arcs)",
            bad.0
        ))));
    }
    Dipath::from_arcs(ws.graph(), arcs.to_vec())
        .map_err(|e| ServeError::Core(CoreError::InvalidPath(e.to_string())))
}

/// Turn every accepted batch's ops into workspace mutations; on a bad
/// dipath, report which batch index failed.
fn materialize(
    ws: &Workspace,
    accepted: &[PendingBatch],
) -> Result<Vec<Mutation>, (usize, ServeError)> {
    let mut out = Vec::new();
    for (idx, batch) in accepted.iter().enumerate() {
        for op in &batch.ops {
            match op {
                ActorOp::Add(arcs) => {
                    out.push(Mutation::Add(build_dipath(ws, arcs).map_err(|e| (idx, e))?))
                }
                ActorOp::Remove(id) => out.push(Mutation::Remove(*id)),
            }
        }
    }
    Ok(out)
}

fn fail_one_then_apply_each(
    ws: &mut Workspace,
    mut accepted: Vec<PendingBatch>,
    bad: usize,
    err: ServeError,
    stats: &mut ActorStats,
) -> bool {
    let batch = accepted.remove(bad);
    let _ = batch.reply.send(Err(err));
    apply_each(ws, accepted, stats)
}

/// Apply each batch on its own (the non-coalesced slow path after a
/// combined failure); answers every reply channel. Returns whether any
/// batch mutated the workspace.
fn apply_each(ws: &mut Workspace, batches: Vec<PendingBatch>, stats: &mut ActorStats) -> bool {
    let mut mutated = false;
    for batch in batches {
        let result = (|| -> Result<Vec<PathId>, ServeError> {
            let mut muts = Vec::with_capacity(batch.ops.len());
            for op in &batch.ops {
                match op {
                    ActorOp::Add(arcs) => muts.push(Mutation::Add(build_dipath(ws, arcs)?)),
                    ActorOp::Remove(id) => muts.push(Mutation::Remove(*id)),
                }
            }
            Ok(ws.apply(muts)?)
        })();
        if result.is_ok() {
            mutated = true;
            stats.batches += 1;
            stats.applies += 1;
        }
        let _ = batch.reply.send(result);
    }
    mutated
}

/// Project the per-arc load of applying `ops` on top of the already
/// accepted deltas; reject if any arc would exceed the budget, otherwise
/// fold the batch's deltas into `accepted_delta`.
fn admission_check(
    ws: &Workspace,
    span_budget: Option<usize>,
    ops: &[ActorOp],
    accepted_delta: &mut Vec<i64>,
) -> Result<(), ServeError> {
    let Some(budget) = span_budget else {
        return Ok(());
    };
    if accepted_delta.len() < ws.graph().arc_count() {
        accepted_delta.resize(ws.graph().arc_count(), 0);
    }
    let mut own_delta: Vec<i64> = vec![0; accepted_delta.len()];
    let mut projected_max = 0usize;
    for op in ops {
        match op {
            ActorOp::Add(arcs) => {
                for &a in arcs {
                    let i = a.index();
                    if i >= own_delta.len() {
                        // Out-of-range arc: let `Dipath::from_arcs` produce
                        // the typed InvalidPath error downstream.
                        continue;
                    }
                    own_delta[i] += 1;
                    let projected = (ws.arc_load(a) as i64) + accepted_delta[i] + own_delta[i];
                    projected_max = projected_max.max(projected.max(0) as usize);
                }
            }
            ActorOp::Remove(id) => {
                // Credit back a live member's arcs. An id admitted earlier
                // in this same drain is not resolvable here; skipping it
                // only keeps the projection conservative (too high, never
                // too low).
                if let Some(p) = ws.family().get(*id) {
                    for &a in p.arcs() {
                        let i = a.index();
                        if i < own_delta.len() {
                            own_delta[i] -= 1;
                        }
                    }
                }
            }
        }
    }
    if projected_max > budget {
        return Err(ServeError::SpanBudgetExceeded {
            budget,
            projected: projected_max,
        });
    }
    for (acc, own) in accepted_delta.iter_mut().zip(&own_delta) {
        *acc += own;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagwave_core::SolveSession;
    use dagwave_graph::builder::from_edges;
    use dagwave_paths::DipathFamily;

    fn line_workspace(n: usize) -> Workspace {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = from_edges(n, &edges);
        Workspace::new(SolveSession::auto(), g, DipathFamily::new()).expect("line DAG is valid")
    }

    fn arc_ids(ids: &[u32]) -> Vec<ArcId> {
        ids.iter().map(|&i| ArcId(i)).collect()
    }

    #[test]
    fn actor_round_trip_apply_query_stats_stop() {
        let (h, join) = spawn_tenant(line_workspace(5), None, 64);
        let ids = h
            .apply(vec![
                ActorOp::Add(arc_ids(&[0, 1])),
                ActorOp::Add(arc_ids(&[1, 2])),
            ])
            .expect("two adds");
        assert_eq!(ids, vec![PathId(0), PathId(1)]);
        let snap = h.query().expect("solution");
        assert_eq!(snap.solution.num_colors, 2);
        assert_eq!(snap.ids.as_slice(), &[PathId(0), PathId(1)]);
        h.apply(vec![ActorOp::Remove(PathId(0))]).expect("remove");
        let snap = h.query().expect("solution after remove");
        assert_eq!(snap.solution.num_colors, 1);
        assert_eq!(snap.ids.as_slice(), &[PathId(1)]);
        let (ws_stats, actor_stats) = h.stats().expect("stats");
        assert_eq!(ws_stats.live_paths, 1);
        assert_eq!(actor_stats.batches, 2);
        assert_eq!(actor_stats.queries, 2);
        h.stop();
        join.join().expect("actor exits cleanly");
        assert!(matches!(h.query(), Err(ServeError::Stopped)));
    }

    #[test]
    fn delta_queries_flow_through_the_actor() {
        let (h, join) = spawn_tenant(line_workspace(5), None, 64);
        h.apply(vec![ActorOp::Add(arc_ids(&[0, 1]))]).expect("add");
        let d0 = h.query_delta(0).expect("initial delta");
        assert!(!d0.full_resync);
        assert_eq!(d0.changes.len(), 1, "one live member, one change");
        h.apply(vec![ActorOp::Remove(PathId(0))]).expect("remove");
        let d1 = h.query_delta(d0.epoch.0).expect("second delta");
        assert_eq!(d1.removed, vec![PathId(0)]);
        assert!(d1.changes.is_empty());
        let (_, actor_stats) = h.stats().expect("stats");
        assert_eq!(actor_stats.delta_queries, 2);
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn budget_rejects_without_mutating() {
        let (h, join) = spawn_tenant(line_workspace(3), Some(2), 64);
        h.apply(vec![
            ActorOp::Add(arc_ids(&[0])),
            ActorOp::Add(arc_ids(&[0])),
        ])
        .expect("fills the budget");
        let err = h
            .apply(vec![ActorOp::Add(arc_ids(&[0, 1]))])
            .expect_err("third path through arc 0 exceeds budget 2");
        assert!(matches!(
            err,
            ServeError::SpanBudgetExceeded {
                budget: 2,
                projected: 3
            }
        ));
        // Retiring frees headroom: the credit is visible to admission.
        h.apply(vec![
            ActorOp::Remove(PathId(0)),
            ActorOp::Add(arc_ids(&[0, 1])),
        ])
        .expect("retire then admit inside one batch stays at load 2");
        let (ws_stats, _) = h.stats().expect("stats");
        assert_eq!(ws_stats.live_paths, 2);
        assert_eq!(ws_stats.max_load, 2);
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn stale_remove_fails_only_its_own_batch() {
        let (h, join) = spawn_tenant(line_workspace(4), None, 64);
        let err = h
            .apply(vec![ActorOp::Remove(PathId(7))])
            .expect_err("id 7 was never allocated");
        assert!(matches!(
            err,
            ServeError::Core(CoreError::UnknownPath(PathId(7)))
        ));
        let ids = h
            .apply(vec![ActorOp::Add(arc_ids(&[2]))])
            .expect("workspace still healthy");
        assert_eq!(ids, vec![PathId(0)]);
        h.stop();
        join.join().expect("clean exit");
    }

    #[test]
    fn invalid_arcs_yield_typed_invalid_path() {
        let (h, join) = spawn_tenant(line_workspace(3), None, 64);
        let err = h
            .apply(vec![ActorOp::Add(arc_ids(&[99]))])
            .expect_err("arc 99 is out of range");
        assert!(matches!(err, ServeError::Core(CoreError::InvalidPath(_))));
        let err = h
            .apply(vec![ActorOp::Add(vec![ArcId(1), ArcId(0)])])
            .expect_err("non-contiguous arc order");
        assert!(matches!(err, ServeError::Core(CoreError::InvalidPath(_))));
        h.stop();
        join.join().expect("clean exit");
    }
}
