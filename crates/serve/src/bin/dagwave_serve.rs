//! The `dagwave-serve` binary: bind a TCP listener and serve workspaces
//! over the dagwave wire protocol until a client sends `Shutdown`.
//!
//! ```text
//! dagwave-serve [--addr HOST:PORT] [--scenario federated:K | empty:N]
//!               [--span-budget N] [--max-coalesce N]
//!               [--front-end threaded|evented]
//! ```
//!
//! Every tenant id gets its own workspace built from the scenario:
//! `federated:K` starts each tenant from the K-component federated
//! instance (`dagwave-gen`), `empty:N` from an N-vertex line DAG with no
//! dipaths. `--span-budget` turns on admission control: a mutation batch
//! that would push any arc's load past the budget is rejected with a
//! typed error instead of applied. `--front-end` picks the connection
//! model: `threaded` (default) spawns one OS thread per client,
//! `evented` drives every connection from a single poll(2) reactor
//! thread (unix only).

use std::process::ExitCode;

use dagwave_core::{DecomposePolicy, SolverBuilder, Workspace};
use dagwave_gen::compose::federated;
use dagwave_graph::builder::from_edges;
use dagwave_paths::DipathFamily;
use dagwave_serve::{FrontEnd, Server, ServerConfig, WorkspaceFactory};

#[derive(Clone, Debug)]
enum Scenario {
    Federated(usize),
    Empty(usize),
}

struct Args {
    addr: String,
    scenario: Scenario,
    config: ServerConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, Option<String>> {
    // `Err(None)` means help was requested (usage on stdout, exit 0);
    // `Err(Some(msg))` is a real argument error (usage on stderr, exit 2).
    let mut args = Args {
        addr: "127.0.0.1:4617".to_string(),
        scenario: Scenario::Federated(4),
        config: ServerConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, Option<String>> {
            it.next()
                .ok_or_else(|| Some(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?.clone(),
            "--scenario" => {
                let spec = value("--scenario")?;
                args.scenario = match spec.split_once(':') {
                    Some(("federated", k)) => Scenario::Federated(
                        k.parse()
                            .map_err(|_| Some(format!("bad federated size {k:?}")))?,
                    ),
                    Some(("empty", n)) => Scenario::Empty(
                        n.parse()
                            .map_err(|_| Some(format!("bad vertex count {n:?}")))?,
                    ),
                    _ => return Err(Some(format!("unknown scenario {spec:?}"))),
                };
            }
            "--span-budget" => {
                let v = value("--span-budget")?;
                args.config.span_budget =
                    Some(v.parse().map_err(|_| Some(format!("bad budget {v:?}")))?);
            }
            "--max-coalesce" => {
                let v = value("--max-coalesce")?;
                args.config.max_coalesce = v
                    .parse()
                    .map_err(|_| Some(format!("bad coalesce cap {v:?}")))?;
            }
            "--front-end" => {
                args.config.front_end = match value("--front-end")?.as_str() {
                    "threaded" => FrontEnd::Threaded,
                    "evented" => FrontEnd::Evented,
                    other => return Err(Some(format!("unknown front-end {other:?}"))),
                };
            }
            "--help" | "-h" => return Err(None),
            other => return Err(Some(format!("unknown flag {other:?}"))),
        }
    }
    if matches!(args.scenario, Scenario::Empty(n) if n < 2) {
        return Err(Some("empty scenario needs at least 2 vertices".to_string()));
    }
    Ok(args)
}

fn factory_for(scenario: Scenario) -> WorkspaceFactory {
    Box::new(move |_tenant| {
        let session = SolverBuilder::new()
            .decompose(DecomposePolicy::Always)
            .build();
        match &scenario {
            Scenario::Federated(k) => {
                let inst = federated(*k);
                Workspace::new(session, inst.graph, inst.family)
            }
            Scenario::Empty(n) => {
                let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
                Workspace::new(session, from_edges(*n, &edges), DipathFamily::new())
            }
        }
    })
}

const USAGE: &str = "usage: dagwave-serve [--addr HOST:PORT] \
[--scenario federated:K | empty:N] [--span-budget N] [--max-coalesce N] \
[--front-end threaded|evented]";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(Some(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let server = match Server::bind(args.addr.as_str(), factory_for(args.scenario), args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("dagwave-serve listening on {}", server.local_addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::FAILURE
        }
    }
}
