//! A blocking client for the dagwave-serve protocol: one `TcpStream`,
//! one request/response pair at a time.
//!
//! The client is deliberately thin — it frames requests, reads exactly
//! one response, and maps typed server errors into
//! [`ClientError::Remote`]. Connection pooling, retries, and pipelining
//! are caller concerns. In particular, a server under load may answer
//! with [`ErrorCode::Busy`] (its actor queue is full); the connection
//! stays usable and the request is safe to retry after a backoff —
//! nothing was applied.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameReadError, Request, Response, WireDelta, WireError,
    WireOp, WireSolution, WireStats,
};

/// Client-side failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, write, or the server closed
    /// mid-frame).
    Io(io::Error),
    /// The server's bytes did not decode as a response frame.
    Wire(WireError),
    /// The server answered with a typed error frame.
    Remote {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// The server's human-readable detail.
        message: String,
    },
    /// The server answered with a well-formed response of the wrong kind
    /// for the request (a protocol state bug, not a transport fault).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Unexpected(what) => {
                write!(f, "unexpected response kind (wanted {what})")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameReadError> for ClientError {
    fn from(e: FrameReadError) -> Self {
        match e {
            FrameReadError::Io(e) => ClientError::Io(e),
            FrameReadError::Wire(e) => ClientError::Wire(e),
        }
    }
}

/// A connected client. Every method sends one request and blocks for its
/// response.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, req.opcode(), &req.encode_payload())?;
        let (op, payload) = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ))
        })?;
        let resp = Response::decode(op, &payload).map_err(ClientError::Wire)?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Remote { code, message });
        }
        Ok(resp)
    }

    /// Admit one dipath (as its arc-id sequence) into `tenant`; returns
    /// the assigned stable path id.
    pub fn admit(&mut self, tenant: u64, arcs: Vec<u32>) -> Result<u32, ClientError> {
        match self.round_trip(&Request::Admit { tenant, arcs })? {
            Response::Admitted { id } => Ok(id),
            _ => Err(ClientError::Unexpected("Admitted")),
        }
    }

    /// Retire the live dipath with stable id `id` from `tenant`.
    pub fn retire(&mut self, tenant: u64, id: u32) -> Result<(), ClientError> {
        match self.round_trip(&Request::Retire { tenant, id })? {
            Response::Retired => Ok(()),
            _ => Err(ClientError::Unexpected("Retired")),
        }
    }

    /// Apply a mutation batch atomically; returns the stable ids of its
    /// additions, in batch order.
    pub fn batch(&mut self, tenant: u64, ops: Vec<WireOp>) -> Result<Vec<u32>, ClientError> {
        match self.round_trip(&Request::Batch { tenant, ops })? {
            Response::Applied { added } => Ok(added),
            _ => Err(ClientError::Unexpected("Applied")),
        }
    }

    /// Fetch `tenant`'s current wavelength solution.
    pub fn query(&mut self, tenant: u64) -> Result<WireSolution, ClientError> {
        match self.round_trip(&Request::Query { tenant })? {
            Response::Solution(s) => Ok(s),
            _ => Err(ClientError::Unexpected("Solution")),
        }
    }

    /// Fetch everything in `tenant`'s solution that changed since the
    /// epoch of the client's last sync (`0` = never synced; the reply's
    /// `epoch` is the value to pass next time). O(changed) bytes on the
    /// wire — replaying deltas in epoch order reconstructs exactly what
    /// [`Client::query`] would return, without ever shipping the full
    /// assignment (unless the reply says `full_resync`).
    pub fn query_delta(&mut self, tenant: u64, since: u64) -> Result<WireDelta, ClientError> {
        match self.round_trip(&Request::QueryDelta { tenant, since })? {
            Response::Delta(d) => Ok(d),
            _ => Err(ClientError::Unexpected("Delta")),
        }
    }

    /// Fetch `tenant`'s cumulative workspace + service counters.
    pub fn stats(&mut self, tenant: u64) -> Result<WireStats, ClientError> {
        match self.round_trip(&Request::Stats { tenant })? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::Unexpected("Stats")),
        }
    }

    /// Ask the server to shut down (stops every tenant actor and closes
    /// the listener). The connection is unusable afterwards.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            _ => Err(ClientError::Unexpected("ShuttingDown")),
        }
    }

    /// Send raw frame bytes and read one response — the escape hatch the
    /// protocol tests use to probe malformed-input handling.
    pub fn raw_round_trip(&mut self, bytes: &[u8]) -> Result<Response, ClientError> {
        use std::io::Write;
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        let (op, payload) = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed before responding",
            ))
        })?;
        Response::decode(op, &payload).map_err(ClientError::Wire)
    }
}
