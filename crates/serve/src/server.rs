//! The TCP server: two selectable front-ends over one actor core, a
//! registry thread owning the tenant actors, and poll-based accept/stop
//! wakeups (no sleep-polling).
//!
//! # Front-ends
//!
//! [`FrontEnd::Threaded`] spawns one blocking connection thread per
//! client — simple, and still the portable default. [`FrontEnd::Evented`]
//! drives every connection from a single `poll(2)` reactor thread (see
//! the `reactor` module docs for the state machine and backpressure
//! story); connection count stops costing OS threads.
//!
//! # Thread topology (threaded front-end)
//!
//! ```text
//! accept loop ──spawns──▶ connection threads ──mpsc──▶ registry thread
//!      ▲                        │  cached TenantHandle      │ owns map
//!      └──── stop + waker ◀─────┤                           │ tenant → actor
//!                               └────── mpsc ──▶ tenant actor threads
//! ```
//!
//! Under the evented front-end the connection threads collapse into the
//! reactor running on the [`Server::run`] caller's thread; everything
//! else is identical. There is no shared mutable state in either mode:
//! the registry thread *owns* the tenant map (connections lease
//! [`TenantHandle`]s over a channel and cache them locally), each actor
//! owns its [`Workspace`], and shutdown is a message plus a self-pipe
//! wake, not a flag. The accept path blocks in `poll` on the listener and
//! the wake pipe, so idle servers make zero wakeups and shutdown latency
//! is one pipe write.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::thread;

use dagwave_core::{CoreError, SolutionDelta, Workspace, WorkspaceStats};
use dagwave_graph::ArcId;
use dagwave_paths::PathId;

use crate::actor::{
    spawn_tenant, ActorConfig, ActorOp, ActorStats, AdmissionPolicy, ServeError, Snapshot,
    TenantHandle,
};
use crate::protocol::{
    read_frame, ErrorCode, FrameReadError, Request, Response, WireDelta, WireError, WireOp,
    WireSolution, WireStats, HEADER_LEN,
};

/// Builds the initial [`Workspace`] for a tenant id the server has not
/// seen before. Owned by the registry thread, so `Send` suffices.
pub type WorkspaceFactory = Box<dyn Fn(u64) -> Result<Workspace, CoreError> + Send>;

/// Which connection-handling model [`Server::run`] drives.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrontEnd {
    /// One blocking OS thread per connection (portable default).
    #[default]
    Threaded,
    /// A single-threaded `poll(2)` reactor over nonblocking sockets:
    /// OS thread count is independent of connection count. Unix only.
    Evented,
}

/// Default bound on each tenant actor's command queue.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;
/// Default cap on one connection's queued response bytes before the
/// evented front-end stops reading more requests from it.
pub const DEFAULT_MAX_WRITE_BUFFER: usize = 1 << 20;

/// Server-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Admission ceiling on any arc's load (`None` = admit everything).
    pub span_budget: Option<usize>,
    /// Max queued mutation batches one `Workspace::apply` may coalesce.
    pub max_coalesce: usize,
    /// Connection-handling model.
    pub front_end: FrontEnd,
    /// What to do with over-budget mutation batches (reject, or park
    /// until capacity frees / a timeout).
    pub admission: AdmissionPolicy,
    /// Bound on each tenant actor's command queue. Full queues block
    /// threaded connections and earn evented clients a typed `Busy`.
    pub queue_depth: usize,
    /// Per-connection cap on queued response bytes (evented front-end):
    /// past it, the connection stops being read until the client drains.
    pub max_write_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            span_budget: None,
            max_coalesce: 64,
            front_end: FrontEnd::Threaded,
            admission: AdmissionPolicy::Reject,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            max_write_buffer: DEFAULT_MAX_WRITE_BUFFER,
        }
    }
}

/// Front-end transport counters surfaced through [`WireStats`]. The
/// evented reactor keeps one instance for the whole process; the threaded
/// model keeps one per connection (each thread can only see its own
/// stream).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Transport {
    pub(crate) bytes_in: u64,
    pub(crate) bytes_out: u64,
    pub(crate) busy_rejections: u64,
    pub(crate) max_write_queue: u64,
}

pub(crate) enum RegistryCmd {
    /// Lease (creating on first use) the actor handle for a tenant.
    Lease {
        tenant: u64,
        reply: Sender<Result<TenantHandle, ServeError>>,
    },
    /// Stop every actor, signal the accept loop, then exit.
    Shutdown,
}

/// Fired by the registry once every actor has drained: a message for the
/// accept/reactor loop plus a self-pipe write to interrupt its `poll`.
struct StopSignal {
    tx: Sender<()>,
    #[cfg(unix)]
    waker: crate::reactor::Waker,
}

impl StopSignal {
    fn fire(self) {
        let _ = self.tx.send(());
        #[cfg(unix)]
        self.waker.wake();
    }
}

/// A bound-but-not-yet-running server. [`Server::run`] blocks the calling
/// thread until a client sends `Shutdown`; [`Server::spawn`] runs it on
/// its own thread and returns a joinable handle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    registry_tx: Sender<RegistryCmd>,
    registry_join: thread::JoinHandle<()>,
    stop_rx: Receiver<()>,
    config: ServerConfig,
    #[cfg(unix)]
    wake: crate::reactor::WakeReader,
    #[cfg(unix)]
    waker: crate::reactor::Waker,
}

/// Handle to a server running on its own thread (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    join: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (use it to connect when binding to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to shut down.
    pub fn join(self) -> io::Result<()> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

impl Server {
    /// Bind a listener and start the tenant registry. `factory` builds
    /// the workspace for each new tenant id.
    pub fn bind(
        addr: impl ToSocketAddrs,
        factory: WorkspaceFactory,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        #[cfg(unix)]
        let (wake, waker) = crate::reactor::wake_pair()?;
        let (registry_tx, registry_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel();
        let signal = StopSignal {
            tx: stop_tx,
            #[cfg(unix)]
            waker: waker.clone(),
        };
        // lint: allow(no-raw-sync): the registry thread replaces a shared-map lock — it owns the tenant map outright, mpsc is the only coupling
        let join = thread::spawn(move || run_registry(registry_rx, factory, config, signal));
        Ok(Server {
            listener,
            addr,
            registry_tx,
            registry_join: join,
            stop_rx,
            config,
            #[cfg(unix)]
            wake,
            #[cfg(unix)]
            waker,
        })
    }

    /// The bound address (use it to connect when binding to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept and serve connections until a `Shutdown` request arrives,
    /// then join the registry (which has already stopped every tenant
    /// actor). Runs the front-end selected in [`ServerConfig`] on the
    /// calling thread.
    pub fn run(self) -> io::Result<()> {
        match self.config.front_end {
            FrontEnd::Threaded => self.run_threaded(),
            FrontEnd::Evented => self.run_evented(),
        }
    }

    #[cfg(unix)]
    fn run_evented(self) -> io::Result<()> {
        let Server {
            listener,
            registry_tx,
            registry_join,
            stop_rx,
            config,
            wake,
            waker,
            ..
        } = self;
        let result =
            crate::reactor::run_evented(listener, registry_tx, stop_rx, wake, waker, config);
        let _ = registry_join.join();
        result
    }

    #[cfg(not(unix))]
    fn run_evented(self) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "the evented front-end needs poll(2); use FrontEnd::Threaded on this platform",
        ))
    }

    fn run_threaded(self) -> io::Result<()> {
        // The listener stays nonblocking; between accepts the loop parks
        // in poll(2) on the listener and the stop waker's pipe, so an
        // idle server makes zero wakeups and shutdown interrupts the wait
        // immediately.
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let registry = self.registry_tx.clone();
                    // Connections are blocking even though the listener is
                    // not (accepted sockets inherit nonblocking on some
                    // platforms).
                    stream.set_nonblocking(false)?;
                    // lint: allow(no-raw-sync): thread-per-connection is the server's documented concurrency model; the thread owns its stream outright
                    thread::spawn(move || serve_connection(stream, registry));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    match self.stop_rx.try_recv() {
                        Ok(()) | Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => {
                            #[cfg(unix)]
                            crate::reactor::wait_accept(&self.listener, &self.wake)?;
                            #[cfg(not(unix))]
                            // lint: allow(no-raw-sync): non-unix fallback idle poll; 2ms bounds shutdown latency without busy-spinning
                            thread::sleep(std::time::Duration::from_millis(2));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let _ = self.registry_join.join();
        Ok(())
    }

    /// Run the server on its own thread; returns once it is accepting.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        // lint: allow(no-raw-sync): hands the accept loop its own thread; the handle's join() is the only coupling
        let join = thread::spawn(move || self.run());
        ServerHandle { addr, join }
    }
}

fn run_registry(
    rx: Receiver<RegistryCmd>,
    factory: WorkspaceFactory,
    config: ServerConfig,
    signal: StopSignal,
) {
    let actor_config = ActorConfig {
        span_budget: config.span_budget,
        max_coalesce: config.max_coalesce,
        queue_depth: config.queue_depth,
        admission: config.admission,
    };
    let mut tenants: HashMap<u64, (TenantHandle, thread::JoinHandle<()>)> = HashMap::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            RegistryCmd::Lease { tenant, reply } => {
                let leased = match tenants.get(&tenant) {
                    Some((handle, _)) => Ok(handle.clone()),
                    None => match factory(tenant) {
                        Ok(ws) => {
                            let (handle, join) = spawn_tenant(ws, actor_config);
                            tenants.insert(tenant, (handle.clone(), join));
                            Ok(handle)
                        }
                        Err(e) => Err(ServeError::Core(e)),
                    },
                };
                let _ = reply.send(leased);
            }
            RegistryCmd::Shutdown => break,
        }
    }
    // Drain the actors before signalling the accept loop, so the port
    // closes only after every workspace thread has exited.
    for (_, (handle, join)) in tenants {
        handle.stop();
        let _ = join.join();
    }
    signal.fire();
}

/// Per-connection loop (threaded front-end): read frames, dispatch,
/// reply. Header-level wire errors leave the stream unsynchronized —
/// reply once, then close.
fn serve_connection(mut stream: TcpStream, registry: Sender<RegistryCmd>) {
    let mut handles: HashMap<u64, TenantHandle> = HashMap::new();
    let mut transport = Transport::default();
    loop {
        let (op, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close between frames
            Err(FrameReadError::Io(_)) => return,
            Err(FrameReadError::Wire(e)) => {
                let resp = Response::Error {
                    code: wire_error_code(&e),
                    message: e.to_string(),
                };
                let _ = send(&mut stream, &resp, &mut transport);
                return;
            }
        };
        transport.bytes_in += (HEADER_LEN + payload.len()) as u64;
        let request = match Request::decode(op, &payload) {
            Ok(req) => req,
            Err(e) => {
                // The frame was fully consumed, so the stream is still
                // synchronized: report and keep serving.
                let resp = Response::Error {
                    code: wire_error_code(&e),
                    message: e.to_string(),
                };
                if send(&mut stream, &resp, &mut transport).is_err() {
                    return;
                }
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = dispatch(request, &registry, &mut handles, &transport);
        if send(&mut stream, &response, &mut transport).is_err() {
            return;
        }
        if shutdown {
            let _ = registry.send(RegistryCmd::Shutdown);
            return;
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response, transport: &mut Transport) -> io::Result<()> {
    let frame = resp.to_frame();
    stream.write_all(&frame)?;
    transport.bytes_out += frame.len() as u64;
    stream.flush()
}

fn dispatch(
    request: Request,
    registry: &Sender<RegistryCmd>,
    handles: &mut HashMap<u64, TenantHandle>,
    transport: &Transport,
) -> Response {
    match request {
        Request::Shutdown => Response::ShuttingDown,
        Request::Admit { tenant, arcs } => with_tenant(registry, handles, tenant, |h| {
            let ids = h.apply(vec![ActorOp::Add(to_arc_ids(arcs))])?;
            Ok(admitted_response(ids))
        }),
        Request::Retire { tenant, id } => with_tenant(registry, handles, tenant, |h| {
            h.apply(vec![ActorOp::Remove(PathId(id))])?;
            Ok(Response::Retired)
        }),
        Request::Batch { tenant, ops } => with_tenant(registry, handles, tenant, |h| {
            let added = h.apply(to_actor_ops(ops))?;
            Ok(Response::Applied {
                added: added.into_iter().map(|id| id.0).collect(),
            })
        }),
        Request::Query { tenant } => with_tenant(registry, handles, tenant, |h| {
            Ok(solution_response(&h.query()?))
        }),
        Request::QueryDelta { tenant, since } => with_tenant(registry, handles, tenant, |h| {
            Ok(delta_response(&h.query_delta(since)?))
        }),
        Request::Stats { tenant } => with_tenant(registry, handles, tenant, |h| {
            let (ws, actor) = h.stats()?;
            Ok(stats_response(&ws, &actor, transport))
        }),
    }
}

/// Shape a successful single-`Add` apply into the `Admitted` response.
pub(crate) fn admitted_response(ids: Vec<PathId>) -> Response {
    match ids.first() {
        Some(id) => Response::Admitted { id: id.0 },
        None => error_response(ServeError::Core(CoreError::InvalidPath(
            "admit produced no id".into(),
        ))),
    }
}

/// Shape a snapshot into the full-solution wire response.
pub(crate) fn solution_response(snap: &Snapshot) -> Response {
    let s = &snap.solution;
    Response::Solution(WireSolution {
        num_colors: s.num_colors as u32,
        load: s.load as u32,
        optimal: s.optimal,
        shard_count: s
            .decomposition
            .as_ref()
            .map_or(1, |d| d.shard_count() as u32),
        strategy: s.strategy.to_string(),
        colors: snap
            .ids
            .iter()
            .zip(s.assignment.colors())
            .map(|(id, &c)| (id.0, c as u32))
            .collect(),
    })
}

/// Shape a workspace delta into the delta-sync wire response.
pub(crate) fn delta_response(d: &SolutionDelta) -> Response {
    Response::Delta(WireDelta {
        epoch: d.epoch.0,
        span: d.span as u32,
        full_resync: d.full_resync,
        changes: d.changes.iter().map(|&(id, c)| (id.0, c)).collect(),
        removed: d.removed.iter().map(|id| id.0).collect(),
    })
}

/// Merge workspace, actor, and front-end transport counters into the
/// stats wire response.
pub(crate) fn stats_response(
    ws: &WorkspaceStats,
    actor: &ActorStats,
    transport: &Transport,
) -> Response {
    Response::Stats(WireStats {
        live_paths: ws.live_paths as u64,
        shard_count: ws.shard_count as u64,
        max_load: ws.max_load as u64,
        recomputes: ws.recomputes as u64,
        shards_reused: ws.shards_reused as u64,
        shards_resolved: ws.shards_resolved as u64,
        batches: actor.batches,
        applies: actor.applies,
        queries: actor.queries,
        interned_arc_lists: ws.interned_arc_lists as u64,
        intern_hits: ws.intern_hits,
        intern_misses: ws.intern_misses,
        epoch: ws.epoch,
        delta_queries: ws.delta_queries,
        delta_resyncs: ws.delta_resyncs,
        bytes_in: transport.bytes_in,
        bytes_out: transport.bytes_out,
        busy_rejections: transport.busy_rejections,
        max_write_queue: transport.max_write_queue,
    })
}

/// Lease (and locally cache) the tenant's handle, then run `f`; every
/// [`ServeError`] becomes a typed [`Response::Error`].
fn with_tenant(
    registry: &Sender<RegistryCmd>,
    handles: &mut HashMap<u64, TenantHandle>,
    tenant: u64,
    f: impl FnOnce(&TenantHandle) -> Result<Response, ServeError>,
) -> Response {
    let handle = match handles.get(&tenant) {
        Some(h) => h.clone(),
        None => match lease(registry, tenant) {
            Ok(h) => {
                handles.insert(tenant, h.clone());
                h
            }
            Err(e) => return error_response(e),
        },
    };
    match f(&handle) {
        Ok(resp) => resp,
        Err(e) => {
            if matches!(e, ServeError::Stopped) {
                // The actor is gone (shutdown raced this request); drop the
                // stale handle so a later lease reflects registry state.
                handles.remove(&tenant);
            }
            error_response(e)
        }
    }
}

pub(crate) fn lease(
    registry: &Sender<RegistryCmd>,
    tenant: u64,
) -> Result<TenantHandle, ServeError> {
    let (reply, rx) = mpsc::channel();
    registry
        .send(RegistryCmd::Lease { tenant, reply })
        .map_err(|_| ServeError::Stopped)?;
    rx.recv().map_err(|_| ServeError::Stopped)?
}

pub(crate) fn to_arc_ids(arcs: Vec<u32>) -> Vec<ArcId> {
    arcs.into_iter().map(ArcId).collect()
}

/// Convert wire batch ops into actor ops.
pub(crate) fn to_actor_ops(ops: Vec<WireOp>) -> Vec<ActorOp> {
    ops.into_iter()
        .map(|op| match op {
            WireOp::Add(arcs) => ActorOp::Add(to_arc_ids(arcs)),
            WireOp::Remove(id) => ActorOp::Remove(PathId(id)),
        })
        .collect()
}

pub(crate) fn wire_error_code(e: &WireError) -> ErrorCode {
    match e {
        WireError::UnknownVersion(_) => ErrorCode::UnknownVersion,
        WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        WireError::Oversized(_) => ErrorCode::Oversized,
        _ => ErrorCode::Malformed,
    }
}

pub(crate) fn error_response(e: ServeError) -> Response {
    let code = match &e {
        ServeError::SpanBudgetExceeded { .. } => ErrorCode::SpanBudgetExceeded,
        ServeError::Stopped => ErrorCode::ShuttingDown,
        ServeError::Busy => ErrorCode::Busy,
        ServeError::Core(CoreError::UnknownPath(_)) => ErrorCode::UnknownPath,
        ServeError::Core(CoreError::InvalidPath(_)) => ErrorCode::InvalidPath,
        ServeError::Core(_) => ErrorCode::Solver,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
