//! The TCP server: thread-per-connection over `std::net`, a registry
//! thread owning the tenant actors, and a nonblocking accept loop that a
//! `Shutdown` request can interrupt.
//!
//! # Thread topology
//!
//! ```text
//! accept loop ──spawns──▶ connection threads ──mpsc──▶ registry thread
//!      ▲                        │  cached TenantHandle      │ owns map
//!      └──── stop channel ◀─────┤                           │ tenant → actor
//!                               └────── mpsc ──▶ tenant actor threads
//! ```
//!
//! There is no shared mutable state: the registry thread *owns* the
//! tenant map (connections lease [`TenantHandle`]s over a channel and
//! cache them locally), each actor owns its [`Workspace`], and shutdown
//! is a message, not a flag. The only unusual piece is the accept loop:
//! `std::net` has no `select`, so the listener runs nonblocking and the
//! loop alternates `accept` with a `try_recv` on the stop channel,
//! sleeping briefly when idle.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::thread;
use std::time::Duration;

use dagwave_core::{CoreError, Workspace};
use dagwave_graph::ArcId;
use dagwave_paths::PathId;

use crate::actor::{spawn_tenant, ActorOp, ServeError, TenantHandle};
use crate::protocol::{
    read_frame, write_frame, ErrorCode, FrameReadError, Request, Response, WireDelta, WireError,
    WireOp, WireSolution, WireStats,
};

/// Builds the initial [`Workspace`] for a tenant id the server has not
/// seen before. Owned by the registry thread, so `Send` suffices.
pub type WorkspaceFactory = Box<dyn Fn(u64) -> Result<Workspace, CoreError> + Send>;

/// Server-wide knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Admission ceiling on any arc's load (`None` = admit everything).
    pub span_budget: Option<usize>,
    /// Max queued mutation batches one `Workspace::apply` may coalesce.
    pub max_coalesce: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            span_budget: None,
            max_coalesce: 64,
        }
    }
}

enum RegistryCmd {
    /// Lease (creating on first use) the actor handle for a tenant.
    Lease {
        tenant: u64,
        reply: Sender<Result<TenantHandle, ServeError>>,
    },
    /// Stop every actor, signal the accept loop, then exit.
    Shutdown,
}

/// A bound-but-not-yet-running server. [`Server::run`] blocks the calling
/// thread until a client sends `Shutdown`; [`Server::spawn`] runs it on
/// its own thread and returns a joinable handle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    registry_tx: Sender<RegistryCmd>,
    registry_join: thread::JoinHandle<()>,
    stop_rx: Receiver<()>,
}

/// Handle to a server running on its own thread (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    join: thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address (use it to connect when binding to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait for the server to shut down.
    pub fn join(self) -> io::Result<()> {
        self.join
            .join()
            .map_err(|_| io::Error::other("server thread panicked"))?
    }
}

impl Server {
    /// Bind a listener and start the tenant registry. `factory` builds
    /// the workspace for each new tenant id.
    pub fn bind(
        addr: impl ToSocketAddrs,
        factory: WorkspaceFactory,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (registry_tx, registry_rx) = mpsc::channel();
        let (stop_tx, stop_rx) = mpsc::channel();
        // lint: allow(no-raw-sync): the registry thread replaces a shared-map lock — it owns the tenant map outright, mpsc is the only coupling
        let join = thread::spawn(move || run_registry(registry_rx, factory, config, stop_tx));
        Ok(Server {
            listener,
            addr,
            registry_tx,
            registry_join: join,
            stop_rx,
        })
    }

    /// The bound address (use it to connect when binding to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept connections until a `Shutdown` request arrives, then join
    /// the registry (which has already stopped every tenant actor).
    pub fn run(self) -> io::Result<()> {
        // `std::net` offers no way to interrupt a blocking accept, so the
        // loop polls: accept whatever is pending, check the stop channel,
        // sleep briefly when idle.
        self.listener.set_nonblocking(true)?;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let registry = self.registry_tx.clone();
                    // Connections are blocking even though the listener is
                    // not (accepted sockets inherit nonblocking on some
                    // platforms).
                    stream.set_nonblocking(false)?;
                    // lint: allow(no-raw-sync): thread-per-connection is the server's documented concurrency model; the thread owns its stream outright
                    thread::spawn(move || serve_connection(stream, registry));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    match self.stop_rx.try_recv() {
                        Ok(()) | Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => {
                            // lint: allow(no-raw-sync): accept-loop idle poll; 2ms bounds shutdown latency without busy-spinning
                            thread::sleep(Duration::from_millis(2));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let _ = self.registry_join.join();
        Ok(())
    }

    /// Run the server on its own thread; returns once it is accepting.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        // lint: allow(no-raw-sync): hands the accept loop its own thread; the handle's join() is the only coupling
        let join = thread::spawn(move || self.run());
        ServerHandle { addr, join }
    }
}

fn run_registry(
    rx: Receiver<RegistryCmd>,
    factory: WorkspaceFactory,
    config: ServerConfig,
    stop_tx: Sender<()>,
) {
    let mut tenants: HashMap<u64, (TenantHandle, thread::JoinHandle<()>)> = HashMap::new();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            RegistryCmd::Lease { tenant, reply } => {
                let leased = match tenants.get(&tenant) {
                    Some((handle, _)) => Ok(handle.clone()),
                    None => match factory(tenant) {
                        Ok(ws) => {
                            let (handle, join) =
                                spawn_tenant(ws, config.span_budget, config.max_coalesce);
                            tenants.insert(tenant, (handle.clone(), join));
                            Ok(handle)
                        }
                        Err(e) => Err(ServeError::Core(e)),
                    },
                };
                let _ = reply.send(leased);
            }
            RegistryCmd::Shutdown => break,
        }
    }
    // Drain the actors before signalling the accept loop, so the port
    // closes only after every workspace thread has exited.
    for (_, (handle, join)) in tenants {
        handle.stop();
        let _ = join.join();
    }
    let _ = stop_tx.send(());
}

/// Per-connection loop: read frames, dispatch, reply. Header-level wire
/// errors leave the stream unsynchronized — reply once, then close.
fn serve_connection(mut stream: TcpStream, registry: Sender<RegistryCmd>) {
    let mut handles: HashMap<u64, TenantHandle> = HashMap::new();
    loop {
        let (op, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) => return, // clean close between frames
            Err(FrameReadError::Io(_)) => return,
            Err(FrameReadError::Wire(e)) => {
                let resp = Response::Error {
                    code: wire_error_code(&e),
                    message: e.to_string(),
                };
                let _ = send(&mut stream, &resp);
                return;
            }
        };
        let request = match Request::decode(op, &payload) {
            Ok(req) => req,
            Err(e) => {
                // The frame was fully consumed, so the stream is still
                // synchronized: report and keep serving.
                let resp = Response::Error {
                    code: wire_error_code(&e),
                    message: e.to_string(),
                };
                if send(&mut stream, &resp).is_err() {
                    return;
                }
                continue;
            }
        };
        let shutdown = matches!(request, Request::Shutdown);
        let response = dispatch(request, &registry, &mut handles);
        if send(&mut stream, &response).is_err() {
            return;
        }
        if shutdown {
            let _ = registry.send(RegistryCmd::Shutdown);
            return;
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(stream, resp.opcode(), &resp.encode_payload())?;
    stream.flush()
}

fn dispatch(
    request: Request,
    registry: &Sender<RegistryCmd>,
    handles: &mut HashMap<u64, TenantHandle>,
) -> Response {
    match request {
        Request::Shutdown => Response::ShuttingDown,
        Request::Admit { tenant, arcs } => with_tenant(registry, handles, tenant, |h| {
            let ids = h.apply(vec![ActorOp::Add(to_arc_ids(arcs))])?;
            match ids.first() {
                Some(id) => Ok(Response::Admitted { id: id.0 }),
                None => Err(ServeError::Core(CoreError::InvalidPath(
                    "admit produced no id".into(),
                ))),
            }
        }),
        Request::Retire { tenant, id } => with_tenant(registry, handles, tenant, |h| {
            h.apply(vec![ActorOp::Remove(PathId(id))])?;
            Ok(Response::Retired)
        }),
        Request::Batch { tenant, ops } => with_tenant(registry, handles, tenant, |h| {
            let ops = ops
                .into_iter()
                .map(|op| match op {
                    WireOp::Add(arcs) => ActorOp::Add(to_arc_ids(arcs)),
                    WireOp::Remove(id) => ActorOp::Remove(PathId(id)),
                })
                .collect();
            let added = h.apply(ops)?;
            Ok(Response::Applied {
                added: added.into_iter().map(|id| id.0).collect(),
            })
        }),
        Request::Query { tenant } => with_tenant(registry, handles, tenant, |h| {
            let snap = h.query()?;
            let s = &snap.solution;
            Ok(Response::Solution(WireSolution {
                num_colors: s.num_colors as u32,
                load: s.load as u32,
                optimal: s.optimal,
                shard_count: s
                    .decomposition
                    .as_ref()
                    .map_or(1, |d| d.shard_count() as u32),
                strategy: s.strategy.to_string(),
                colors: snap
                    .ids
                    .iter()
                    .zip(s.assignment.colors())
                    .map(|(id, &c)| (id.0, c as u32))
                    .collect(),
            }))
        }),
        Request::QueryDelta { tenant, since } => with_tenant(registry, handles, tenant, |h| {
            let d = h.query_delta(since)?;
            Ok(Response::Delta(WireDelta {
                epoch: d.epoch.0,
                span: d.span as u32,
                full_resync: d.full_resync,
                changes: d.changes.iter().map(|&(id, c)| (id.0, c)).collect(),
                removed: d.removed.iter().map(|id| id.0).collect(),
            }))
        }),
        Request::Stats { tenant } => with_tenant(registry, handles, tenant, |h| {
            let (ws, actor) = h.stats()?;
            Ok(Response::Stats(WireStats {
                live_paths: ws.live_paths as u64,
                shard_count: ws.shard_count as u64,
                max_load: ws.max_load as u64,
                recomputes: ws.recomputes as u64,
                shards_reused: ws.shards_reused as u64,
                shards_resolved: ws.shards_resolved as u64,
                batches: actor.batches,
                applies: actor.applies,
                queries: actor.queries,
                interned_arc_lists: ws.interned_arc_lists as u64,
                intern_hits: ws.intern_hits,
                intern_misses: ws.intern_misses,
                epoch: ws.epoch,
                delta_queries: ws.delta_queries,
                delta_resyncs: ws.delta_resyncs,
            }))
        }),
    }
}

/// Lease (and locally cache) the tenant's handle, then run `f`; every
/// [`ServeError`] becomes a typed [`Response::Error`].
fn with_tenant(
    registry: &Sender<RegistryCmd>,
    handles: &mut HashMap<u64, TenantHandle>,
    tenant: u64,
    f: impl FnOnce(&TenantHandle) -> Result<Response, ServeError>,
) -> Response {
    let handle = match handles.get(&tenant) {
        Some(h) => h.clone(),
        None => match lease(registry, tenant) {
            Ok(h) => {
                handles.insert(tenant, h.clone());
                h
            }
            Err(e) => return error_response(e),
        },
    };
    match f(&handle) {
        Ok(resp) => resp,
        Err(e) => {
            if matches!(e, ServeError::Stopped) {
                // The actor is gone (shutdown raced this request); drop the
                // stale handle so a later lease reflects registry state.
                handles.remove(&tenant);
            }
            error_response(e)
        }
    }
}

fn lease(registry: &Sender<RegistryCmd>, tenant: u64) -> Result<TenantHandle, ServeError> {
    let (reply, rx) = mpsc::channel();
    registry
        .send(RegistryCmd::Lease { tenant, reply })
        .map_err(|_| ServeError::Stopped)?;
    rx.recv().map_err(|_| ServeError::Stopped)?
}

fn to_arc_ids(arcs: Vec<u32>) -> Vec<ArcId> {
    arcs.into_iter().map(ArcId).collect()
}

fn wire_error_code(e: &WireError) -> ErrorCode {
    match e {
        WireError::UnknownVersion(_) => ErrorCode::UnknownVersion,
        WireError::UnknownOpcode(_) => ErrorCode::UnknownOpcode,
        WireError::Oversized(_) => ErrorCode::Oversized,
        _ => ErrorCode::Malformed,
    }
}

fn error_response(e: ServeError) -> Response {
    let code = match &e {
        ServeError::SpanBudgetExceeded { .. } => ErrorCode::SpanBudgetExceeded,
        ServeError::Stopped => ErrorCode::ShuttingDown,
        ServeError::Core(CoreError::UnknownPath(_)) => ErrorCode::UnknownPath,
        ServeError::Core(CoreError::InvalidPath(_)) => ErrorCode::InvalidPath,
        ServeError::Core(_) => ErrorCode::Solver,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}
