//! The evented front-end: a single-threaded `poll(2)` reactor driving
//! every connection through nonblocking sockets.
//!
//! # Ownership model
//!
//! The reactor runs on the thread that called [`Server::run`] — it spawns
//! nothing. It owns the listener, every connection (socket, incremental
//! [`FrameDecoder`], write queue), the buffer pool, and the transport
//! counters outright; tenant actors stay on their own threads exactly as
//! under the threaded front-end, reached through the same bounded mpsc
//! queues. The only things that cross threads are (a) actor commands,
//! sent non-blocking, and (b) completions, posted back on an mpsc channel
//! by a callback that then writes one byte into the reactor's self-pipe
//! to interrupt `poll`. Total OS threads for N connections: the reactor,
//! the registry, and one per live tenant — independent of N.
//!
//! # Per-connection state machine
//!
//! Reads are incremental: whatever bytes arrive are appended to the
//! connection's [`FrameDecoder`], and complete frames are peeled off as
//! they form — byte-at-a-time delivery and frames split across reads are
//! the normal case, not an error. Writes are queued: responses encode
//! into pooled buffers and drain as `POLLOUT` allows, so a slow client
//! never blocks the loop.
//!
//! # Backpressure
//!
//! Three bounds compose, end to end:
//!
//! 1. At most **one in-flight actor command per connection**. Further
//!    complete frames stay buffered (undecoded) until the completion
//!    returns — this both preserves response ordering without a reorder
//!    buffer and bounds actor work per client.
//! 2. A connection whose write queue exceeds
//!    [`ServerConfig::max_write_buffer`] stops being *read* (its `POLLIN`
//!    interest is dropped) until the client drains responses — TCP flow
//!    control then pushes back on the client.
//! 3. A full actor queue surfaces as a typed
//!    [`ErrorCode::Busy`](crate::protocol::ErrorCode::Busy) response
//!    instead of blocking the loop or queueing unboundedly.
//!
//! [`Server::run`]: crate::server::Server::run

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError, TrySendError};
use std::sync::Arc;

use dagwave_paths::PathId;

use crate::actor::{ActorOp, ActorReply, Command, Responder, ServeError, TenantHandle};
use crate::protocol::{FrameDecoder, Request, Response};
use crate::server::{self, stats_response, wire_error_code, RegistryCmd, ServerConfig, Transport};

/// The raw `poll(2)`/`pipe(2)` surface, confined here so everything else
/// stays under `deny(unsafe_code)`. Hand-rolled declarations instead of a
/// libc dependency, per the offline-shim policy.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};
    use std::os::raw::{c_int, c_ulong, c_void};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    /// One entry in the `poll(2)` set; layout fixed by POSIX.
    #[repr(C)]
    #[derive(Clone, Copy, Debug)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    impl PollFd {
        pub fn new(fd: RawFd, events: i16) -> Self {
            PollFd {
                fd,
                events,
                revents: 0,
            }
        }
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    const F_GETFL: c_int = 3;
    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0o4000;

    /// Block until some fd is ready or `timeout_ms` passes (negative =
    /// forever), retrying `EINTR` internally. Returns the ready count.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `fds` is a live, exclusively borrowed slice of
            // `repr(C)` PollFd; the kernel writes only `revents`.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// A nonblocking self-pipe: (read end, write end). Both ends close on
    /// drop via `OwnedFd`.
    pub fn wake_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `pipe` writes exactly two fds into the array.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: the two fds were just returned by `pipe` and are owned
        // by no one else.
        let pair = unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
        set_nonblocking(fds[0])?;
        set_nonblocking(fds[1])?;
        Ok(pair)
    }

    fn set_nonblocking(fd: RawFd) -> io::Result<()> {
        // SAFETY: plain fcntl on an fd we own; no pointers involved.
        let flags = unsafe { fcntl(fd, F_GETFL, 0) };
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: as above.
        if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Write one wake byte. A full pipe (`EAGAIN`) means a wake is
    /// already pending, which serves the same purpose.
    pub fn wake(fd: RawFd) {
        let byte = 1u8;
        // SAFETY: one readable byte at a valid address, length 1.
        let _ = unsafe { write(fd, (&byte as *const u8).cast::<c_void>(), 1) };
    }

    /// Drain every pending wake byte from the read end.
    pub fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a live 64-byte scratch buffer.
            let n = unsafe { read(fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

/// Wakes a poll loop from any thread by writing to its self-pipe.
/// Cheap to clone; the write end closes when the last clone drops.
#[derive(Clone)]
pub(crate) struct Waker {
    fd: Arc<std::os::fd::OwnedFd>,
}

impl Waker {
    /// Interrupt the poll loop (idempotent while a wake is pending).
    pub(crate) fn wake(&self) {
        sys::wake(self.fd.as_raw_fd());
    }
}

/// The read end of the self-pipe, owned by whichever loop polls it.
pub(crate) struct WakeReader {
    fd: std::os::fd::OwnedFd,
}

impl WakeReader {
    fn drain(&self) {
        sys::drain(self.fd.as_raw_fd());
    }
}

/// Build the self-pipe pair shared between a poll loop and its wakers.
pub(crate) fn wake_pair() -> io::Result<(WakeReader, Waker)> {
    let (read_end, write_end) = sys::wake_pipe()?;
    Ok((
        WakeReader { fd: read_end },
        Waker {
            fd: Arc::new(write_end),
        },
    ))
}

/// Block until the listener is readable or the waker fires (used by the
/// threaded front-end's accept loop in place of a sleep-poll).
pub(crate) fn wait_accept(listener: &TcpListener, wake: &WakeReader) -> io::Result<()> {
    let mut fds = [
        sys::PollFd::new(listener.as_raw_fd(), sys::POLLIN),
        sys::PollFd::new(wake.fd.as_raw_fd(), sys::POLLIN),
    ];
    sys::poll_fds(&mut fds, -1)?;
    if fds[1].revents != 0 {
        wake.drain();
    }
    Ok(())
}

/// Recycles read/write buffers across frames and connections so
/// steady-state framing does zero allocations.
struct BufferPool {
    free: Vec<Vec<u8>>,
    max: usize,
}

/// Most idle buffers the pool retains; beyond this they drop (a burst's
/// memory is returned to the allocator once it passes).
const POOL_RETAIN: usize = 64;

impl BufferPool {
    fn new() -> Self {
        BufferPool {
            free: Vec::new(),
            max: POOL_RETAIN,
        }
    }

    fn get(&mut self) -> Vec<u8> {
        self.free
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(crate::protocol::READ_CHUNK))
    }

    fn put(&mut self, mut buf: Vec<u8>) {
        buf.clear();
        if self.free.len() < self.max {
            self.free.push(buf);
        }
    }
}

/// Identifies one connection slot across its lifetime: the generation
/// guards against a completion addressed to a connection that died and
/// whose slot was reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ConnToken {
    slot: usize,
    gen: u64,
}

struct Entry {
    gen: u64,
    conn: Option<Conn>,
}

/// Connection storage with stable tokens and O(1) insert/remove.
struct Slab {
    entries: Vec<Entry>,
    free: Vec<usize>,
}

impl Slab {
    fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, conn: Conn) -> ConnToken {
        match self.free.pop() {
            Some(slot) => {
                let e = &mut self.entries[slot];
                e.conn = Some(conn);
                ConnToken { slot, gen: e.gen }
            }
            None => {
                self.entries.push(Entry {
                    gen: 0,
                    conn: Some(conn),
                });
                ConnToken {
                    slot: self.entries.len() - 1,
                    gen: 0,
                }
            }
        }
    }

    fn get_mut(&mut self, token: ConnToken) -> Option<&mut Conn> {
        let e = self.entries.get_mut(token.slot)?;
        if e.gen != token.gen {
            return None;
        }
        e.conn.as_mut()
    }

    fn remove(&mut self, token: ConnToken) -> Option<Conn> {
        let e = self.entries.get_mut(token.slot)?;
        if e.gen != token.gen {
            return None;
        }
        let conn = e.conn.take()?;
        e.gen += 1;
        self.free.push(token.slot);
        Some(conn)
    }

    fn tokens(&self) -> impl Iterator<Item = ConnToken> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| e.conn.as_ref().map(|_| ConnToken { slot, gen: e.gen }))
    }
}

/// Encoded responses waiting for the socket to accept them. `head` is the
/// partial-write offset into the front buffer; `bytes` the queued total.
struct WriteQueue {
    bufs: VecDeque<Vec<u8>>,
    head: usize,
    bytes: usize,
}

impl WriteQueue {
    fn new() -> Self {
        WriteQueue {
            bufs: VecDeque::new(),
            head: 0,
            bytes: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    fn push(&mut self, buf: Vec<u8>, pool: &mut BufferPool) {
        if buf.is_empty() {
            pool.put(buf);
            return;
        }
        self.bytes += buf.len();
        self.bufs.push_back(buf);
    }

    /// Write as much as the socket accepts right now; fully written
    /// buffers return to the pool. `WouldBlock` just stops the drain.
    /// Returns the bytes written.
    fn flush(&mut self, stream: &mut TcpStream, pool: &mut BufferPool) -> io::Result<usize> {
        let mut written = 0usize;
        while let Some(front_len) = self.bufs.front().map(Vec::len) {
            let res = stream.write(&self.bufs[0][self.head..]);
            match res {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    written += n;
                    self.head += n;
                    self.bytes -= n;
                    if self.head == front_len {
                        self.head = 0;
                        if let Some(done) = self.bufs.pop_front() {
                            pool.put(done);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(written)
    }
}

/// Which request the one in-flight actor command answers, shaping its
/// completion into the right wire response.
#[derive(Clone, Copy, Debug)]
enum PendingKind {
    Admit,
    Retire,
    Batch,
    Query,
    Delta,
    Stats,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    write: WriteQueue,
    /// The in-flight actor command, if any. While set, buffered frames
    /// stay undecoded — responses come back in request order for free.
    inflight: Option<PendingKind>,
    /// Close once the write queue drains (fatal wire error, `Shutdown`,
    /// or the peer's EOF after its buffered requests were served).
    draining: bool,
    /// Peer half-closed its side; serve what is buffered, then drain.
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream, read_buf: Vec<u8>) -> Self {
        Conn {
            stream,
            decoder: FrameDecoder::with_buffer(read_buf),
            write: WriteQueue::new(),
            inflight: None,
            draining: false,
            eof: false,
        }
    }
}

/// One actor reply routed back to the reactor thread.
pub(crate) struct Completion {
    token: ConnToken,
    reply: ActorReply,
}

struct Reactor {
    listener: TcpListener,
    registry: Sender<RegistryCmd>,
    stop_rx: Receiver<()>,
    wake: WakeReader,
    waker: Waker,
    completions_tx: Sender<Completion>,
    completions_rx: Receiver<Completion>,
    conns: Slab,
    pool: BufferPool,
    handles: std::collections::HashMap<u64, TenantHandle>,
    transport: Transport,
    config: ServerConfig,
    shutdown_sent: bool,
}

/// Drive the evented front-end until shutdown. Runs on the calling
/// thread; returns once the registry has drained every actor and fired
/// the stop signal.
pub(crate) fn run_evented(
    listener: TcpListener,
    registry: Sender<RegistryCmd>,
    stop_rx: Receiver<()>,
    wake: WakeReader,
    waker: Waker,
    config: ServerConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let (completions_tx, completions_rx) = mpsc::channel();
    let mut r = Reactor {
        listener,
        registry,
        stop_rx,
        wake,
        waker,
        completions_tx,
        completions_rx,
        conns: Slab::new(),
        pool: BufferPool::new(),
        handles: std::collections::HashMap::new(),
        transport: Transport::default(),
        config,
        shutdown_sent: false,
    };
    r.run()?;
    r.final_drain();
    Ok(())
}

impl Reactor {
    fn run(&mut self) -> io::Result<()> {
        let mut pollfds: Vec<sys::PollFd> = Vec::new();
        let mut tokens: Vec<ConnToken> = Vec::new();
        loop {
            pollfds.clear();
            tokens.clear();
            pollfds.push(sys::PollFd::new(self.wake.fd.as_raw_fd(), sys::POLLIN));
            pollfds.push(sys::PollFd::new(self.listener.as_raw_fd(), sys::POLLIN));
            for token in self.conns.tokens().collect::<Vec<_>>() {
                let Some(conn) = self.conns.get_mut(token) else {
                    continue;
                };
                let mut events = 0i16;
                if !conn.eof
                    && !conn.draining
                    && conn.inflight.is_none()
                    && conn.write.bytes <= self.config.max_write_buffer
                {
                    events |= sys::POLLIN;
                }
                if !conn.write.is_empty() {
                    events |= sys::POLLOUT;
                }
                if events == 0 {
                    // Waiting on an actor completion only; the self-pipe
                    // will wake us.
                    continue;
                }
                pollfds.push(sys::PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(token);
            }

            sys::poll_fds(&mut pollfds, -1)?;

            if pollfds[0].revents != 0 {
                self.wake.drain();
            }
            // Completions may be pending even without a wake byte (the
            // send-then-wake pair is not atomic); draining is cheap.
            while let Ok(c) = self.completions_rx.try_recv() {
                self.handle_completion(c);
            }
            match self.stop_rx.try_recv() {
                Ok(()) | Err(TryRecvError::Disconnected) => return Ok(()),
                Err(TryRecvError::Empty) => {}
            }
            if pollfds[1].revents != 0 {
                self.accept_all();
            }
            for (i, pfd) in pollfds.iter().enumerate().skip(2) {
                if pfd.revents == 0 {
                    continue;
                }
                let token = tokens[i - 2];
                self.handle_conn_event(token, pfd.revents);
            }
        }
    }

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // drop the connection, keep serving
                    }
                    let read_buf = self.pool.get();
                    self.conns.insert(Conn::new(stream, read_buf));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient per-connection accept failures (e.g. the peer
                // already reset) must not kill the loop.
                Err(_) => break,
            }
        }
    }

    fn handle_conn_event(&mut self, token: ConnToken, revents: i16) {
        if revents & (sys::POLLERR | sys::POLLNVAL) != 0 {
            self.close(token);
            return;
        }
        if revents & (sys::POLLIN | sys::POLLHUP) != 0 && !self.read_conn(token) {
            return; // closed
        }
        if revents & sys::POLLOUT != 0 {
            self.flush_conn(token);
        }
        self.maybe_close(token);
    }

    /// One nonblocking read into the decoder, then process whatever
    /// frames completed. Returns false if the connection closed.
    fn read_conn(&mut self, token: ConnToken) -> bool {
        {
            let Some(conn) = self.conns.get_mut(token) else {
                return false;
            };
            match conn.decoder.fill_from(&mut conn.stream) {
                Ok(0) => conn.eof = true,
                Ok(n) => self.transport.bytes_in += n as u64,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(token);
                    return false;
                }
            }
        }
        self.process_conn(token);
        true
    }

    /// Decode and dispatch buffered frames while the connection may make
    /// progress: no command in flight, write queue under the cap, not
    /// draining. Exactly the backpressure gate described in the module
    /// docs.
    fn process_conn(&mut self, token: ConnToken) {
        enum Step {
            /// Decoded a request that needs an actor; handled outside the
            /// connection borrow.
            Dispatch(Request),
            /// `Shutdown` frame: response queued, registry notification
            /// still owed.
            Shutdown,
            /// Handled inline (error response queued); keep decoding.
            Continue,
            /// No progress possible right now.
            Done,
        }
        loop {
            let step = {
                let Reactor {
                    conns,
                    pool,
                    transport,
                    config,
                    ..
                } = self;
                let Some(conn) = conns.get_mut(token) else {
                    return;
                };
                if conn.draining
                    || conn.inflight.is_some()
                    || conn.write.bytes > config.max_write_buffer
                {
                    Step::Done
                } else {
                    match conn.decoder.next_frame() {
                        Ok(Some((op, payload))) => match Request::decode(op, payload) {
                            Ok(Request::Shutdown) => {
                                enqueue(conn, &Response::ShuttingDown, pool, transport);
                                conn.draining = true;
                                Step::Shutdown
                            }
                            Ok(req) => Step::Dispatch(req),
                            Err(e) => {
                                // Payload-level error: the frame was fully
                                // consumed, so the stream is still
                                // synchronized — report and keep serving.
                                let resp = Response::Error {
                                    code: wire_error_code(&e),
                                    message: e.to_string(),
                                };
                                enqueue(conn, &resp, pool, transport);
                                Step::Continue
                            }
                        },
                        Ok(None) => {
                            if conn.eof {
                                // Every buffered frame is served and no
                                // more bytes can arrive: flush and close.
                                conn.draining = true;
                            }
                            Step::Done
                        }
                        Err(e) => {
                            // Header-level error: the stream is
                            // unsynchronized. Answer once, then drain and
                            // close (mirrors the threaded front-end).
                            let resp = Response::Error {
                                code: wire_error_code(&e),
                                message: e.to_string(),
                            };
                            enqueue(conn, &resp, pool, transport);
                            conn.draining = true;
                            Step::Done
                        }
                    }
                }
            };
            match step {
                Step::Dispatch(req) => self.dispatch(token, req),
                Step::Shutdown => {
                    if !self.shutdown_sent {
                        self.shutdown_sent = true;
                        let _ = self.registry.send(RegistryCmd::Shutdown);
                    }
                }
                Step::Continue => {}
                Step::Done => break,
            }
        }
        self.flush_conn(token);
        self.maybe_close(token);
    }

    /// Hand one decoded request to its tenant actor without blocking;
    /// immediate failures (lease error, full or stopped actor queue)
    /// become typed responses on the spot.
    fn dispatch(&mut self, token: ConnToken, req: Request) {
        let (tenant, kind) = match &req {
            Request::Admit { tenant, .. } => (*tenant, PendingKind::Admit),
            Request::Retire { tenant, .. } => (*tenant, PendingKind::Retire),
            Request::Batch { tenant, .. } => (*tenant, PendingKind::Batch),
            Request::Query { tenant } => (*tenant, PendingKind::Query),
            Request::QueryDelta { tenant, .. } => (*tenant, PendingKind::Delta),
            Request::Stats { tenant } => (*tenant, PendingKind::Stats),
            Request::Shutdown => return, // handled by the caller
        };
        let handle = match self.handles.get(&tenant) {
            Some(h) => h.clone(),
            None => match server::lease(&self.registry, tenant) {
                Ok(h) => {
                    self.handles.insert(tenant, h.clone());
                    h
                }
                Err(e) => {
                    self.respond(token, &server::error_response(e));
                    return;
                }
            },
        };
        let tx = self.completions_tx.clone();
        let waker = self.waker.clone();
        let respond = Responder::Callback(Box::new(move |reply| {
            let _ = tx.send(Completion { token, reply });
            waker.wake();
        }));
        let cmd = match req {
            Request::Admit { arcs, .. } => Command::Apply {
                ops: vec![ActorOp::Add(server::to_arc_ids(arcs))],
                respond,
            },
            Request::Retire { id, .. } => Command::Apply {
                ops: vec![ActorOp::Remove(PathId(id))],
                respond,
            },
            Request::Batch { ops, .. } => Command::Apply {
                ops: server::to_actor_ops(ops),
                respond,
            },
            Request::Query { .. } => Command::Query { respond },
            Request::QueryDelta { since, .. } => Command::QueryDelta { since, respond },
            Request::Stats { .. } => Command::Stats { respond },
            Request::Shutdown => return,
        };
        match handle.try_send(cmd) {
            Ok(()) => {
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.inflight = Some(kind);
                }
            }
            Err(TrySendError::Full(_)) => {
                self.transport.busy_rejections += 1;
                self.respond(token, &server::error_response(ServeError::Busy));
            }
            Err(TrySendError::Disconnected(_)) => {
                // The actor is gone (shutdown raced this request); drop
                // the stale handle so a later lease reflects registry
                // state.
                self.handles.remove(&tenant);
                self.respond(token, &server::error_response(ServeError::Stopped));
            }
        }
    }

    /// An actor reply came back: shape it into the wire response for the
    /// request kind that was in flight, then resume the connection.
    fn handle_completion(&mut self, c: Completion) {
        let resp = {
            let Some(conn) = self.conns.get_mut(c.token) else {
                return; // connection died while the command was in flight
            };
            let Some(kind) = conn.inflight.take() else {
                return;
            };
            completion_response(kind, c.reply, &self.transport)
        };
        self.respond(c.token, &resp);
        // The completion may unblock buffered frames.
        self.process_conn(c.token);
    }

    /// Enqueue a response and opportunistically flush, saving a poll
    /// round-trip when the socket has room (the common case).
    fn respond(&mut self, token: ConnToken, resp: &Response) {
        let Reactor {
            conns,
            pool,
            transport,
            ..
        } = self;
        let Some(conn) = conns.get_mut(token) else {
            return;
        };
        enqueue(conn, resp, pool, transport);
        self.flush_conn(token);
        self.maybe_close(token);
    }

    /// Drain the write queue as far as the socket allows. Returns false
    /// if the connection closed.
    fn flush_conn(&mut self, token: ConnToken) -> bool {
        let Reactor {
            conns,
            pool,
            transport,
            ..
        } = self;
        let Some(conn) = conns.get_mut(token) else {
            return false;
        };
        match conn.write.flush(&mut conn.stream, pool) {
            Ok(n) => {
                transport.bytes_out += n as u64;
                true
            }
            Err(_) => {
                self.close(token);
                false
            }
        }
    }

    /// Close the connection once it is fully served: draining (or EOF)
    /// with an empty write queue and nothing in flight.
    fn maybe_close(&mut self, token: ConnToken) {
        let done = self
            .conns
            .get_mut(token)
            .is_some_and(|c| c.draining && c.write.is_empty() && c.inflight.is_none());
        if done {
            self.close(token);
        }
    }

    fn close(&mut self, token: ConnToken) {
        if let Some(conn) = self.conns.remove(token) {
            self.pool.put(conn.decoder.into_buffer());
            for buf in conn.write.bufs {
                self.pool.put(buf);
            }
            // `conn.stream` drops here, closing the socket.
        }
    }

    /// Best-effort post-shutdown flush: give connections with queued
    /// responses a short bounded window to drain, then drop everything.
    fn final_drain(&mut self) {
        /// Per-round poll timeout during the shutdown drain.
        const DRAIN_POLL_MS: i32 = 50;
        /// Rounds before giving up on slow readers (bounds shutdown at
        /// `DRAIN_ROUNDS * DRAIN_POLL_MS` ≈ 1s).
        const DRAIN_ROUNDS: usize = 20;
        for _ in 0..DRAIN_ROUNDS {
            let pending: Vec<ConnToken> = self
                .conns
                .tokens()
                .collect::<Vec<_>>()
                .into_iter()
                .filter(|t| self.conns.get_mut(*t).is_some_and(|c| !c.write.is_empty()))
                .collect();
            if pending.is_empty() {
                break;
            }
            let mut fds: Vec<sys::PollFd> = Vec::new();
            for &t in &pending {
                if let Some(conn) = self.conns.get_mut(t) {
                    fds.push(sys::PollFd::new(conn.stream.as_raw_fd(), sys::POLLOUT));
                }
            }
            if sys::poll_fds(&mut fds, DRAIN_POLL_MS).is_err() {
                break;
            }
            for &t in &pending {
                self.flush_conn(t);
            }
        }
    }
}

/// Encode `resp` into a pooled buffer onto the connection's write queue,
/// tracking the global high-water mark.
fn enqueue(conn: &mut Conn, resp: &Response, pool: &mut BufferPool, transport: &mut Transport) {
    let mut buf = pool.get();
    resp.encode_frame_into(&mut buf);
    conn.write.push(buf, pool);
    transport.max_write_queue = transport.max_write_queue.max(conn.write.bytes as u64);
}

/// Map an actor reply back to the wire response for the request kind it
/// answers. A kind/reply mismatch cannot happen by construction; answer
/// with a typed error rather than panic if it ever does.
fn completion_response(kind: PendingKind, reply: ActorReply, transport: &Transport) -> Response {
    match (kind, reply) {
        (PendingKind::Admit, ActorReply::Applied(Ok(ids))) => server::admitted_response(ids),
        (PendingKind::Retire, ActorReply::Applied(Ok(_))) => Response::Retired,
        (PendingKind::Batch, ActorReply::Applied(Ok(ids))) => Response::Applied {
            added: ids.into_iter().map(|id| id.0).collect(),
        },
        (PendingKind::Query, ActorReply::Snapshot(Ok(snap))) => server::solution_response(&snap),
        (PendingKind::Delta, ActorReply::Delta(Ok(d))) => server::delta_response(&d),
        (PendingKind::Stats, ActorReply::Stats(pair)) => {
            stats_response(&pair.0, &pair.1, transport)
        }
        (_, ActorReply::Applied(Err(e)))
        | (_, ActorReply::Snapshot(Err(e)))
        | (_, ActorReply::Delta(Err(e))) => server::error_response(e),
        _ => server::error_response(ServeError::Stopped),
    }
}
