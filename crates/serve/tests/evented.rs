//! Adversarial-framing and backpressure tests for the evented front-end:
//! raw sockets delivering bytes one at a time, frames split across reads,
//! pipelined requests, slow readers with full write queues, and typed
//! `Busy` rejections when the actor queue is bounded at 1. Everything
//! here talks to a real server over loopback TCP — no mocking.
#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dagwave_core::Workspace;
use dagwave_gen::compose::federated;
use dagwave_graph::builder::from_edges;
use dagwave_paths::DipathFamily;
use dagwave_serve::protocol::{FrameDecoder, HEADER_LEN};
use dagwave_serve::{
    ActorConfig, AdmissionPolicy, Client, ClientError, ErrorCode, FrontEnd, Request, Response,
    Server, ServerConfig, ServerHandle,
};

fn evented_config() -> ServerConfig {
    ServerConfig {
        front_end: FrontEnd::Evented,
        ..ServerConfig::default()
    }
}

fn line_server(n: usize, config: ServerConfig) -> ServerHandle {
    let factory = Box::new(move |_tenant: u64| {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Workspace::new(
            dagwave_core::SolveSession::auto(),
            from_edges(n, &edges),
            DipathFamily::new(),
        )
    });
    Server::bind("127.0.0.1:0", factory, config)
        .expect("bind loopback")
        .spawn()
}

fn federated_server(k: usize, config: ServerConfig) -> ServerHandle {
    let inst = federated(k);
    let factory = Box::new(move |_tenant: u64| {
        Workspace::new(
            dagwave_core::SolveSession::auto(),
            inst.graph.clone(),
            inst.family.clone(),
        )
    });
    Server::bind("127.0.0.1:0", factory, config)
        .expect("bind loopback")
        .spawn()
}

/// Read exactly one response frame off a raw stream.
fn read_response(stream: &mut TcpStream) -> Response {
    let mut dec = FrameDecoder::new();
    loop {
        if let Some((op, payload)) = dec.next_frame().expect("well-formed response") {
            return Response::decode(op, payload).expect("decodable response");
        }
        let mut byte = [0u8; 1];
        assert_ne!(
            stream.read(&mut byte).expect("read"),
            0,
            "server closed before responding"
        );
        dec.push(&byte);
    }
}

/// Byte-at-a-time delivery: the reactor's incremental decoder must
/// assemble frames no matter how pathologically the kernel fragments
/// them, and every response must still arrive in order.
#[test]
fn byte_at_a_time_delivery_still_serves() {
    let handle = line_server(4, evented_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    for (i, req) in [
        Request::Admit {
            tenant: 0,
            arcs: vec![0, 1],
        },
        Request::Admit {
            tenant: 0,
            arcs: vec![1, 2],
        },
        Request::Query { tenant: 0 },
    ]
    .iter()
    .enumerate()
    {
        for byte in req.to_frame() {
            stream.write_all(&[byte]).expect("write one byte");
            stream.flush().expect("flush");
        }
        match (i, read_response(&mut stream)) {
            (0, Response::Admitted { id }) => assert_eq!(id, 0),
            (1, Response::Admitted { id }) => assert_eq!(id, 1),
            (2, Response::Solution(s)) => assert_eq!(s.num_colors, 2),
            (_, other) => panic!("unexpected response {other:?}"),
        }
    }

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Frames split across arbitrary write boundaries — including a split
/// mid-header and a split mid-payload — decode identically.
#[test]
fn frames_split_across_reads_decode_identically() {
    let handle = line_server(4, evented_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let frame = Request::Admit {
        tenant: 0,
        arcs: vec![0, 1, 2],
    }
    .to_frame();
    // Split points chosen to land inside the header (3), exactly at the
    // header boundary (HEADER_LEN), and inside the payload.
    let cuts = [3, HEADER_LEN, HEADER_LEN + 5];
    let mut start = 0;
    for &cut in &cuts {
        stream.write_all(&frame[start..cut]).expect("partial write");
        stream.flush().expect("flush");
        // Give the reactor a readiness cycle on the partial frame.
        std::thread::sleep(Duration::from_millis(5));
        start = cut;
    }
    stream.write_all(&frame[start..]).expect("final piece");
    stream.flush().expect("flush");
    match read_response(&mut stream) {
        Response::Admitted { id } => assert_eq!(id, 0),
        other => panic!("unexpected response {other:?}"),
    }

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Two frames written back-to-back in one TCP segment: the decoder must
/// find both, and the one-in-flight rule must answer them in order.
#[test]
fn pipelined_frames_answer_in_order() {
    let handle = line_server(5, evented_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");

    let mut bytes = Vec::new();
    bytes.extend_from_slice(
        &Request::Admit {
            tenant: 0,
            arcs: vec![0],
        }
        .to_frame(),
    );
    bytes.extend_from_slice(
        &Request::Admit {
            tenant: 0,
            arcs: vec![1],
        }
        .to_frame(),
    );
    bytes.extend_from_slice(&Request::Query { tenant: 0 }.to_frame());
    stream.write_all(&bytes).expect("write all three at once");
    stream.flush().expect("flush");

    match read_response(&mut stream) {
        Response::Admitted { id } => assert_eq!(id, 0),
        other => panic!("first response: {other:?}"),
    }
    match read_response(&mut stream) {
        Response::Admitted { id } => assert_eq!(id, 1),
        other => panic!("second response: {other:?}"),
    }
    match read_response(&mut stream) {
        Response::Solution(s) => assert_eq!(s.num_colors, 1, "disjoint arcs share a color"),
        other => panic!("third response: {other:?}"),
    }

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// A slow reader whose write queue fills must not wedge the reactor:
/// while the slow client refuses to read its (large) query responses, a
/// second client on the same server keeps getting served. The slow
/// client's responses all arrive intact once it finally drains.
#[test]
fn slow_reader_backpressure_keeps_the_loop_live() {
    // Tiny write buffer so backpressure engages after one queued response.
    let config = ServerConfig {
        max_write_buffer: 1024,
        ..evented_config()
    };
    let handle = federated_server(3, config);

    let mut slow = TcpStream::connect(handle.addr()).expect("connect slow");
    // Many pipelined queries; the federated(3) solution payload is big
    // enough that a handful of responses exceed max_write_buffer.
    const QUERIES: usize = 64;
    let mut bytes = Vec::new();
    for _ in 0..QUERIES {
        bytes.extend_from_slice(&Request::Query { tenant: 0 }.to_frame());
    }
    slow.write_all(&bytes).expect("pipeline queries");
    slow.flush().expect("flush");
    // Do NOT read yet: let the write queue fill and reading pause.
    std::thread::sleep(Duration::from_millis(50));

    // The loop must still serve others while the slow client is parked.
    let mut live = Client::connect(handle.addr()).expect("connect live");
    for _ in 0..5 {
        let s = live
            .query(1)
            .expect("live client served during backpressure");
        assert!(s.num_colors > 0);
    }

    // Now drain the slow connection: every response arrives, in order.
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut first: Option<Vec<(u32, u32)>> = None;
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 4096];
    let mut seen = 0;
    while seen < QUERIES {
        if let Some((op, payload)) = dec.next_frame().expect("valid response stream") {
            match Response::decode(op, payload).expect("decodable") {
                Response::Solution(s) => {
                    let colors = s.colors;
                    match &first {
                        None => first = Some(colors),
                        Some(f) => assert_eq!(f, &colors, "responses diverged mid-stream"),
                    }
                    seen += 1;
                }
                other => panic!("unexpected response {other:?}"),
            }
            continue;
        }
        let n = slow.read(&mut buf).expect("drain");
        assert_ne!(n, 0, "server closed with {seen}/{QUERIES} responses served");
        dec.push(&buf[..n]);
    }

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// With the actor queue bounded at 1, a burst of concurrent mutations
/// earns typed `Busy` rejections (never a hang, never a dropped
/// connection), the connection stays usable, and a retry succeeds.
#[test]
fn full_actor_queue_yields_typed_busy() {
    let config = ServerConfig {
        queue_depth: 1,
        ..evented_config()
    };
    let handle = line_server(4, config);
    let addr = handle.addr();

    // Hammer from several threads so try_send races a busy actor.
    let mut workers = Vec::new();
    for _ in 0..8 {
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut busy = 0u32;
            for _ in 0..50 {
                match client.admit(0, vec![0, 1]) {
                    Ok(id) => {
                        // The retire can be rejected Busy too; nothing was
                        // applied, so retrying until it lands is the
                        // documented client contract.
                        loop {
                            match client.retire(0, id) {
                                Ok(()) => break,
                                Err(ClientError::Remote {
                                    code: ErrorCode::Busy,
                                    ..
                                }) => busy += 1,
                                Err(other) => panic!("retire failed under load: {other}"),
                            }
                        }
                    }
                    Err(ClientError::Remote { code, .. }) => {
                        assert_eq!(code, ErrorCode::Busy, "only Busy is acceptable here");
                        busy += 1;
                    }
                    Err(other) => panic!("transport failure under load: {other}"),
                }
            }
            busy
        }));
    }
    let total_busy: u32 = workers.into_iter().map(|w| w.join().expect("worker")).sum();

    // Whatever the race produced, the server is still coherent: a fresh
    // client gets served and the stats RPC reports the rejections.
    let mut client = Client::connect(addr).expect("connect");
    let id = client.admit(0, vec![0, 1]).expect("server still serves");
    client.retire(0, id).expect("retire");
    let stats = client.stats(0).expect("stats");
    assert_eq!(
        stats.busy_rejections, total_busy as u64,
        "every Busy response is counted exactly once"
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// `AdmissionPolicy::Wait` over the wire: an over-budget admit parks
/// until a retirement on another connection frees capacity, then
/// succeeds — no typed rejection, no reordering of the waiting client's
/// own requests.
#[test]
fn wait_admission_parks_over_the_wire() {
    let config = ServerConfig {
        span_budget: Some(2),
        admission: AdmissionPolicy::Wait {
            max_queue: 8,
            timeout: Duration::from_secs(10),
        },
        ..evented_config()
    };
    let handle = line_server(4, config);
    let addr = handle.addr();

    let mut setup = Client::connect(addr).expect("connect");
    let first = setup.admit(0, vec![0, 1]).expect("load 1");
    setup.admit(0, vec![1, 2]).expect("load 2 (at budget)");

    // Over-budget admit parks; run it from its own thread since the
    // blocking client waits for the response.
    let waiter = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect waiter");
        client.admit(0, vec![0, 1, 2])
    });
    std::thread::sleep(Duration::from_millis(100));
    // Freeing capacity lets the parked batch through.
    setup.retire(0, first).expect("retire frees capacity");
    let id = waiter
        .join()
        .expect("waiter thread")
        .expect("parked admit succeeds once capacity frees");
    assert_eq!(id, 0, "freed slot is reused deterministically");

    // And the timeout path still yields the typed rejection.
    let config = ServerConfig {
        span_budget: Some(1),
        admission: AdmissionPolicy::Wait {
            max_queue: 8,
            timeout: Duration::from_millis(50),
        },
        ..evented_config()
    };
    let timeout_handle = line_server(3, config);
    let mut client = Client::connect(timeout_handle.addr()).expect("connect");
    client.admit(0, vec![0]).expect("fills budget");
    match client.admit(0, vec![0]) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::SpanBudgetExceeded),
        other => panic!("expected timed-out park, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    timeout_handle.join().expect("clean exit");

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// The evented front-end's whole point: OS thread count stays flat as
/// connections scale. 128 concurrent connections may add at most 4
/// threads over the 8-connection baseline (in practice: zero — the
/// reactor is one thread regardless).
#[test]
fn thread_count_is_flat_in_connection_count() {
    fn os_threads() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line")
    }

    let handle = line_server(4, evented_config());
    let addr = handle.addr();

    let mut base_conns: Vec<Client> = (0..8)
        .map(|_| Client::connect(addr).expect("connect"))
        .collect();
    for c in &mut base_conns {
        c.query(0).expect("serve baseline");
    }
    let baseline = os_threads();

    let mut many: Vec<Client> = (0..120)
        .map(|_| Client::connect(addr).expect("connect"))
        .collect();
    for c in &mut many {
        c.query(0).expect("every connection is served");
    }
    let loaded = os_threads();
    assert!(
        loaded <= baseline + 4,
        "evented front-end grew {baseline} -> {loaded} threads under 128 connections"
    );

    drop(many);
    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
    drop(base_conns);
}

/// ActorConfig::default matches the documented knob values (the evented
/// front-end's backpressure story depends on these bounds existing).
#[test]
fn bounded_defaults_are_in_force() {
    let cfg = ActorConfig::default();
    assert!(cfg.queue_depth > 0, "actor queues must be bounded");
    assert!(matches!(cfg.admission, AdmissionPolicy::Reject));
    let sc = ServerConfig::default();
    assert!(sc.queue_depth > 0);
    assert!(sc.max_write_buffer > 0);
    assert!(matches!(sc.front_end, FrontEnd::Threaded));
}
