//! Property tests for the wire protocol: every frame type round-trips
//! exactly, and *no* byte sequence — truncated, oversized, corrupted, or
//! random — can make the decoder panic. Decoding is total: bytes in,
//! `Ok(message)` or a typed `WireError` out.

use dagwave_serve::protocol::{decode_header, FrameDecoder, WireError, HEADER_LEN, MAX_PAYLOAD};
use dagwave_serve::{ErrorCode, Request, Response, WireDelta, WireOp, WireSolution, WireStats};
use proptest::prelude::*;

/// Deterministic splitmix64 so a `(seed, shape)` pair fully determines a
/// generated message (the proptest shim's ranges drive the seeds).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn u32_vec(&mut self, max_len: u64) -> Vec<u32> {
        (0..self.below(max_len))
            .map(|_| self.next() as u32)
            .collect()
    }

    fn string(&mut self, max_len: u64) -> String {
        let n = self.below(max_len);
        (0..n)
            .map(|_| char::from(b'a' + (self.below(26) as u8)))
            .collect()
    }
}

fn arbitrary_request(mix: &mut Mix) -> Request {
    match mix.below(7) {
        0 => Request::Admit {
            tenant: mix.next(),
            arcs: mix.u32_vec(9),
        },
        1 => Request::Retire {
            tenant: mix.next(),
            id: mix.next() as u32,
        },
        2 => Request::Batch {
            tenant: mix.next(),
            ops: (0..mix.below(6))
                .map(|_| {
                    if mix.below(2) == 0 {
                        WireOp::Add(mix.u32_vec(5))
                    } else {
                        WireOp::Remove(mix.next() as u32)
                    }
                })
                .collect(),
        },
        3 => Request::Query { tenant: mix.next() },
        4 => Request::Stats { tenant: mix.next() },
        5 => Request::QueryDelta {
            tenant: mix.next(),
            since: mix.next(),
        },
        _ => Request::Shutdown,
    }
}

fn arbitrary_response(mix: &mut Mix) -> Response {
    match mix.below(8) {
        0 => Response::Admitted {
            id: mix.next() as u32,
        },
        1 => Response::Retired,
        2 => Response::Applied {
            added: mix.u32_vec(9),
        },
        3 => Response::Solution(WireSolution {
            num_colors: mix.next() as u32,
            load: mix.next() as u32,
            optimal: mix.below(2) == 1,
            shard_count: mix.next() as u32,
            strategy: mix.string(12),
            colors: (0..mix.below(8))
                .map(|_| (mix.next() as u32, mix.next() as u32))
                .collect(),
        }),
        4 => Response::Stats(WireStats {
            live_paths: mix.next(),
            shard_count: mix.next(),
            max_load: mix.next(),
            recomputes: mix.next(),
            shards_reused: mix.next(),
            shards_resolved: mix.next(),
            batches: mix.next(),
            applies: mix.next(),
            queries: mix.next(),
            interned_arc_lists: mix.next(),
            intern_hits: mix.next(),
            intern_misses: mix.next(),
            epoch: mix.next(),
            delta_queries: mix.next(),
            delta_resyncs: mix.next(),
            bytes_in: mix.next(),
            bytes_out: mix.next(),
            busy_rejections: mix.next(),
            max_write_queue: mix.next(),
        }),
        5 => Response::Delta(WireDelta {
            epoch: mix.next(),
            span: mix.next() as u32,
            full_resync: mix.below(2) == 1,
            changes: (0..mix.below(8))
                .map(|_| (mix.next() as u32, mix.next() as u32))
                .collect(),
            removed: mix.u32_vec(6),
        }),
        6 => Response::ShuttingDown,
        _ => Response::Error {
            code: ErrorCode::from_u16(mix.next() as u16),
            message: mix.string(20),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request round-trips through its frame bytes exactly, and the
    /// decoder consumes exactly the frame.
    #[test]
    fn request_round_trip(seed in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        let req = arbitrary_request(&mut mix);
        let bytes = req.to_frame();
        let (back, used) = Request::from_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, req);
        prop_assert_eq!(used, bytes.len());
    }

    /// Every response round-trips the same way (including every error
    /// code, via `ErrorCode::Other` for unknown values).
    #[test]
    fn response_round_trip(seed in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        let resp = arbitrary_response(&mut mix);
        let bytes = resp.to_frame();
        let (back, used) = Response::from_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, resp);
        prop_assert_eq!(used, bytes.len());
    }

    /// Every *proper prefix* of a valid frame fails with a typed error —
    /// never a panic, never a bogus success.
    #[test]
    fn truncated_requests_err_cleanly(seed in 0u64..100_000) {
        let mut mix = Mix(seed);
        let bytes = arbitrary_request(&mut mix).to_frame();
        for cut in 0..bytes.len() {
            prop_assert!(
                Request::from_frame(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded"
            );
        }
    }

    /// Same for responses.
    #[test]
    fn truncated_responses_err_cleanly(seed in 0u64..100_000) {
        let mut mix = Mix(seed);
        let bytes = arbitrary_response(&mut mix).to_frame();
        for cut in 0..bytes.len() {
            prop_assert!(
                Response::from_frame(&bytes[..cut]).is_err(),
                "prefix of length {cut} decoded"
            );
        }
    }

    /// Single-byte corruption anywhere in a frame either still decodes to
    /// *some* message (payload-value flips) or errs typed — it never
    /// panics and never consumes a different byte count on success.
    #[test]
    fn corrupted_frames_never_panic(seed in 0u64..100_000, flip in 0usize..64, xor in 1u8..=255) {
        let mut mix = Mix(seed);
        let mut bytes = arbitrary_request(&mut mix).to_frame();
        let i = flip % bytes.len();
        bytes[i] ^= xor;
        if let Ok((_, used)) = Request::from_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
        let mut bytes = arbitrary_response(&mut mix).to_frame();
        let i = flip % bytes.len();
        bytes[i] ^= xor;
        if let Ok((_, used)) = Response::from_frame(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Fully random byte soup never panics either decoder.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..100_000, len in 0usize..96) {
        let mut mix = Mix(seed);
        let bytes: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
        let _ = Request::from_frame(&bytes);
        let _ = Response::from_frame(&bytes);
        let _ = decode_header(&bytes);
    }

    /// A header declaring a payload over the cap is rejected at the
    /// header — before any allocation — whatever the declared opcode.
    #[test]
    fn oversized_lengths_rejected(extra in 1u32..1000, op in 0u8..=255) {
        let len = MAX_PAYLOAD.saturating_add(extra);
        let mut header = vec![0xDA, 0x01, op, 0x00];
        header.extend_from_slice(&len.to_le_bytes());
        prop_assert_eq!(decode_header(&header), Err(WireError::Oversized(len)));
    }

    /// Versions outside the accepted MIN..=CURRENT window are rejected
    /// before the opcode is even looked at (both 0x01 and 0x02 decode).
    #[test]
    fn unknown_versions_rejected(version in 0u8..=255, op in 0u8..=255) {
        prop_assume!(!(0x01..=0x02).contains(&version));
        let header = [0xDA, version, op, 0x00, 0, 0, 0, 0];
        prop_assert_eq!(
            decode_header(&header),
            Err(WireError::UnknownVersion(version))
        );
    }

    /// Every opcode outside the request table decodes to UnknownOpcode
    /// (with an empty payload, so structure errors cannot mask it).
    #[test]
    fn unknown_request_opcodes_rejected(op in 0u8..=255) {
        prop_assume!(!(0x01..=0x07).contains(&op));
        prop_assert_eq!(
            Request::decode(op, &[]),
            Err(WireError::UnknownOpcode(op))
        );
    }

    /// The streaming decoder recovers every message from a concatenated
    /// frame stream regardless of how the bytes are chunked — the chunk
    /// boundaries (driven by `seed2`) can split headers, payloads, and
    /// frame boundaries arbitrarily, down to byte-at-a-time.
    #[test]
    fn streaming_decode_is_chunking_invariant(seed in 0u64..100_000, seed2 in 0u64..1_000_000) {
        let mut mix = Mix(seed);
        let mut expected = Vec::new();
        let mut stream = Vec::new();
        for _ in 0..(1 + mix.below(4)) {
            let req = arbitrary_request(&mut mix);
            stream.extend_from_slice(&req.to_frame());
            expected.push(req);
        }
        let mut chunks = Mix(seed2);
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        let mut i = 0;
        while i < stream.len() {
            let n = 1 + chunks.below(7) as usize;
            let end = (i + n).min(stream.len());
            dec.push(&stream[i..end]);
            i = end;
            while let Some((op, payload)) = dec.next_frame().expect("valid stream") {
                got.push(Request::decode(op, payload).expect("valid frame"));
            }
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Responses stream-decode the same way (the reactor's read path).
    #[test]
    fn streaming_response_decode_is_chunking_invariant(seed in 0u64..100_000, cut in 1usize..9) {
        let mut mix = Mix(seed);
        let resp = arbitrary_response(&mut mix);
        let stream = resp.to_frame();
        let mut dec = FrameDecoder::new();
        let mut got = None;
        for chunk in stream.chunks(cut) {
            dec.push(chunk);
            if let Some((op, payload)) = dec.next_frame().expect("valid stream") {
                got = Some(Response::decode(op, payload).expect("valid frame"));
            }
        }
        prop_assert_eq!(got, Some(resp));
    }

    /// Feeding the streaming decoder random byte soup never panics: it
    /// either waits for more bytes or fails with a typed header error.
    #[test]
    fn streaming_decode_of_random_bytes_never_panics(seed in 0u64..100_000, len in 0usize..96) {
        let mut mix = Mix(seed);
        let bytes: Vec<u8> = (0..len).map(|_| mix.next() as u8).collect();
        let mut dec = FrameDecoder::new();
        for chunk in bytes.chunks(5) {
            dec.push(chunk);
            if dec.next_frame().is_err() {
                break; // header errors are sticky: the stream is dead
            }
        }
    }
}

/// The header length constant and the frame overhead agree (a change to
/// either is a wire-format break and must be deliberate).
#[test]
fn frame_overhead_is_header_len() {
    let req = Request::Shutdown;
    assert_eq!(
        req.to_frame().len(),
        HEADER_LEN + req.encode_payload().len()
    );
    assert_eq!(HEADER_LEN, 8);
}

/// Trailing garbage after a structurally complete payload is an error,
/// not silently ignored (catches length-prefix desync early).
#[test]
fn trailing_payload_bytes_rejected() {
    let mut payload = Request::Query { tenant: 9 }.encode_payload();
    payload.extend_from_slice(&[1, 2, 3]);
    assert_eq!(Request::decode(0x04, &payload), Err(WireError::Trailing(3)));
}
