//! End-to-end loopback acceptance: a real server on `127.0.0.1:0`, real
//! TCP clients, and the hard invariant of the whole service layer —
//! driving a churn workload **over the wire** leaves the tenant's
//! workspace bit-identical to a from-scratch `SolveSession` solve of the
//! same final family. Ids are deterministic (smallest free slot), so the
//! test predicts every server-assigned id with a mirrored `PathFamily`.

use dagwave_core::{CoreError, DecomposePolicy, Mutation, SolveSession, SolverBuilder, Workspace};
use dagwave_gen::compose::{churn, federated};
use dagwave_graph::builder::from_edges;
use dagwave_paths::{DipathFamily, PathFamily};
use dagwave_serve::{Client, ClientError, ErrorCode, Server, ServerConfig, WireOp};

fn sharded() -> SolveSession {
    SolverBuilder::new()
        .decompose(DecomposePolicy::Always)
        .build()
}

/// Every e2e invariant must hold under BOTH front-ends: thread-per-
/// connection and (on unix) the single-threaded poll(2) reactor.
fn both_configs() -> Vec<ServerConfig> {
    let mut configs = vec![ServerConfig::default()];
    #[cfg(unix)]
    configs.push(ServerConfig {
        front_end: dagwave_serve::FrontEnd::Evented,
        ..ServerConfig::default()
    });
    configs
}

/// A server whose every tenant starts from the `federated(k)` instance.
fn federated_server(k: usize, config: ServerConfig) -> dagwave_serve::ServerHandle {
    let inst = federated(k);
    let factory = Box::new(move |_tenant: u64| {
        Workspace::new(sharded(), inst.graph.clone(), inst.family.clone())
    });
    Server::bind("127.0.0.1:0", factory, config)
        .expect("bind loopback")
        .spawn()
}

/// A server whose tenants start from an empty family on a line DAG.
fn line_server(n: usize, config: ServerConfig) -> dagwave_serve::ServerHandle {
    let factory = Box::new(move |_tenant: u64| {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Workspace::new(sharded(), from_edges(n, &edges), DipathFamily::new())
    });
    Server::bind("127.0.0.1:0", factory, config)
        .expect("bind loopback")
        .spawn()
}

/// Drive the churn script over TCP, predicting every assigned id with the
/// mirror; returns the mirror in its final state.
fn drive_script(
    client: &mut Client,
    tenant: u64,
    initial: &DipathFamily,
    script: &[Mutation],
) -> PathFamily {
    let mut mirror = PathFamily::from_family(initial);
    for op in script {
        match op {
            Mutation::Add(p) => {
                let predicted = mirror.next_id();
                let arcs: Vec<u32> = p.arcs().iter().map(|a| a.0).collect();
                let got = client.admit(tenant, arcs).expect("admit over the wire");
                assert_eq!(got, predicted.0, "server id diverged from free-list mirror");
                mirror.insert(p.clone());
            }
            Mutation::Remove(id) => {
                client.retire(tenant, id.0).expect("retire over the wire");
                mirror.remove(*id).expect("script removes live ids");
            }
        }
        // Re-solve after every step (the incremental engine recomputes
        // only on query): this is what exercises shard-cache reuse.
        client.query(tenant).expect("interleaved query");
    }
    mirror
}

/// The served solution must be bit-identical to a from-scratch solve of
/// the mirror's dense family: same span, load, optimality, strategy, and
/// the same wavelength on every stable id.
fn assert_matches_scratch(
    client: &mut Client,
    tenant: u64,
    graph: &dagwave_graph::Digraph,
    mirror: &PathFamily,
) {
    let served = client.query(tenant).expect("query over the wire");
    let (dense, ids) = mirror.to_dense();
    let scratch = sharded().solve(graph, &dense).expect("reference solve");
    assert_eq!(served.num_colors as usize, scratch.num_colors);
    assert_eq!(served.load as usize, scratch.load);
    assert_eq!(served.optimal, scratch.optimal);
    assert_eq!(served.strategy, scratch.strategy.to_string());
    assert_eq!(
        served.shard_count as usize,
        scratch
            .decomposition
            .as_ref()
            .map_or(1, |d| d.shard_count())
    );
    let expected: Vec<(u32, u32)> = ids
        .iter()
        .zip(scratch.assignment.colors())
        .map(|(id, &c)| (id.0, c as u32))
        .collect();
    assert_eq!(served.colors, expected, "per-id wavelengths diverged");
}

#[test]
fn churned_tenant_is_bit_identical_to_from_scratch() {
    for config in both_configs() {
        churned_tenant_case(config);
    }
}

fn churned_tenant_case(config: ServerConfig) {
    for (seed, k, steps) in [(7u64, 2usize, 24usize), (41, 3, 40), (1234, 4, 60)] {
        let work = churn(seed, k, steps);
        let handle = federated_server(k, config);
        let mut client = Client::connect(handle.addr()).expect("connect");
        // Solve once up front so churn exercises warm shard caches.
        client.query(0).expect("initial solve");
        let mirror = drive_script(&mut client, 0, &work.instance.family, &work.script);
        assert_matches_scratch(&mut client, 0, &work.instance.graph, &mirror);
        // The workload kept at least one shard untouched at least once.
        let stats = client.stats(0).expect("stats");
        assert!(
            stats.shards_reused > 0,
            "churn on {k} components never reused a shard"
        );
        assert_eq!(stats.live_paths, mirror.len() as u64);
        client.shutdown().expect("shutdown");
        handle.join().expect("server exits cleanly");
    }
}

#[test]
fn batches_are_atomic_over_the_wire() {
    for config in both_configs() {
        batches_atomic_case(config);
    }
}

fn batches_atomic_case(config: ServerConfig) {
    let work = churn(99, 2, 0);
    let handle = federated_server(2, config);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let before = client.stats(0).expect("stats").live_paths;

    // A batch whose last op names a dead id must apply nothing at all.
    let donor = work.instance.family.path(dagwave_paths::PathId(0));
    let arcs: Vec<u32> = donor.arcs().iter().map(|a| a.0).collect();
    let err = client
        .batch(
            0,
            vec![
                WireOp::Add(arcs.clone()),
                WireOp::Add(arcs.clone()),
                WireOp::Remove(10_000),
            ],
        )
        .expect_err("stale remove fails the whole batch");
    match err {
        ClientError::Remote { code, .. } => assert_eq!(code, ErrorCode::UnknownPath),
        other => panic!("expected typed remote error, got {other}"),
    }
    assert_eq!(
        client.stats(0).expect("stats").live_paths,
        before,
        "failed batch must not mutate"
    );

    // The same batch with a valid remove applies atomically: both ids are
    // assigned, then the second one retires inside the same batch.
    let n = before as u32;
    let added = client
        .batch(
            0,
            vec![
                WireOp::Add(arcs.clone()),
                WireOp::Add(arcs),
                WireOp::Remove(n + 1),
            ],
        )
        .expect("valid batch applies");
    assert_eq!(added, vec![n, n + 1]);
    assert_eq!(client.stats(0).expect("stats").live_paths, before + 1);
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn tenants_are_isolated() {
    for config in both_configs() {
        tenants_isolated_case(config);
    }
}

fn tenants_isolated_case(config: ServerConfig) {
    let work = churn(5, 2, 12);
    let handle = federated_server(2, config);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let untouched = client.query(31).expect("tenant 31 baseline");

    // Churn tenant 17 from a second connection; tenant 31 must not move.
    let mut churner = Client::connect(handle.addr()).expect("second connection");
    let mirror = drive_script(&mut churner, 17, &work.instance.family, &work.script);
    assert_matches_scratch(&mut churner, 17, &work.instance.graph, &mirror);

    let after = client.query(31).expect("tenant 31 after");
    assert_eq!(after, untouched, "tenant 31 observed tenant 17's churn");
    assert_eq!(
        client.stats(31).expect("stats").live_paths,
        work.instance.family.len() as u64
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn span_budget_rejects_with_typed_code() {
    for config in both_configs() {
        span_budget_case(config);
    }
}

fn span_budget_case(config: ServerConfig) {
    let handle = line_server(
        4,
        ServerConfig {
            span_budget: Some(2),
            ..config
        },
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    let a = client.admit(0, vec![0, 1]).expect("load 1");
    client.admit(0, vec![1, 2]).expect("load 2");
    let err = client
        .admit(0, vec![0, 1, 2])
        .expect_err("would push arcs to load 3");
    match err {
        ClientError::Remote { code, message } => {
            assert_eq!(code, ErrorCode::SpanBudgetExceeded);
            assert!(message.contains("budget 2"), "message was {message:?}");
        }
        other => panic!("expected typed rejection, got {other}"),
    }
    // Rejection must not have consumed an id or mutated the family.
    assert_eq!(client.stats(0).expect("stats").live_paths, 2);
    // Retiring frees headroom and the same admit now passes.
    client.retire(0, a).expect("retire");
    client.admit(0, vec![0, 1, 2]).expect("fits after retire");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn malformed_frames_get_typed_error_responses() {
    for config in both_configs() {
        malformed_frames_case(config);
    }
}

fn malformed_frames_case(config: ServerConfig) {
    let handle = line_server(3, config);

    // Unknown opcode inside a valid header: typed reply, connection keeps
    // serving (the frame was fully consumed, so the stream is still
    // synchronized).
    let mut client = Client::connect(handle.addr()).expect("connect");
    let frame = [0xDA, 0x01, 0x40, 0x00, 0, 0, 0, 0];
    match client.raw_round_trip(&frame).expect("typed reply") {
        dagwave_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::UnknownOpcode)
        }
        other => panic!("expected error frame, got {other:?}"),
    }
    client.admit(0, vec![0]).expect("connection still serves");

    // Unknown version: typed reply, then the server closes the (now
    // unsynchronized) connection.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let frame = [0xDA, 0x09, 0x04, 0x00, 0, 0, 0, 0];
    match client.raw_round_trip(&frame).expect("typed reply") {
        dagwave_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::UnknownVersion)
        }
        other => panic!("expected error frame, got {other:?}"),
    }

    // Truncated payload (length says 8, body carries 4): typed Malformed.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut frame = vec![0xDA, 0x01, 0x04, 0x00, 8, 0, 0, 0];
    frame.extend_from_slice(&[1, 2, 3, 4]);
    // The server blocks for the declared 8 bytes; send the other 4 as
    // garbage so the frame completes but the payload is short for a
    // Query's u64 + anything (here: trailing bytes after tenant would be
    // needed — 8 bytes IS a valid Query, so use 4 declared instead).
    drop(frame);
    let mut short = vec![0xDA, 0x01, 0x04, 0x00, 4, 0, 0, 0];
    short.extend_from_slice(&[1, 2, 3, 4]);
    match client.raw_round_trip(&short).expect("typed reply") {
        dagwave_serve::Response::Error { code, .. } => {
            assert_eq!(code, ErrorCode::Malformed)
        }
        other => panic!("expected error frame, got {other:?}"),
    }

    let mut client = Client::connect(handle.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn shutdown_closes_listener_and_actors() {
    for config in both_configs() {
        shutdown_case(config);
    }
}

fn shutdown_case(config: ServerConfig) {
    let handle = line_server(3, config);
    let addr = handle.addr();
    let mut a = Client::connect(addr).expect("connect");
    let mut b = Client::connect(addr).expect("connect");
    a.admit(0, vec![0]).expect("admit");
    b.shutdown().expect("shutdown acknowledged");
    handle.join().expect("run() returns");
    // The listener is gone: a fresh connect must fail.
    assert!(
        Client::connect(addr).is_err(),
        "listener still accepting after shutdown"
    );
    // Requests on surviving connections get the typed shutting-down code
    // (the tenant actors are stopped) rather than hanging.
    match a.admit(0, vec![0]) {
        Err(ClientError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::ShuttingDown)
        }
        Err(_) => {} // or the socket already dropped — equally fine
        Ok(_) => panic!("admit succeeded after shutdown"),
    }
}

/// A workspace factory error (the tenant id is rejected) surfaces as a
/// typed Solver error, not a hang or a dropped connection.
#[test]
fn factory_errors_surface_as_typed_solver_errors() {
    for config in both_configs() {
        factory_errors_case(config);
    }
}

fn factory_errors_case(config: ServerConfig) {
    let factory = Box::new(|tenant: u64| {
        if tenant == 0 {
            let g = from_edges(3, &[(0, 1), (1, 2)]);
            Workspace::new(sharded(), g, DipathFamily::new())
        } else {
            // A cyclic digraph: Workspace::new rejects it.
            let g = from_edges(2, &[(0, 1), (1, 0)]);
            Workspace::new(sharded(), g, DipathFamily::new())
        }
    });
    let handle = Server::bind("127.0.0.1:0", factory, config)
        .expect("bind")
        .spawn();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.admit(0, vec![0]).expect("tenant 0 works");
    match client.admit(1, vec![0]) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Solver),
        other => panic!("expected typed Solver error, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Delta sync over the wire: a client that only ever issues `QueryDelta`
/// and replays the responses ends up with exactly the color table a full
/// `Query` ships — across a real churn script, with the first delta from
/// epoch 0 delivering the initial state.
#[test]
fn delta_sync_reconstructs_the_full_query() {
    for config in both_configs() {
        delta_sync_case(config);
    }
}

fn delta_sync_case(config: ServerConfig) {
    use std::collections::BTreeMap;
    let work = churn(23, 3, 30);
    let handle = federated_server(3, config);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let mut table: BTreeMap<u32, u32> = BTreeMap::new();
    let mut synced = 0u64;
    let mut mirror = PathFamily::from_family(&work.instance.family);
    let replay = |client: &mut Client, table: &mut BTreeMap<u32, u32>, synced: &mut u64| {
        let d = client.query_delta(0, *synced).expect("delta over the wire");
        assert!(d.epoch >= *synced);
        if d.full_resync {
            table.clear();
        }
        for id in &d.removed {
            table.remove(id);
        }
        for &(id, c) in &d.changes {
            table.insert(id, c);
        }
        *synced = d.epoch;
        d.span
    };
    let span = replay(&mut client, &mut table, &mut synced);

    for op in &work.script {
        match op {
            Mutation::Add(p) => {
                let arcs: Vec<u32> = p.arcs().iter().map(|a| a.0).collect();
                client.admit(0, arcs).expect("admit");
                mirror.insert(p.clone());
            }
            Mutation::Remove(id) => {
                client.retire(0, id.0).expect("retire");
                mirror.remove(*id).expect("live id");
            }
        }
        replay(&mut client, &mut table, &mut synced);
    }

    // The replayed table equals the full solution, id for id.
    let served = client.query(0).expect("full query");
    let full: BTreeMap<u32, u32> = served.colors.iter().copied().collect();
    assert_eq!(table, full, "delta replay diverged from the full query");
    assert_eq!(table.len(), mirror.len());
    let final_span = replay(&mut client, &mut table, &mut synced);
    assert_eq!(final_span, served.num_colors);
    assert!(span >= 1);

    // A client claiming a future epoch gets a coherent full resync.
    let d = client.query_delta(0, 10_000).expect("stale-epoch delta");
    assert!(d.full_resync);
    let resynced: BTreeMap<u32, u32> = d.changes.iter().copied().collect();
    assert_eq!(resynced, full);

    // The stats RPC surfaces the delta/interner counters end to end.
    let stats = client.stats(0).expect("stats");
    assert!(stats.delta_queries as usize >= work.script.len());
    assert_eq!(
        stats.delta_resyncs, 1,
        "only the future-epoch probe resynced"
    );
    assert!(stats.interned_arc_lists > 0, "arena tracked the family");
    assert!(stats.epoch > 0);
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// Stale handles: CoreError::UnknownPath over the wire carries the path
/// id in its message (mirrors the in-process error).
#[test]
fn unknown_path_retire_is_typed() {
    for config in both_configs() {
        unknown_path_case(config);
    }
}

fn unknown_path_case(config: ServerConfig) {
    let handle = line_server(3, config);
    let mut client = Client::connect(handle.addr()).expect("connect");
    match client.retire(0, 42) {
        Err(ClientError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownPath),
        other => panic!("expected UnknownPath, got {other:?}"),
    }
    // Same typed mapping in-process, for the record.
    let g = from_edges(3, &[(0, 1), (1, 2)]);
    let mut ws = Workspace::new(sharded(), g, DipathFamily::new()).expect("workspace");
    assert!(matches!(
        ws.apply([Mutation::Remove(dagwave_paths::PathId(42))]),
        Err(CoreError::UnknownPath(_))
    ));
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}
