//! Load harness for the dagwave-serve service layer: a loopback server,
//! N concurrent writer connections, one reader connection, and the two
//! quantities the D4 report row gates on —
//!
//! 1. **correctness under concurrency**: every writer retires exactly
//!    what it admitted, so the final family equals the initial one and
//!    the served solution must be bit-identical to a from-scratch
//!    `SolveSession` solve of the initial instance (order-independent by
//!    construction);
//! 2. **coalescing**: with writers racing each other while the reader
//!    forces re-solves, the tenant actor must absorb more client mutation
//!    batches than it issues `Workspace::apply` calls
//!    (`batches / applies > 1`).

use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use dagwave_core::{DecomposePolicy, SolverBuilder, Workspace};
use dagwave_gen::compose::federated;
use dagwave_serve::{Client, FrontEnd, Server, ServerConfig};

/// What one [`service_load`] run measured.
#[derive(Clone, Debug)]
pub struct ServiceLoadReport {
    /// Total requests served (writer mutations + reader queries).
    pub requests: u64,
    /// Wall-clock of the loaded phase, milliseconds.
    pub elapsed_ms: f64,
    /// Median writer request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile writer request latency, microseconds.
    pub p99_us: f64,
    /// Mutation batches the tenant actor accepted.
    pub batches: u64,
    /// `Workspace::apply` calls they coalesced into.
    pub applies: u64,
    /// Whether the final served solution was bit-identical to the
    /// from-scratch reference.
    pub identical: bool,
}

impl ServiceLoadReport {
    /// Requests per second over the loaded phase.
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }

    /// Client batches absorbed per `Workspace::apply` call.
    pub fn coalesce_ratio(&self) -> f64 {
        self.batches as f64 / self.applies.max(1) as f64
    }
}

/// Run the loopback load: `writers` connections each perform
/// `ops_per_writer` admissions (duplicates of a donor lightpath from the
/// initial family) interleaved with retirements of their own earlier
/// admissions, retiring everything they admitted before disconnecting. A
/// reader connection queries continuously, which keeps the actor busy
/// re-solving and lets writer batches queue up behind it — the condition
/// coalescing exists for.
pub fn service_load(k: usize, writers: usize, ops_per_writer: usize) -> ServiceLoadReport {
    let inst = federated(k);
    let session = || {
        SolverBuilder::new()
            .decompose(DecomposePolicy::Always)
            .build()
    };
    let factory_inst = inst.clone();
    let factory = Box::new(move |_tenant: u64| {
        Workspace::new(
            session(),
            factory_inst.graph.clone(),
            factory_inst.family.clone(),
        )
    });
    let handle = Server::bind("127.0.0.1:0", factory, ServerConfig::default())
        .expect("bind loopback")
        .spawn();
    let addr = handle.addr();

    // Warm the workspace (first solve) outside the timed region, like a
    // steady-state service.
    let mut control = Client::connect(addr).expect("connect control");
    control.query(0).expect("warm-up solve");

    let started = Instant::now();
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let reader = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect reader");
        let mut queries = 0u64;
        while stop_rx.try_recv().is_err() {
            client.query(0).expect("reader query");
            queries += 1;
        }
        queries
    });

    let writer_joins: Vec<thread::JoinHandle<Vec<f64>>> = (0..writers)
        .map(|w| {
            let donor: Vec<u32> = inst
                .family
                .path(dagwave_paths::PathId((w % inst.family.len()) as u32))
                .arcs()
                .iter()
                .map(|a| a.0)
                .collect();
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect writer");
                let mut latencies = Vec::with_capacity(ops_per_writer * 2);
                let mut owned: Vec<u32> = Vec::new();
                for _ in 0..ops_per_writer {
                    let t0 = Instant::now();
                    let id = client.admit(0, donor.clone()).expect("writer admit");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                    owned.push(id);
                    // Keep at most two of this writer's duplicates live:
                    // adds and removes interleave across writers, and the
                    // donor's conflict component stays small (duplicate
                    // lightpaths are pairwise-conflicting, so an unbounded
                    // pile-up would grow a clique whose exact coloring is
                    // exponential — a solver workload, not a service one).
                    if owned.len() >= 2 {
                        let victim = owned.remove(0);
                        let t0 = Instant::now();
                        client.retire(0, victim).expect("writer retire");
                        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                }
                for victim in owned {
                    let t0 = Instant::now();
                    client.retire(0, victim).expect("writer drain");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    for join in writer_joins {
        latencies.extend(join.join().expect("writer thread"));
    }
    let _ = stop_tx.send(());
    let reader_queries = reader.join().expect("reader thread");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;

    // Every writer retired everything it admitted, so the family is back
    // to the initial instance — compare against from-scratch, which no
    // interleaving can perturb.
    let served = control.query(0).expect("final query");
    let scratch = session()
        .solve(&inst.graph, &inst.family)
        .expect("reference solve");
    let expected: Vec<(u32, u32)> = (0..inst.family.len() as u32)
        .zip(scratch.assignment.colors().iter().map(|&c| c as u32))
        .collect();
    let identical = served.num_colors as usize == scratch.num_colors
        && served.load as usize == scratch.load
        && served.optimal == scratch.optimal
        && served.strategy == scratch.strategy.to_string()
        && served.colors == expected;

    let stats = control.stats(0).expect("final stats");
    control.shutdown().expect("shutdown");
    handle.join().expect("server exits");

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    ServiceLoadReport {
        requests: latencies.len() as u64 + reader_queries,
        elapsed_ms,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        batches: stats.batches,
        applies: stats.applies,
        identical,
    }
}

/// What one [`connection_scaling`] run measured (the D6 report row).
#[derive(Clone, Debug)]
pub struct ConnScalingReport {
    /// Concurrent client connections driven.
    pub connections: usize,
    /// Total requests served across all connections.
    pub requests: u64,
    /// Wall-clock of the loaded phase, milliseconds.
    pub elapsed_ms: f64,
    /// Median request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: f64,
    /// OS threads in this process while every connection was live, minus
    /// the pre-serve baseline: what connection count actually costs.
    pub thread_delta: usize,
    /// Whether the final served solution was bit-identical to the
    /// from-scratch reference.
    pub identical: bool,
}

impl ConnScalingReport {
    /// Requests per second over the loaded phase.
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.elapsed_ms / 1000.0).max(1e-9)
    }
}

/// Current OS thread count of this process (`/proc/self/status`), or 0
/// where procfs is unavailable — the D6 gate only runs on Linux CI.
pub fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Connection-scaling load: `conns` concurrent connections each admit a
/// donor duplicate, query, and retire it, `ops_per_conn` times, against a
/// server running the given `front_end`. All connections hold open for
/// the whole run (the barrier makes the thread count peak measurable),
/// every connection retires what it admitted, and the final solution is
/// checked bit-identical to a from-scratch solve — the same workload on
/// either front-end, so the comparison isolates the connection model.
pub fn connection_scaling(
    k: usize,
    conns: usize,
    ops_per_conn: usize,
    front_end: FrontEnd,
) -> ConnScalingReport {
    let inst = federated(k);
    let session = || {
        SolverBuilder::new()
            .decompose(DecomposePolicy::Always)
            .build()
    };
    let factory_inst = inst.clone();
    let factory = Box::new(move |_tenant: u64| {
        Workspace::new(
            session(),
            factory_inst.graph.clone(),
            factory_inst.family.clone(),
        )
    });
    let baseline_threads = os_threads();
    let config = ServerConfig {
        front_end,
        ..ServerConfig::default()
    };
    let handle = Server::bind("127.0.0.1:0", factory, config)
        .expect("bind loopback")
        .spawn();
    let addr = handle.addr();

    let mut control = Client::connect(addr).expect("connect control");
    control.query(0).expect("warm-up solve");

    // Connect everyone before the timed phase; a start gate (one channel
    // per worker, blocking recv) parks the workers until the peak-thread
    // measurement is taken.
    let (ready_tx, ready_rx) = mpsc::channel::<()>();
    let mut gates: Vec<mpsc::Sender<()>> = Vec::with_capacity(conns);
    let joins: Vec<thread::JoinHandle<Vec<f64>>> = (0..conns)
        .map(|w| {
            let donor: Vec<u32> = inst
                .family
                .path(dagwave_paths::PathId((w % inst.family.len()) as u32))
                .arcs()
                .iter()
                .map(|a| a.0)
                .collect();
            let ready = ready_tx.clone();
            let (gate_tx, gate_rx) = mpsc::channel::<()>();
            gates.push(gate_tx);
            thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect conn");
                // First round-trip proves the connection is being served
                // (the reactor has registered it), then park at the gate.
                client.query(0).expect("connection live");
                ready.send(()).expect("report ready");
                gate_rx.recv().expect("start signal");
                let mut latencies = Vec::with_capacity(ops_per_conn * 3);
                for _ in 0..ops_per_conn {
                    let t0 = Instant::now();
                    let id = client.admit(0, donor.clone()).expect("admit");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                    let t0 = Instant::now();
                    client.query(0).expect("query");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                    let t0 = Instant::now();
                    client.retire(0, id).expect("retire");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                }
                latencies
            })
        })
        .collect();
    drop(ready_tx);
    for _ in 0..conns {
        ready_rx.recv().expect("worker ready");
    }
    // Every connection is live and served: this is the peak the thread
    // count gate cares about. The client threads themselves are part of
    // the process, so subtract them along with the pre-serve baseline —
    // what remains is what the *server* spent on `conns` connections.
    let peak_threads = os_threads();
    let thread_delta = peak_threads
        .saturating_sub(baseline_threads)
        .saturating_sub(conns);

    let started = Instant::now();
    for gate in &gates {
        gate.send(()).expect("release worker");
    }
    let mut latencies: Vec<f64> = Vec::new();
    for join in joins {
        latencies.extend(join.join().expect("conn thread"));
    }
    let elapsed_ms = started.elapsed().as_secs_f64() * 1000.0;

    let served = control.query(0).expect("final query");
    let scratch = session()
        .solve(&inst.graph, &inst.family)
        .expect("reference solve");
    let expected: Vec<(u32, u32)> = (0..inst.family.len() as u32)
        .zip(scratch.assignment.colors().iter().map(|&c| c as u32))
        .collect();
    let identical = served.num_colors as usize == scratch.num_colors
        && served.load as usize == scratch.load
        && served.optimal == scratch.optimal
        && served.strategy == scratch.strategy.to_string()
        && served.colors == expected;
    control.shutdown().expect("shutdown");
    handle.join().expect("server exits");

    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
        latencies[idx]
    };
    ConnScalingReport {
        connections: conns,
        requests: latencies.len() as u64,
        elapsed_ms,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        thread_delta,
        identical,
    }
}
